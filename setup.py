"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build an
editable wheel.  This shim lets ``python setup.py develop`` (and
``pip install -e . --no-build-isolation`` on toolchains that have
``wheel``) install the package; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
