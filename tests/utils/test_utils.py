"""Tests for RNG management, tables, and logging helpers."""

import logging

import numpy as np
import pytest

from repro.utils.logging import get_logger
from repro.utils.rng import RngRegistry, new_rng, spawn_rngs
from repro.utils.tables import format_markdown_table, format_table


class TestRng:
    def test_new_rng_seeded_reproducible(self):
        assert new_rng(5).integers(0, 100) == new_rng(5).integers(0, 100)

    def test_spawn_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.integers(0, 1000, 10), b.integers(0, 1000, 10))

    def test_registry_same_name_same_generator(self):
        rngs = RngRegistry(0)
        assert rngs.get("x") is rngs.get("x")

    def test_registry_different_names_differ(self):
        rngs = RngRegistry(0)
        a = rngs.get("stream").integers(0, 10_000, 20)
        b = rngs.get("model").integers(0, 10_000, 20)
        assert not np.array_equal(a, b)

    def test_registry_order_independent(self):
        """Child streams depend only on (seed, name), not creation order."""
        r1 = RngRegistry(7)
        r1.get("a")
        v1 = r1.get("b").integers(0, 10_000, 10)
        r2 = RngRegistry(7)
        v2 = r2.get("b").integers(0, 10_000, 10)
        np.testing.assert_array_equal(v1, v2)

    def test_registry_seed_changes_streams(self):
        a = RngRegistry(0).get("x").integers(0, 10_000, 10)
        b = RngRegistry(1).get("x").integers(0, 10_000, 10)
        assert not np.array_equal(a, b)

    def test_registry_names(self):
        rngs = RngRegistry(0)
        rngs.get("one")
        rngs.get("two")
        assert set(rngs.names()) == {"one", "two"}


class TestTables:
    def test_alignment(self):
        table = format_table(["col", "b"], [["x", 1], ["longer", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")
        # all rows same width after strip of trailing spaces
        assert "longer" in lines[3]

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_none_rendered_empty(self):
        table = format_table(["a"], [[None], ["x"]])
        lines = table.split("\n")
        assert lines[2].strip() == ""
        assert lines[3].strip() == "x"

    def test_markdown_shape(self):
        md = format_markdown_table(["a", "b"], [[1, 2]])
        lines = md.splitlines()
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", "-"}
        assert lines[2].startswith("| 1")

    def test_doctest_example(self):
        out = format_table(["a", "b"], [[1, 2.5]])
        assert out == "a | b\n--+----\n1 | 2.5"


class TestLogging:
    def test_namespace_prefix(self):
        assert get_logger("train").name == "repro.train"

    def test_root_logger(self):
        assert get_logger().name == "repro"

    def test_already_prefixed(self):
        assert get_logger("repro.data").name == "repro.data"

    def test_is_logging_logger(self):
        assert isinstance(get_logger("x"), logging.Logger)
