"""Tests for the component registries (repro.registry)."""

import numpy as np
import pytest

from repro.registry import (
    AUGMENTS,
    DATASETS,
    ENCODERS,
    POLICIES,
    Registry,
    create_policy,
    dataset_names,
    policy_labels,
    policy_names,
    register_policy,
)
from repro.selection import (
    FIFOPolicy,
    KCenterPolicy,
    RandomReplacePolicy,
    SelectiveBPPolicy,
)


class TestRegistryCore:
    def test_register_lookup_roundtrip(self):
        reg = Registry("widget")

        @reg.register("my-widget", label="My Widget")
        class Widget:
            def __init__(self, size=1):
                self.size = size

        entry = reg.get("my-widget")
        assert entry.factory is Widget
        assert entry.display_label == "My Widget"
        built = reg.create("my-widget", size=3)
        assert isinstance(built, Widget) and built.size == 3

    def test_alias_roundtrip(self):
        reg = Registry("widget")
        reg.add("long-name", lambda: "built", aliases=("short", "ln"))
        assert reg.get("short").name == "long-name"
        assert reg.get("ln").name == "long-name"
        assert reg.create("short") == "built"
        assert reg.aliases() == {"short": "long-name", "ln": "long-name"}
        assert "short" in reg and "long-name" in reg

    def test_duplicate_name_rejected(self):
        reg = Registry("widget")
        reg.add("taken", lambda: None)
        with pytest.raises(ValueError, match="already registered"):
            reg.add("taken", lambda: None)
        # an alias may not shadow an existing name either
        with pytest.raises(ValueError, match="already registered"):
            reg.add("other", lambda: None, aliases=("taken",))
        # nor may a new name collide with an existing alias
        reg.add("with-alias", lambda: None, aliases=("nick",))
        with pytest.raises(ValueError, match="already registered"):
            reg.add("nick", lambda: None)

    def test_invalid_names_rejected(self):
        reg = Registry("widget")
        for bad in ("CamelCase", "under_score", "spaced name", "-lead", "trail-", ""):
            with pytest.raises(ValueError, match="kebab-case"):
                reg.add(bad, lambda: None)

    def test_did_you_mean_suggestion(self):
        reg = Registry("widget")
        reg.add("contrast-scoring", lambda: None)
        with pytest.raises(KeyError) as err:
            reg.get("contrast-scorin")
        assert "did you mean 'contrast-scoring'?" in str(err.value)

    def test_unknown_without_close_match(self):
        reg = Registry("widget")
        reg.add("alpha", lambda: None)
        with pytest.raises(KeyError) as err:
            reg.get("zzzzzz")
        message = str(err.value)
        assert "unknown widget" in message
        assert "did you mean" not in message

    def test_unregister(self):
        reg = Registry("widget")
        reg.add("gone-soon", lambda: None, aliases=("gs",))
        reg.unregister("gone-soon")
        assert "gone-soon" not in reg
        assert "gs" not in reg
        with pytest.raises(KeyError):
            reg.unregister("gone-soon")

    def test_signature_filtering(self):
        reg = Registry("widget")

        @reg.register("picky")
        def build(capacity, rng=None):
            return ("picky", capacity, rng)

        # scorer/temperature are silently dropped: not in the signature
        assert reg.create("picky", capacity=4, scorer="S", temperature=0.1) == (
            "picky",
            4,
            None,
        )

        @reg.register("greedy")
        def build_all(**kwargs):
            return sorted(kwargs)

        assert reg.create("greedy", a=1, b=2) == ["a", "b"]

    def test_create_with_required_rejects_undeclared_keys(self):
        reg = Registry("widget")

        @reg.register("narrow")
        def build(capacity):
            return capacity

        assert reg.create_with_required("narrow", ("capacity",), capacity=3) == 3
        with pytest.raises(TypeError, match="does not accept option"):
            reg.create_with_required("narrow", ("color",), capacity=3, color="red")

    def test_unregister_alias_keeps_canonical_entry(self):
        reg = Registry("widget")
        reg.add("thing", lambda: None, aliases=("t", "th"))
        reg.unregister("t")
        assert "t" not in reg
        assert "thing" in reg and "th" in reg
        assert reg.get("thing").aliases == ("th",)

    def test_policy_labels_view_is_live(self):
        from repro.experiments.runner import POLICY_LABELS

        @register_policy("live-label-test", label="Live Label")
        class LiveLabel(FIFOPolicy):
            pass

        try:
            assert POLICY_LABELS.get("live-label-test") == "Live Label"
        finally:
            POLICIES.unregister("live-label-test")
        assert "live-label-test" not in POLICY_LABELS

    def test_required_positional_only_factory_rejected(self):
        reg = Registry("widget")

        def factory(capacity, /):
            return capacity

        with pytest.raises(ValueError, match="positional-only"):
            reg.add("pos-only", factory)
        # positional-only with a default is fine (never needs passing)
        reg.add("pos-only-default", lambda: "ok")

    def test_non_callable_rejected(self):
        reg = Registry("widget")
        with pytest.raises(TypeError, match="not callable"):
            reg.add("thing", 42)


class TestBuiltinRegistries:
    def test_builtin_policies_registered(self):
        assert set(policy_names()) >= {
            "contrast-scoring",
            "random-replace",
            "fifo",
            "selective-bp",
            "k-center",
        }

    def test_policy_labels_match_paper(self):
        labels = policy_labels()
        assert labels["contrast-scoring"] == "Contrast Scoring"
        assert labels["fifo"] == "FIFO Replace"

    def test_builtin_datasets_registered(self):
        assert set(dataset_names()) >= {
            "cifar10",
            "cifar100",
            "svhn",
            "imagenet20",
            "imagenet50",
            "imagenet100",
        }

    def test_builtin_encoders_and_augments(self):
        assert "resnet" in ENCODERS and "resnet-micro" in ENCODERS
        assert "simclr" in AUGMENTS

    def test_dataset_create_via_registry(self):
        ds = DATASETS.create("cifar10", image_size=8)
        assert ds.num_classes == 10
        assert ds.image_shape == (3, 8, 8)

    def test_create_policy_each_builtin_kind(self):
        rng = np.random.default_rng(0)
        assert isinstance(
            create_policy("fifo", capacity=4), FIFOPolicy
        )
        assert isinstance(
            create_policy("random-replace", capacity=4, rng=rng), RandomReplacePolicy
        )
        assert isinstance(
            create_policy("selective-bp", scorer=object(), capacity=4),
            SelectiveBPPolicy,
        )
        assert isinstance(
            create_policy("k-center", scorer=object(), capacity=4), KCenterPolicy
        )

    def test_create_policy_contrast_scoring_maps_lazy_interval(self):
        from repro.core.replacement import ContrastScoringPolicy

        policy = create_policy(
            "contrast-scoring", scorer=object(), capacity=4, lazy_interval=8
        )
        assert isinstance(policy, ContrastScoringPolicy)
        assert policy.lazy.interval == 8
        # alias resolves to the same factory
        aliased = create_policy("cs", scorer=object(), capacity=4)
        assert isinstance(aliased, ContrastScoringPolicy)

    def test_create_policy_rejects_unknown_extra_option(self):
        # standard keys are filtered by signature, but caller-supplied
        # extras must be accepted — a typo'd option may not vanish
        with pytest.raises(TypeError, match="lazy_interal"):
            create_policy(
                "contrast-scoring", scorer=object(), capacity=4, lazy_interal=8
            )

    def test_create_policy_passes_accepted_extra_option(self):
        @register_policy("extra-opt-test")
        class ExtraOpt(FIFOPolicy):
            def __init__(self, capacity, spice=0):
                super().__init__(capacity)
                self.spice = spice

        try:
            built = create_policy("extra-opt-test", capacity=4, spice=7)
            assert built.spice == 7
        finally:
            POLICIES.unregister("extra-opt-test")

    def test_create_policy_requires_capacity(self):
        with pytest.raises(TypeError, match="capacity"):
            create_policy("fifo")

    def test_create_policy_did_you_mean(self):
        with pytest.raises(KeyError, match="did you mean"):
            create_policy("fif0", capacity=4)

    def test_plugin_dataset_rejects_unsupported_image_size(self):
        from repro.data.datasets import make_dataset
        from repro.registry import register_dataset

        @register_dataset("fixed-res-test")
        def build():
            return "native-resolution-dataset"

        try:
            assert make_dataset("fixed-res-test") == "native-resolution-dataset"
            with pytest.raises(TypeError, match=r"does not accept option\(s\): image_size"):
                make_dataset("fixed-res-test", image_size=8)
        finally:
            DATASETS.unregister("fixed-res-test")

    def test_plugin_dataset_keeps_its_own_image_size_default(self):
        from repro.data.datasets import make_dataset
        from repro.registry import register_dataset

        @register_dataset("int-default-test")
        def build(image_size: int = 16):
            return image_size * 2  # crashes on None

        try:
            assert make_dataset("int-default-test") == 32
            assert make_dataset("int-default-test", image_size=8) == 16
        finally:
            DATASETS.unregister("int-default-test")

    def test_failed_ensure_retries_instead_of_poisoning(self):
        calls = []

        def flaky_ensure():
            calls.append(None)
            if len(calls) == 1:
                raise ImportError("transient")

        reg = Registry("widget", ensure=flaky_ensure)
        with pytest.raises(ImportError):
            reg.names()
        # second attempt re-runs ensure and succeeds
        assert reg.names() == []
        assert len(calls) == 2
        # and a successful ensure is not re-run afterwards
        reg.names()
        assert len(calls) == 2

    def test_plugin_policy_registers_and_unregisters(self):
        @register_policy("tmp-plugin-policy")
        class TmpPolicy(FIFOPolicy):
            pass

        try:
            built = create_policy("tmp-plugin-policy", capacity=4)
            assert isinstance(built, TmpPolicy)
        finally:
            POLICIES.unregister("tmp-plugin-policy")
        assert "tmp-plugin-policy" not in POLICIES
