"""The persistent worker pool: ordering, reuse across calls, sticky
routing, crash recovery, and run_jobs' serial-fallback contract."""

import os

import numpy as np
import pytest

from repro.experiments.parallel import run_jobs
from repro.experiments.pool import (
    WorkerCrashedError,
    WorkerPool,
    get_worker_pool,
)


def _square(payload):
    return payload * payload


def _pid(payload):
    return os.getpid()


def _crash_on_odd(payload):
    if payload % 2 == 1:
        os._exit(13)
    return payload * 10


def _raise_on(payload):
    if payload == "boom":
        raise ValueError("job exploded")
    return payload


@pytest.fixture
def pool():
    pool = WorkerPool(2)
    yield pool
    pool.close()


class TestWorkerPool:
    def test_map_preserves_payload_order(self, pool):
        assert pool.map(_square, list(range(16))) == [i * i for i in range(16)]

    def test_pool_persists_across_calls(self, pool):
        first = set(pool.map(_pid, range(8)))
        second = set(pool.map(_pid, range(8)))
        assert first == second  # same processes, not respawned per call
        assert first == set(pool.worker_pids())

    def test_sticky_routing_pins_jobs_to_slots(self, pool):
        pool.warm()
        pids = pool.worker_pids()
        results = pool.map(_pid, range(6), sticky=True)
        for job, pid in enumerate(results):
            assert pid == pids[pool.sticky_worker(job)]

    def test_job_exception_propagates_with_remote_traceback(self, pool):
        with pytest.raises(ValueError, match="job exploded") as info:
            pool.map(_raise_on, ["fine", "boom", "fine"])
        assert any("remote traceback" in note for note in info.value.__notes__)

    def test_pool_survives_job_exception(self, pool):
        with pytest.raises(ValueError):
            pool.map(_raise_on, ["boom"])
        assert pool.map(_square, [3]) == [9]

    def test_crash_returns_named_error_and_respawns(self, pool):
        before = pool.generations()
        results = pool.map(_crash_on_odd, [0, 1, 2, 3], return_exceptions=True)
        assert results[0] == 0 and results[2] == 20
        for index in (1, 3):
            assert isinstance(results[index], WorkerCrashedError)
            assert results[index].job_index == index
        assert pool.generations() != before
        # the respawned workers keep serving
        assert pool.map(_square, [5, 6]) == [25, 36]

    def test_crash_without_return_exceptions_raises(self, pool):
        with pytest.raises(WorkerCrashedError):
            pool.map(_crash_on_odd, [1])
        assert pool.map(_square, [4]) == [16]

    def test_get_worker_pool_is_cached(self):
        assert get_worker_pool(2) is get_worker_pool(2)
        assert get_worker_pool(2) is not get_worker_pool(3)


class TestRunJobsFallback:
    def test_crash_warns_and_reruns_serially(self):
        """Satellite: a worker crash fails the affected jobs with a
        named error and run_jobs falls back to serial for them — the
        caller still gets every result, in order."""
        with pytest.warns(RuntimeWarning, match="serially") as captured:
            results = run_jobs(_crash_on_odd_in_parent, [0, 1, 2, 3], workers=2)
        assert any("re-running job 1" in str(w.message) for w in captured)
        assert list(results) == [0, 10, 20, 30]
        assert results.timings.crashes >= 1

    def test_refresh_hook_rebuilds_crash_payloads(self):
        calls = []

        def refresh(index, payload):
            calls.append(index)
            return -payload

        with pytest.warns(RuntimeWarning):
            results = run_jobs(
                _crash_on_odd_abs, [1, 2], workers=2, refresh=refresh
            )
        assert calls == [0]
        assert list(results) == [10, 20]

    def test_timings_attached(self):
        results = run_jobs(_square, [1, 2, 3], workers=2)
        assert results.timings.jobs == 3
        assert results.timings.workers == 2
        assert results.timings.compute_s >= 0.0


_MAIN_PID = os.getpid()


def _crash_on_odd_in_parent(payload):
    """Crash on odd payloads in pool workers only (fork keeps the
    parent's ``_MAIN_PID``); the parent's serial re-run succeeds."""
    if payload % 2 == 1 and os.getpid() != _MAIN_PID:
        os._exit(13)
    return payload * 10


def _crash_on_odd_abs(payload):
    if payload > 0 and payload % 2 == 1 and os.getpid() != _MAIN_PID:
        os._exit(13)
    return abs(payload) * 10
