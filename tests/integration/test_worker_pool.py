"""The persistent worker pool: ordering, reuse across calls, sticky
routing, crash recovery, and run_jobs' serial-fallback contract."""

import os

import numpy as np
import pytest

from repro.experiments.parallel import run_jobs
from repro.experiments.pool import (
    WorkerCrashedError,
    WorkerPool,
    get_worker_pool,
)


def _square(payload):
    return payload * payload


def _pid(payload):
    return os.getpid()


def _crash_on_odd(payload):
    if payload % 2 == 1:
        os._exit(13)
    return payload * 10


def _raise_on(payload):
    if payload == "boom":
        raise ValueError("job exploded")
    return payload


@pytest.fixture
def pool():
    pool = WorkerPool(2)
    yield pool
    pool.close()


class TestWorkerPool:
    def test_map_preserves_payload_order(self, pool):
        assert pool.map(_square, list(range(16))) == [i * i for i in range(16)]

    def test_pool_persists_across_calls(self, pool):
        first = set(pool.map(_pid, range(8)))
        second = set(pool.map(_pid, range(8)))
        assert first == second  # same processes, not respawned per call
        assert first == set(pool.worker_pids())

    def test_sticky_routing_pins_jobs_to_slots(self, pool):
        pool.warm()
        pids = pool.worker_pids()
        results = pool.map(_pid, range(6), sticky=True)
        for job, pid in enumerate(results):
            assert pid == pids[pool.sticky_worker(job)]

    def test_job_exception_propagates_with_remote_traceback(self, pool):
        with pytest.raises(ValueError, match="job exploded") as info:
            pool.map(_raise_on, ["fine", "boom", "fine"])
        assert any("remote traceback" in note for note in info.value.__notes__)

    def test_pool_survives_job_exception(self, pool):
        with pytest.raises(ValueError):
            pool.map(_raise_on, ["boom"])
        assert pool.map(_square, [3]) == [9]

    def test_crash_returns_named_error_and_respawns(self, pool):
        before = pool.generations()
        results = pool.map(_crash_on_odd, [0, 1, 2, 3], return_exceptions=True)
        assert results[0] == 0 and results[2] == 20
        for index in (1, 3):
            assert isinstance(results[index], WorkerCrashedError)
            assert results[index].job_index == index
        assert pool.generations() != before
        # the respawned workers keep serving
        assert pool.map(_square, [5, 6]) == [25, 36]

    def test_crash_without_return_exceptions_raises(self, pool):
        with pytest.raises(WorkerCrashedError):
            pool.map(_crash_on_odd, [1])
        assert pool.map(_square, [4]) == [16]

    def test_get_worker_pool_is_cached(self):
        assert get_worker_pool(2) is get_worker_pool(2)
        assert get_worker_pool(2) is not get_worker_pool(3)


class TestRunJobsFallback:
    def test_crash_warns_and_reruns_serially(self):
        """Satellite: a worker crash fails the affected jobs with a
        named error and run_jobs falls back to serial for them — the
        caller still gets every result, in order."""
        with pytest.warns(RuntimeWarning, match="serially") as captured:
            results = run_jobs(_crash_on_odd_in_parent, [0, 1, 2, 3], workers=2)
        assert any("re-running job 1" in str(w.message) for w in captured)
        assert list(results) == [0, 10, 20, 30]
        assert results.timings.crashes >= 1

    def test_refresh_hook_rebuilds_crash_payloads(self):
        calls = []

        def refresh(index, payload):
            calls.append(index)
            return -payload

        with pytest.warns(RuntimeWarning):
            results = run_jobs(
                _crash_on_odd_abs, [1, 2], workers=2, refresh=refresh
            )
        assert calls == [0]
        assert list(results) == [10, 20]

    def test_timings_attached(self):
        results = run_jobs(_square, [1, 2, 3], workers=2)
        assert results.timings.jobs == 3
        assert results.timings.workers == 2
        assert results.timings.compute_s >= 0.0


_MAIN_PID = os.getpid()


def _crash_on_odd_in_parent(payload):
    """Crash on odd payloads in pool workers only (fork keeps the
    parent's ``_MAIN_PID``); the parent's serial re-run succeeds."""
    if payload % 2 == 1 and os.getpid() != _MAIN_PID:
        os._exit(13)
    return payload * 10


def _crash_on_odd_abs(payload):
    if payload > 0 and payload % 2 == 1 and os.getpid() != _MAIN_PID:
        os._exit(13)
    return abs(payload) * 10


def _raise_marker(payload):
    """Raise a retryable error in pool workers; succeed in the parent."""
    if payload == "retry" and os.getpid() != _MAIN_PID:
        raise _Retryable("worker-side only")
    return f"ok:{payload}"


class _Retryable(RuntimeError):
    pass


class TestGenerationCounter:
    def test_generations_unique_across_pool_lifetimes(self):
        """Regression: generations come from a process-wide counter, so
        a new pool never reuses a closed pool's generation numbers — a
        delta sender comparing stored generations can always tell a new
        worker from an old one."""
        first = WorkerPool(2)
        first.warm()
        first_generations = list(first.generations())
        first.close()
        second = WorkerPool(2)
        second.warm()
        try:
            second_generations = list(second.generations())
            assert not set(first_generations) & set(second_generations)
            assert min(second_generations) > max(first_generations)
        finally:
            second.close()

    def test_respawn_bumps_generation_monotonically(self, pool):
        pool.warm()
        before = pool.generations()
        with pytest.raises(WorkerCrashedError):
            pool.map(_crash_on_odd, [1], sticky=True)
        after = pool.generations()
        assert after[pool.sticky_worker(0)] > before[pool.sticky_worker(0)]
        assert all(b >= a for a, b in zip(before, after))


class TestStickyKeys:
    def test_sticky_keys_route_independent_of_job_position(self, pool):
        """Regression: a sampled fleet round passes device indices as
        sticky_keys, so device d lands on worker d % size no matter
        where d sits in this round's payload list."""
        pool.warm()
        pids = pool.worker_pids()
        keys = [5, 2, 7]
        results = pool.map(_pid, range(3), sticky_keys=keys)
        for job, pid in enumerate(results):
            assert pid == pids[keys[job] % pool.size]

    def test_sticky_keys_must_match_payload_count(self, pool):
        with pytest.raises(ValueError, match="one key per payload"):
            pool.map(_pid, range(3), sticky_keys=[0, 1])

    def test_run_jobs_threads_sticky_keys(self, pool):
        pool.warm()
        pids = pool.worker_pids()
        results = run_jobs(_pid, range(4), pool=pool, sticky_keys=[3, 0, 1, 2])
        assert list(results) == [
            pids[3 % pool.size],
            pids[0],
            pids[1],
            pids[0],
        ]


class TestRetryOn:
    def test_retry_on_reruns_named_exception_serially(self):
        """Regression: retry_on extends the crash-recovery path to
        protocol errors (e.g. WireProtocolError after a respawn) —
        the job re-runs in the parent instead of failing the round."""
        with pytest.warns(RuntimeWarning, match="serially"):
            results = run_jobs(
                _raise_marker,
                ["fine", "retry"],
                workers=2,
                retry_on=(_Retryable,),
            )
        assert list(results) == ["ok:fine", "ok:retry"]

    def test_unlisted_exceptions_still_propagate(self):
        with pytest.raises(_Retryable):
            run_jobs(_raise_marker, ["fine", "retry"], workers=2)

    def test_retry_uses_refresh_payload(self):
        refreshed = []

        def refresh(index, payload):
            refreshed.append((index, payload))
            return "fresh"

        with pytest.warns(RuntimeWarning):
            results = run_jobs(
                _raise_marker,
                ["retry", "fine"],
                workers=2,
                retry_on=(_Retryable,),
                refresh=refresh,
            )
        assert refreshed == [(0, "retry")]
        assert list(results) == ["ok:fresh", "ok:fine"]
