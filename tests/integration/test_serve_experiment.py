"""The `serve` experiment harness: passes, invariants, fingerprints,
the config-carried serve-policy field, and the CLI subcommand."""

import pytest

from repro.cli import main
from repro.experiments.config import StreamExperimentConfig
from repro.experiments.serve import format_serve, run_serve
from repro.session import config_from_dict, config_to_dict


@pytest.fixture
def tiny_config():
    return StreamExperimentConfig(
        dataset="cifar10",
        image_size=8,
        stc=4,
        total_samples=64,
        buffer_size=8,
        encoder_widths=(8, 16),
        projection_dim=8,
        probe_train_per_class=2,
        probe_test_per_class=2,
        probe_epochs=2,
        seed=0,
    )


class TestRunServe:
    def test_invariants_and_fingerprint_stability(self, tiny_config):
        result = run_serve(tiny_config, requests=16, devices=3, train_iterations=2)
        assert result.replay_identical
        assert result.warm_identical
        assert result.tcp_identical is None  # inproc run
        assert result.versions == [1, 2]
        assert result.pins == {"device-0": 1}
        assert len(result.cold) == len(result.warm) == len(result.repeat) == 16
        assert all(d.status == "ok" for d in result.cold)
        assert all(d.cache_hit for d in result.repeat)
        # a fresh identical run reproduces the fingerprint bitwise
        again = run_serve(tiny_config, requests=16, devices=3, train_iterations=2)
        assert again.fingerprint() == result.fingerprint()

    def test_mid_stream_version_bump_splits_the_stream(self, tiny_config):
        result = run_serve(tiny_config, requests=16, devices=2, train_iterations=2)
        first, second = result.cold[:8], result.cold[8:]
        assert {d.model_version for d in first} == {1}
        # after the bump: device-0 pinned to v1, device-1 on current v2
        assert {d.model_version for d in second if d.device_id == "device-0"} == {1}
        assert {d.model_version for d in second if d.device_id == "device-1"} == {2}

    def test_tcp_transport_adds_the_echo_pass(self, tiny_config):
        result = run_serve(
            tiny_config, requests=12, devices=3, train_iterations=2, transport="tcp"
        )
        assert result.tcp_identical is True
        assert result.transport == "tcp"

    def test_policy_falls_back_to_config_serve_field(self, tiny_config):
        result = run_serve(
            tiny_config.with_(serve="shed"), requests=8, train_iterations=2
        )
        assert result.policy == "shed"
        # an explicit argument (alias resolved) wins over the config
        result = run_serve(
            tiny_config.with_(serve="shed"),
            requests=8,
            train_iterations=2,
            policy="fallback",
        )
        assert result.policy == "degrade"

    def test_validation(self, tiny_config):
        with pytest.raises(ValueError, match="requests"):
            run_serve(tiny_config, requests=2)
        with pytest.raises(ValueError, match="devices"):
            run_serve(tiny_config, devices=0)
        with pytest.raises(ValueError, match="transport"):
            run_serve(tiny_config, transport="carrier-pigeon")

    def test_format_serve_renders_table_and_checks(self, tiny_config):
        result = run_serve(tiny_config, requests=8, train_iterations=2)
        text = format_serve(result)
        assert "cold" in text and "warm" in text and "repeat" in text
        assert "replay bitwise-identical: True" in text
        assert "policy=block" in text


class TestConfigServeField:
    def test_serde_roundtrip(self, tiny_config):
        config = tiny_config.with_(serve="degrade")
        assert config_from_dict(config_to_dict(config)).serve == "degrade"

    def test_old_payloads_default_to_none(self, tiny_config):
        payload = config_to_dict(tiny_config)
        payload.pop("serve")
        assert config_from_dict(payload).serve is None


class TestServeCli:
    def test_serve_flags_rejected_for_other_experiments(self, capsys):
        for flags in (["--serve-policy", "shed"], ["--requests", "8"], ["--port", "0"]):
            with pytest.raises(SystemExit):
                main(["stream", *flags])
            assert "only serve does" in capsys.readouterr().err

    def test_unknown_serve_policy_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--serve-policy", "nope"])
        assert "serve policy" in capsys.readouterr().err

    def test_requests_floor_enforced(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--requests", "2"])
        assert "--requests" in capsys.readouterr().err

    def test_policy_flag_rejected(self, capsys):
        # --policy is the *selection* policy namespace; serve admission
        # control is selected with --serve-policy instead.
        with pytest.raises(SystemExit):
            main(["serve", "--policy", "fifo"])
        assert "does not take --policy" in capsys.readouterr().err

    def test_list_includes_serve(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "serve" in out
        assert "serve policies:" in out
        assert "block" in out and "degrade" in out and "shed" in out
