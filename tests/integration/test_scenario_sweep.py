"""Integration tests for scenario threading: Session runs under every
scenario, bitwise checkpoint/resume with ``config.scenario`` set, the
scenario-sweep harness, and its serial/parallel equivalence."""

import json

import numpy as np
import pytest

from repro.experiments.config import StreamExperimentConfig
from repro.experiments.parallel import SweepSpec, result_fingerprint, run_sweep
from repro.experiments.scenario_sweep import (
    format_scenario_sweep,
    run_scenario_sweep,
)
from repro.registry import scenario_names
from repro.session import Session, config_from_dict, config_to_dict


@pytest.fixture
def tiny_config():
    return StreamExperimentConfig(
        dataset="cifar10",
        image_size=8,
        stc=4,
        total_samples=64,
        buffer_size=8,
        encoder_widths=(8, 16),
        encoder_blocks=1,
        projection_dim=8,
        probe_train_per_class=2,
        probe_test_per_class=2,
        probe_epochs=2,
        seed=0,
    )


class TestSessionScenario:
    @pytest.mark.parametrize("scenario", sorted(scenario_names()))
    def test_session_runs_every_scenario(self, tiny_config, scenario):
        result = (
            Session(tiny_config, "fifo")
            .with_scenario(scenario)
            .with_eval_points(1)
            .run()
        )
        assert result.config.scenario == scenario
        assert len(result.curve) >= 1
        assert 0.0 <= result.info["final_knn_accuracy"] <= 1.0

    def test_with_scenario_alias_canonicalized(self, tiny_config):
        result = (
            Session(tiny_config, "fifo")
            .with_scenario("cyclic")
            .with_eval_points(1)
            .run()
        )
        assert result.config.scenario == "cyclic-drift"

    def test_unknown_scenario_fails_before_building(self, tiny_config):
        with pytest.raises(KeyError, match="did you mean"):
            Session(tiny_config, "fifo").with_scenario("cyclic-drif").run()

    def test_scenario_changes_the_stream(self, tiny_config):
        temporal = Session(tiny_config, "fifo").with_eval_points(1).run()
        imbalanced = (
            Session(tiny_config, "fifo")
            .with_scenario("imbalanced")
            .with_eval_points(1)
            .run()
        )
        # same seed, different generative process -> different training
        assert temporal.final_loss != imbalanced.final_loss

    def test_scenario_serializes_into_config_payload(self, tiny_config):
        config = tiny_config.with_(scenario="bursty")
        payload = json.loads(json.dumps(config_to_dict(config)))
        assert payload["scenario"] == "bursty"
        assert config_from_dict(payload) == config
        # old payloads without the field default to temporal
        del payload["scenario"]
        assert config_from_dict(payload).scenario == "temporal"

    @pytest.mark.parametrize(
        "scenario",
        ["cyclic-drift", "corrupted", "corrupted(bursty(imbalanced))"],
    )
    def test_checkpoint_resume_bitwise_with_scenario(
        self, tiny_config, tmp_path, scenario
    ):
        """Resume under a non-default scenario reproduces the
        uninterrupted run's step statistics bit for bit — including the
        corrupted wrapper's noise draws."""
        config = tiny_config.with_(scenario=scenario)
        full_stats = []
        full = (
            Session(config, "contrast-scoring")
            .with_eval_points(2)
            .on_step(lambda learner, stats: full_stats.append(stats))
            .run()
        )

        split = 3
        part = Session(config, "contrast-scoring").with_eval_points(2)
        part.run(stop_after=split)
        path = str(tmp_path / f"{scenario}.npz")
        part.save_checkpoint(path)

        # the checkpoint carries the scenario inside the config
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
        assert meta["config"]["scenario"] == scenario

        resumed_stats = []
        resumed = (
            Session.resume(path)
            .on_step(lambda learner, stats: resumed_stats.append(stats))
            .run()
        )
        assert len(resumed_stats) == len(full_stats) - split
        for a, b in zip(full_stats[split:], resumed_stats):
            assert a.iteration == b.iteration
            assert a.loss == b.loss  # bitwise
            assert a.num_scored == b.num_scored
        assert resumed.final_accuracy == full.final_accuracy
        assert resumed.curve.accuracies == full.curve.accuracies
        assert resumed.info == full.info
        assert resumed.config.scenario == scenario


class TestScenarioSweep:
    def test_grid_covers_all_cells(self, tiny_config):
        result = run_scenario_sweep(
            tiny_config,
            scenarios=("temporal", "cyclic"),
            policies=("fifo", "cs"),
            seeds=(0,),
        )
        assert result.scenarios == ("temporal", "cyclic-drift")  # canonical
        assert result.policies == ("fifo", "contrast-scoring")
        for scenario in result.scenarios:
            for policy in result.policies:
                assert (scenario, policy) in result.knn_accuracy
                assert (scenario, policy) in result.buffer_diversity
                assert len(result.runs[(scenario, policy)]) == 1
        assert result.robustness_gap("fifo") >= 0.0

    def test_default_roster_is_every_registered_scenario(self, tiny_config):
        result = run_scenario_sweep(
            tiny_config.with_(total_samples=16, buffer_size=8),
            policies=("fifo",),
        )
        assert set(result.scenarios) == set(scenario_names())

    def test_validation(self, tiny_config):
        with pytest.raises(ValueError, match="seed"):
            run_scenario_sweep(tiny_config, seeds=())
        with pytest.raises(ValueError, match="scenario"):
            run_scenario_sweep(tiny_config, scenarios=())

    def test_alias_and_canonical_roster_entries_deduped(self, tiny_config):
        """An alias plus its canonical name must not double a grid row."""
        result = run_scenario_sweep(
            tiny_config,
            scenarios=("cyclic", "cyclic-drift"),
            policies=("fifo", "first-in-first-out"),
            seeds=(0,),
        )
        assert result.scenarios == ("cyclic-drift",)
        assert result.policies == ("fifo",)
        assert len(result.runs[("cyclic-drift", "fifo")]) == 1

    def test_parallel_equals_serial_bitwise(self, tiny_config):
        kwargs = dict(
            scenarios=("bursty", "corrupted"),
            policies=("fifo", "contrast-scoring"),
            seeds=(0,),
        )
        serial = run_scenario_sweep(tiny_config, workers=1, **kwargs)
        parallel = run_scenario_sweep(tiny_config, workers=2, **kwargs)
        for key in serial.runs:
            for a, b in zip(serial.runs[key], parallel.runs[key]):
                assert result_fingerprint(a) == result_fingerprint(b)
        assert serial.knn_accuracy == parallel.knn_accuracy
        assert serial.buffer_diversity == parallel.buffer_diversity

    def test_scenario_rides_spec_payload_across_the_wire(self, tiny_config):
        spec = SweepSpec(config=tiny_config.with_(scenario="imbalanced"), policy="fifo")
        restored = SweepSpec.from_payload(
            json.loads(json.dumps(spec.to_payload()))
        )
        assert restored.config.scenario == "imbalanced"
        (direct,) = run_sweep([spec])
        (roundtripped,) = run_sweep([restored])
        assert result_fingerprint(direct) == result_fingerprint(roundtripped)
        assert direct.config.scenario == "imbalanced"

    def test_composition_rides_spec_payload_across_the_wire(self, tiny_config):
        """Composition strings serialize into sweep payloads bitwise —
        the canonical string comes back through a JSON round trip and
        the run fingerprint is unchanged."""
        composition = "corrupted(bursty(imbalanced),noise_std=0.3)"
        spec = SweepSpec(
            config=tiny_config.with_(scenario=composition), policy="fifo"
        )
        restored = SweepSpec.from_payload(
            json.loads(json.dumps(spec.to_payload()))
        )
        assert restored.config.scenario == composition
        (direct,) = run_sweep([spec])
        (roundtripped,) = run_sweep([restored])
        assert result_fingerprint(direct) == result_fingerprint(roundtripped)
        assert direct.config.scenario == composition

    def test_composition_grid_rows_parallel_equals_serial(self, tiny_config):
        kwargs = dict(
            scenarios=("corrupted(bursty)", "label-shift(imbalanced)"),
            policies=("fifo",),
            seeds=(0,),
        )
        serial = run_scenario_sweep(tiny_config, workers=1, **kwargs)
        parallel = run_scenario_sweep(tiny_config, workers=2, **kwargs)
        assert serial.scenarios == (
            "corrupted(bursty)",
            "label-shift(imbalanced)",
        )
        for key in serial.runs:
            for a, b in zip(serial.runs[key], parallel.runs[key]):
                assert result_fingerprint(a) == result_fingerprint(b)

    def test_format_renders_the_grid(self, tiny_config):
        result = run_scenario_sweep(
            tiny_config, scenarios=("temporal",), policies=("fifo",), seeds=(0,)
        )
        text = format_scenario_sweep(result)
        assert "scenario" in text
        assert "temporal" in text
        assert "fifo" in text
        assert "robustness gap" in text
