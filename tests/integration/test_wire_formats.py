"""Wire formats: registry semantics, bitwise round-trips, shm segment
lifecycle (success AND crash paths), the delta protocol, and the
fleet-level identity contract under every registered codec."""

import multiprocessing
import os

import numpy as np
import pytest

from repro.experiments.config import StreamExperimentConfig
from repro.experiments.wire import (
    DeltaFormat,
    WIRE_FORMAT_ENV,
    WireProtocolError,
    create_wire_format,
    decode_state_payload,
    default_wire_format,
    outstanding_shm_segments,
    resolve_wire_format,
    shm_available,
)
from repro.registry import UnknownComponentError, WIRE_FORMATS

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def tiny_config(**overrides):
    base = dict(
        dataset="cifar10",
        image_size=8,
        stc=8,
        total_samples=64,
        buffer_size=8,
        encoder_widths=(8, 16),
        encoder_blocks=1,
        projection_dim=8,
        probe_train_per_class=4,
        probe_test_per_class=2,
        probe_epochs=2,
        seed=0,
    )
    base.update(overrides)
    return StreamExperimentConfig(**base)


def sample_state(seed=0):
    """A fleet-payload-shaped array dict covering the tricky dtypes."""
    rng = np.random.default_rng(seed)
    return {
        "conv.weight": rng.normal(size=(8, 3, 3, 3)).astype(np.float32),
        "bn.running_mean": rng.normal(size=16).astype(np.float64),
        "step": np.asarray(42, dtype=np.int64),  # 0-d
        "empty": np.zeros((0, 4), dtype=np.float32),  # zero-size
        "mask": rng.integers(0, 2, size=(5,)).astype(bool),
        "fortran": np.asfortranarray(rng.normal(size=(4, 6)).astype(np.float32)),
    }


def formats_under_test():
    names = []
    for name in sorted(WIRE_FORMATS.names()):
        if name == "shm" and not shm_available():
            continue
        names.append(name)
    return names


def lossless_formats_under_test():
    """The bitwise-identity contract only covers lossless codecs; the
    lossy delta codecs (delta-q8, delta-topk) carry documented
    tolerances instead (tests/property/test_codec_properties.py)."""
    from repro.experiments.wire import lossless_wire_format_names

    return [n for n in formats_under_test() if n in lossless_wire_format_names()]


class TestRegistry:
    def test_builtins_registered(self):
        assert {"json-b64", "shm", "delta"} <= set(WIRE_FORMATS.names())

    def test_aliases_resolve(self):
        assert WIRE_FORMATS.get("json").name == "json-b64"
        assert WIRE_FORMATS.get("diff").name == "delta"
        assert WIRE_FORMATS.get("shared-memory").name == "shm"

    def test_unknown_name_suggests(self):
        with pytest.raises(UnknownComponentError, match="delta"):
            WIRE_FORMATS.get("detla")

    def test_resolve_priority_arg_over_env(self, monkeypatch):
        monkeypatch.setenv(WIRE_FORMAT_ENV, "json-b64")
        assert resolve_wire_format("shm" if shm_available() else "delta") != "json-b64"
        assert resolve_wire_format(None) == "json-b64"
        monkeypatch.delenv(WIRE_FORMAT_ENV)
        assert resolve_wire_format(None) is None

    def test_resolve_rejects_unknown_env(self, monkeypatch):
        monkeypatch.setenv(WIRE_FORMAT_ENV, "carrier-pigeon")
        with pytest.raises(UnknownComponentError):
            resolve_wire_format(None)

    def test_default_is_delta(self):
        assert default_wire_format() == "delta"


class TestRoundTrip:
    @pytest.mark.parametrize("name", formats_under_test())
    def test_bitwise_round_trip(self, name):
        state = sample_state()
        codec = create_wire_format(name)
        decoded = codec.decode(codec.encode(state, channel="t"), channel="t")
        assert set(decoded) == set(state)
        for key, value in state.items():
            out = decoded[key]
            assert out.dtype == value.dtype, key
            assert out.shape == value.shape, key
            np.testing.assert_array_equal(out, value)
        assert outstanding_shm_segments() == []

    @pytest.mark.parametrize("name", formats_under_test())
    def test_payload_is_self_describing(self, name):
        state = sample_state(seed=1)
        payload = create_wire_format(name).encode(state)
        assert payload["wire"] == name
        decoded = decode_state_payload(payload)
        np.testing.assert_array_equal(decoded["conv.weight"], state["conv.weight"])

    @pytest.mark.parametrize("name", formats_under_test())
    def test_empty_state_round_trips(self, name):
        codec = create_wire_format(name)
        assert codec.decode(codec.encode({})) == {}
        assert outstanding_shm_segments() == []


@needs_shm
class TestShmLifecycle:
    def test_segments_unlinked_after_decode(self):
        codec = create_wire_format("shm")
        payload = codec.encode(sample_state())
        assert payload["segment"] in outstanding_shm_segments()
        codec.decode(payload)
        assert outstanding_shm_segments() == []

    def test_release_is_idempotent_backstop(self):
        codec = create_wire_format("shm")
        payload = codec.encode(sample_state())
        codec.release(payload)  # receiver never decoded (e.g. it crashed)
        codec.release(payload)  # double release must be a no-op
        assert outstanding_shm_segments() == []

    def test_decode_after_unlink_fails_loudly(self):
        codec = create_wire_format("shm")
        payload = codec.encode(sample_state())
        codec.release(payload)
        with pytest.raises(WireProtocolError, match="segment"):
            codec.decode(payload)

    def test_crashed_receiver_leaves_no_segment(self):
        """A worker dying mid-round must not leak the staged segment:
        the sender's release() backstop reclaims it."""
        codec = create_wire_format("shm")
        payload = codec.encode(sample_state())

        def consumer_that_dies(payload):
            os._exit(1)  # simulates a worker crash before decode

        ctx = multiprocessing.get_context()
        proc = ctx.Process(target=consumer_that_dies, args=(payload,))
        proc.start()
        proc.join()
        assert proc.exitcode == 1
        codec.release(payload)
        assert outstanding_shm_segments() == []

    def test_all_empty_payload_has_no_segment(self):
        codec = create_wire_format("shm")
        payload = codec.encode({"empty": np.zeros((0,), dtype=np.float32)})
        assert payload["segment"] is None
        decoded = codec.decode(payload)
        assert decoded["empty"].shape == (0,)


class TestDeltaProtocol:
    def test_second_send_ships_only_changed(self):
        sender = DeltaFormat(inner="json-b64")
        receiver = DeltaFormat(inner="json-b64")
        state = sample_state()
        first = sender.encode(state, channel="d0")
        assert first["full"]
        receiver.decode(first, channel="d0")

        state2 = dict(state)
        state2["conv.weight"] = state["conv.weight"] + 1.0
        second = sender.encode(state2, channel="d0")
        assert not second["full"]
        assert set(second["inner"]["arrays"]) == {"conv.weight"}
        decoded = receiver.decode(second, channel="d0")
        assert set(decoded) == set(state2)
        for key, value in state2.items():
            np.testing.assert_array_equal(decoded[key], value)

    def test_decode_without_base_fails_loudly(self):
        sender = DeltaFormat(inner="json-b64")
        fresh_receiver = DeltaFormat(inner="json-b64")
        state = sample_state()
        sender.encode(state, channel="d1")  # prime the sender
        delta = sender.encode(state, channel="d1")  # hash-identical resend
        with pytest.raises(WireProtocolError, match="no cached base"):
            fresh_receiver.decode(delta, channel="d1")

    def test_invalidate_forces_full_resend(self):
        sender = DeltaFormat(inner="json-b64")
        state = sample_state()
        sender.encode(state, channel="d2")
        sender.invalidate("d2")
        assert sender.encode(state, channel="d2")["full"]

    def test_channels_are_independent(self):
        sender = DeltaFormat(inner="json-b64")
        state = sample_state()
        sender.encode(state, channel="a")
        assert sender.encode(state, channel="b")["full"]

    def test_delta_cannot_nest(self):
        with pytest.raises(ValueError, match="nest"):
            DeltaFormat(inner="delta")


class TestFleetIdentity:
    @pytest.mark.parametrize("name", lossless_formats_under_test())
    def test_fleet_of_one_matches_plain_session(self, name):
        """Satellite: a 1-device fleet shipping state through any wire
        format (multi-round, so state round-trips the codec between
        rounds) reproduces a plain Session bitwise."""
        from repro.experiments.parallel import result_fingerprint
        from repro.fleet import FleetConfig, FleetCoordinator
        from repro.session import Session

        config = tiny_config()
        plain = Session(config, "contrast-scoring").with_eval_points(1).run()
        fleet = FleetCoordinator(
            config.with_(
                fleet=FleetConfig.uniform(1, rounds=2), aggregator="fedavg"
            ),
            wire_format=name,
        ).run()
        assert result_fingerprint(fleet.device_results[0]) == result_fingerprint(
            plain
        )
        assert fleet.final_global_knn_accuracy == plain.info["final_knn_accuracy"]
        assert outstanding_shm_segments() == []

    @pytest.mark.parametrize("name", lossless_formats_under_test())
    def test_parallel_identity_under_every_format(self, name):
        from repro.fleet import FleetCoordinator

        config = tiny_config()
        serial = FleetCoordinator.build(config, devices=2, rounds=2, workers=1).run()
        parallel = FleetCoordinator.build(
            config, devices=2, rounds=2, workers=2, wire_format=name
        ).run()
        assert serial.fingerprint() == parallel.fingerprint()
        assert outstanding_shm_segments() == []

    def test_result_records_wire_and_timings(self):
        from repro.fleet import FleetCoordinator

        coordinator = FleetCoordinator.build(
            tiny_config(), devices=2, rounds=1, workers=2, wire_format="json-b64"
        )
        result = coordinator.run()
        assert result.wire_format == "json-b64"
        assert len(result.timings) == 1
        entry = result.timings[0]
        assert entry["wire"] == "json-b64"
        for key in ("serialize_s", "transport_s", "compute_s", "merge_s", "wall_s"):
            assert entry[key] >= 0.0
        # timings never leak into the identity contract
        assert "timings" not in result.fingerprint()

    def test_unknown_wire_format_names_field(self):
        from repro.fleet import FleetCoordinator

        with pytest.raises(ValueError, match="wire_format"):
            FleetCoordinator.build(tiny_config(), devices=1, wire_format="pigeon")
