"""Tests for the CLI entry point."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCliRegistry:
    def test_all_design_md_experiments_present(self):
        expected = {
            "fig3",
            "fig4a",
            "fig4b",
            "fig5a",
            "fig5b",
            "fig6a",
            "fig6b",
            "table1",
            "table2",
            "ablation-grad",
            "ablation-views",
            "ablation-stc",
            "ablation-momentum",
            "ablation-drift",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_help_lists_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "table1" in out

    def test_runs_tiny_experiment(self, capsys, monkeypatch):
        """Exercise the dispatch path end-to-end at minimum scale."""
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
        # shrink further by monkeypatching the default config used by CLI
        import repro.cli as cli_mod
        from repro.experiments.config import StreamExperimentConfig

        tiny = StreamExperimentConfig(
            dataset="cifar10",
            image_size=8,
            stc=4,
            total_samples=64,
            buffer_size=8,
            encoder_widths=(8, 16),
            projection_dim=8,
            probe_train_per_class=2,
            probe_test_per_class=2,
            probe_epochs=2,
        )
        monkeypatch.setattr(
            cli_mod, "default_config", lambda *a, **k: tiny
        )
        monkeypatch.setattr(cli_mod, "scaled_config", lambda cfg: cfg)
        code = main(["ablation-stc", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ablation-stc" in out
        assert "STC" in out
