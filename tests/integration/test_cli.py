"""Tests for the CLI entry point."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCliRegistry:
    def test_all_design_md_experiments_present(self):
        expected = {
            "fig3",
            "fig4a",
            "fig4b",
            "fig5a",
            "fig5b",
            "fig6a",
            "fig6b",
            "table1",
            "table2",
            "ablation-grad",
            "ablation-views",
            "ablation-stc",
            "ablation-momentum",
            "ablation-drift",
            "stream",
            "multi-seed",
            "scenario-sweep",
            "fleet",
            "serve",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_help_lists_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "table1" in out

    def test_list_flag_enumerates_registries(self, capsys):
        code = main(["--list"])
        out = capsys.readouterr().out
        assert code == 0
        # experiment ids
        assert "fig3" in out and "stream" in out
        # registered policies with labels and aliases
        assert "contrast-scoring" in out and "Contrast Scoring" in out
        assert "aliases:" in out
        # datasets / encoders / augments sections
        assert "cifar10" in out
        assert "resnet-micro" in out
        assert "simclr" in out

    def test_experiment_required_without_list(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_policy_rejected_with_suggestion(self, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--policy", "contrast-scorin"])
        err = capsys.readouterr().err
        assert "did you mean" in err
        assert "contrast-scoring" in err

    def test_policy_not_supported_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--policy", "fifo"])
        captured = capsys.readouterr()
        assert "does not take --policy" in captured.err
        # rejected before any run output: no started-run header on stdout
        assert "== table1" not in captured.out

    def test_runs_tiny_experiment(self, capsys, monkeypatch):
        """Exercise the dispatch path end-to-end at minimum scale."""
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
        # shrink further by monkeypatching the default config used by CLI
        import repro.cli as cli_mod
        from repro.experiments.config import StreamExperimentConfig

        tiny = StreamExperimentConfig(
            dataset="cifar10",
            image_size=8,
            stc=4,
            total_samples=64,
            buffer_size=8,
            encoder_widths=(8, 16),
            projection_dim=8,
            probe_train_per_class=2,
            probe_test_per_class=2,
            probe_epochs=2,
        )
        monkeypatch.setattr(
            cli_mod, "default_config", lambda *a, **k: tiny
        )
        monkeypatch.setattr(cli_mod, "scaled_config", lambda cfg: cfg)
        code = main(["ablation-stc", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ablation-stc" in out
        assert "STC" in out

    def test_stream_experiment_honors_policy_alias(self, capsys, monkeypatch):
        """`stream --policy` runs one Session with the resolved policy."""
        import repro.cli as cli_mod
        from repro.experiments.config import StreamExperimentConfig

        tiny = StreamExperimentConfig(
            dataset="cifar10",
            image_size=8,
            stc=4,
            total_samples=64,
            buffer_size=8,
            encoder_widths=(8, 16),
            projection_dim=8,
            probe_train_per_class=2,
            probe_test_per_class=2,
            probe_epochs=2,
        )
        monkeypatch.setattr(cli_mod, "default_config", lambda *a, **k: tiny)
        monkeypatch.setattr(cli_mod, "scaled_config", lambda cfg: cfg)
        # "random" is an alias of random-replace; it must resolve.
        code = main(["stream", "--policy", "random"])
        out = capsys.readouterr().out
        assert code == 0
        assert "policy=random-replace" in out
        assert "seen inputs" in out


def _tiny(monkeypatch):
    import repro.cli as cli_mod
    from repro.experiments.config import StreamExperimentConfig

    tiny = StreamExperimentConfig(
        dataset="cifar10",
        image_size=8,
        stc=4,
        total_samples=64,
        buffer_size=8,
        encoder_widths=(8, 16),
        projection_dim=8,
        probe_train_per_class=2,
        probe_test_per_class=2,
        probe_epochs=2,
    )
    monkeypatch.setattr(cli_mod, "default_config", lambda *a, **k: tiny)
    monkeypatch.setattr(cli_mod, "scaled_config", lambda cfg: cfg)


class TestWorkersFlag:
    def test_workers_rejected_for_non_sweep_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--workers", "2"])
        assert "does not take --workers" in capsys.readouterr().err

    def test_workers_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["multi-seed", "--workers", "0"])
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_seeds_rejected_outside_multi_seed(self, capsys):
        with pytest.raises(SystemExit):
            main(["table2", "--seeds", "0,1"])
        assert "does not take --seeds" in capsys.readouterr().err

    def test_seeds_must_parse(self, capsys):
        with pytest.raises(SystemExit):
            main(["multi-seed", "--seeds", "0,x"])
        assert "comma-separated ints" in capsys.readouterr().err

    def test_multi_seed_runs_with_workers(self, capsys, monkeypatch):
        _tiny(monkeypatch)
        code = main(
            ["multi-seed", "--policy", "fifo", "--seeds", "0,1", "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "multi-seed" in out
        assert "fifo" in out
        assert "±" in out


class TestScenarioFlag:
    def test_unknown_scenario_rejected_with_suggestion(self, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--scenario", "cyclic-drif"])
        captured = capsys.readouterr()
        assert "unknown scenario" in captured.err
        assert "did you mean" in captured.err
        assert "cyclic-drift" in captured.err
        assert "== stream" not in captured.out

    def test_scenario_rejected_for_fixed_stream_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--scenario", "bursty"])
        assert "does not take --scenario" in capsys.readouterr().err

    def test_list_shows_scenarios(self, capsys):
        code = main(["--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "scenarios:" in out
        assert "cyclic-drift" in out and "bursty" in out
        assert "imbalanced" in out and "corrupted" in out
        assert "Recurring environments" in out

    def test_stream_honors_scenario_alias(self, capsys, monkeypatch):
        """`stream --scenario` runs the Session on the resolved scenario."""
        _tiny(monkeypatch)
        code = main(["stream", "--policy", "fifo", "--scenario", "cyclic"])
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario=cyclic-drift" in out

    def test_scenario_sweep_runs_restricted_roster(self, capsys, monkeypatch):
        _tiny(monkeypatch)
        code = main(
            ["scenario-sweep", "--policy", "fifo", "--scenario", "stationary"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "temporal" in out  # alias resolved to the canonical row
        assert "fifo" in out
        assert "robustness gap" in out


class TestScenarioComposition:
    def test_list_splits_bases_from_wrappers(self, capsys):
        code = main(["--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario wrappers (compose over any scenario):" in out
        assert "composition syntax:" in out
        assert 'corrupted(bursty(imbalanced))' in out
        # wrappers listed under the wrapper section, not scenarios:
        bases = out.split("scenario wrappers")[0]
        wrappers = out.split("scenario wrappers")[1]
        assert "label-shift" in wrappers and "adversarial" in wrappers
        assert "label-shift" not in bases.split("policies:")[-1]

    def test_stream_runs_composition_end_to_end(self, capsys, monkeypatch):
        """The flagship composition survives the full CLI path: parse,
        canonicalize, Session run, summary line."""
        _tiny(monkeypatch)
        code = main(
            [
                "stream",
                "--policy",
                "fifo",
                "--scenario",
                "corrupted(bursty(imbalanced))",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario=corrupted(bursty(imbalanced))" in out
        assert "seen inputs" in out

    def test_composition_canonicalized_before_run(self, capsys, monkeypatch):
        """Aliases and spacing normalize to the canonical composition."""
        _tiny(monkeypatch)
        code = main(
            [
                "stream",
                "--policy",
                "fifo",
                "--scenario",
                " noisy( bursty( long-tail ) ) ",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario=corrupted(bursty(imbalanced))" in out

    def test_malformed_composition_rejected_before_run(self, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--scenario", "corrupted(bursty("])
        captured = capsys.readouterr()
        assert "invalid scenario composition" in captured.err
        assert "== stream" not in captured.out

    def test_bad_wrapper_structure_rejected_with_path(self, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--scenario", "corrupted(temporal(bursty))"])
        err = capsys.readouterr().err
        assert "is a base scenario, not a wrapper" in err

    def test_scenario_sweep_accepts_composition_rows(self, capsys, monkeypatch):
        _tiny(monkeypatch)
        code = main(
            [
                "scenario-sweep",
                "--policy",
                "fifo",
                "--scenario",
                "corrupted(bursty)",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "corrupted(bursty)" in out
        assert "robustness gap" in out


class TestFleetFlags:
    @pytest.mark.parametrize("flag", ["--aggregator", "--devices", "--rounds"])
    def test_fleet_flags_rejected_outside_fleet(self, capsys, flag):
        value = "fedavg" if flag == "--aggregator" else "2"
        with pytest.raises(SystemExit):
            main(["stream", flag, value])
        assert f"does not take {flag}" in capsys.readouterr().err

    def test_unknown_aggregator_rejected_with_suggestion(self, capsys):
        with pytest.raises(SystemExit):
            main(["fleet", "--aggregator", "fedav"])
        captured = capsys.readouterr()
        assert "unknown aggregator" in captured.err
        assert "did you mean" in captured.err

    @pytest.mark.parametrize("flag", ["--devices", "--rounds"])
    def test_fleet_counts_must_be_positive(self, capsys, flag):
        with pytest.raises(SystemExit):
            main(["fleet", flag, "0"])
        assert f"{flag} must be >= 1" in capsys.readouterr().err

    def test_list_shows_aggregators(self, capsys):
        code = main(["--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "aggregators:" in out
        assert "fedavg" in out and "fedavg-momentum" in out
        assert "best-of" in out and "local-only" in out
        assert "Sample-weighted parameter averaging" in out

    def test_fleet_runs_with_alias_and_workers(self, capsys, monkeypatch):
        """`fleet` honors aggregator aliases, --devices/--rounds, and
        fans rounds over --workers."""
        _tiny(monkeypatch)
        code = main(
            [
                "fleet",
                "--devices",
                "2",
                "--rounds",
                "2",
                "--aggregator",
                "avg",
                "--workers",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "aggregator=fedavg devices=2 rounds=2" in out
        assert "fleet-vs-single-device gap" in out
        assert "device0" in out and "device1" in out


class TestBackendFlag:
    @pytest.fixture(autouse=True)
    def _restore_backend(self, monkeypatch):
        """--backend mutates the process default and the env; undo both."""
        from repro.nn.backend import get_backend, set_backend

        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        before = get_backend()
        yield
        set_backend(before)

    def test_unknown_backend_rejected_with_suggestion(self, capsys):
        """Mirrors the policy/dataset behavior: registry error with a
        'did you mean' hint, before any run output."""
        with pytest.raises(SystemExit):
            main(["stream", "--backend", "fuzed"])
        captured = capsys.readouterr()
        assert "unknown backend" in captured.err
        assert "did you mean" in captured.err
        assert "fused" in captured.err
        assert "== stream" not in captured.out

    def test_list_shows_backends(self, capsys):
        code = main(["--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "backends:" in out
        assert "numpy" in out and "fused" in out
        assert "Fused inference" in out

    def test_backend_alias_selects_and_exports(self, capsys, monkeypatch):
        import os

        from repro.nn.backend import get_backend

        _tiny(monkeypatch)
        code = main(["stream", "--backend", "fast"])  # alias of fused
        assert code == 0
        assert get_backend().name == "fused"
        assert os.environ.get("REPRO_BACKEND") == "fused"
        assert "policy=contrast-scoring" in capsys.readouterr().out
