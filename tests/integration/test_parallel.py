"""Tests for the process-parallel sweep engine.

The load-bearing property: a parallel sweep must be *indistinguishable*
from the serial one on every deterministic field — same runs, same
order, bit-identical numbers.  Only wall-clock timings may differ.
"""

import numpy as np
import pytest

from repro.experiments.config import StreamExperimentConfig
from repro.experiments.multi_seed import run_multi_seed
from repro.experiments.parallel import (
    SweepSpec,
    TIMING_FIELDS,
    result_fingerprint,
    run_sweep,
)
from repro.experiments.runner import run_stream_experiment
from repro.experiments.table2 import run_table2


@pytest.fixture
def tiny_config():
    return StreamExperimentConfig(
        dataset="cifar10",
        image_size=8,
        stc=8,
        total_samples=64,
        buffer_size=8,
        encoder_widths=(8, 16),
        projection_dim=8,
        probe_train_per_class=3,
        probe_test_per_class=2,
        probe_epochs=2,
        seed=0,
    )


class TestSweepSpec:
    def test_payload_round_trip(self, tiny_config):
        spec = SweepSpec(
            config=tiny_config,
            policy="fifo",
            eval_points=2,
            label_fraction=0.5,
            lazy_interval=3,
            score_momentum=0.25,
            tag="fifo/seed0",
        )
        assert SweepSpec.from_payload(spec.to_payload()) == spec

    def test_payload_is_json_compatible(self, tiny_config):
        import json

        payload = SweepSpec(config=tiny_config).to_payload()
        assert json.loads(json.dumps(payload)) == payload


class TestRunSweep:
    def test_empty(self):
        assert run_sweep([], workers=4) == []

    def test_rejects_bad_workers(self, tiny_config):
        with pytest.raises(ValueError, match="workers"):
            run_sweep([SweepSpec(config=tiny_config)], workers=0)

    def test_serial_matches_direct_run(self, tiny_config):
        spec = SweepSpec(config=tiny_config, policy="fifo", eval_points=2)
        (swept,) = run_sweep([spec], workers=1)
        direct = run_stream_experiment(tiny_config, "fifo", eval_points=2)
        assert result_fingerprint(swept) == result_fingerprint(direct)

    def test_parallel_bitwise_identical_to_serial(self, tiny_config):
        """The tentpole guarantee: workers=1 and workers=4 agree on every
        deterministic field of every merged result."""
        specs = [
            SweepSpec(config=tiny_config.with_(seed=seed), policy=policy)
            for policy in ("fifo", "random-replace")
            for seed in (0, 1)
        ]
        serial = run_sweep(specs, workers=1)
        parallel = run_sweep(specs, workers=4)
        assert [result_fingerprint(r) for r in serial] == [
            result_fingerprint(r) for r in parallel
        ]

    def test_merge_preserves_spec_order(self, tiny_config):
        specs = [
            SweepSpec(config=tiny_config.with_(seed=seed), policy="fifo")
            for seed in (3, 1, 2, 0)
        ]
        results = run_sweep(specs, workers=2)
        assert [r.config.seed for r in results] == [3, 1, 2, 0]

    def test_workers_clamped_to_spec_count(self, tiny_config):
        # 1 spec + many workers must not spawn a pointless pool
        (result,) = run_sweep(
            [SweepSpec(config=tiny_config, policy="fifo")], workers=16
        )
        assert result.policy == "fifo"

    def test_fingerprint_drops_only_timing(self, tiny_config):
        (result,) = run_sweep([SweepSpec(config=tiny_config, policy="fifo")])
        payload = result.to_dict()
        fingerprint = result_fingerprint(result)
        assert set(payload) - set(fingerprint) == set(TIMING_FIELDS)


class TestMultiSeedWorkers:
    def test_parallel_equals_serial(self, tiny_config):
        kwargs = dict(policies=("fifo", "random-replace"), seeds=(0, 1))
        serial = run_multi_seed(tiny_config, workers=1, **kwargs)
        parallel = run_multi_seed(tiny_config, workers=2, **kwargs)
        for policy in kwargs["policies"]:
            assert (
                serial.aggregates[policy].accuracies
                == parallel.aggregates[policy].accuracies
            )
            for a, b in zip(serial.runs[policy], parallel.runs[policy]):
                assert result_fingerprint(a) == result_fingerprint(b)

    def test_runs_keyed_in_seed_order(self, tiny_config):
        result = run_multi_seed(
            tiny_config, policies=("fifo",), seeds=(2, 0), workers=2
        )
        assert [r.config.seed for r in result.runs["fifo"]] == [2, 0]


class TestTable2Workers:
    def test_parallel_equals_serial(self, tiny_config):
        kwargs = dict(buffer_sizes=(4, 8), policies=("fifo",))
        serial = run_table2(tiny_config, workers=1, **kwargs)
        parallel = run_table2(tiny_config, workers=2, **kwargs)
        for size in kwargs["buffer_sizes"]:
            assert result_fingerprint(serial.runs[size]["fifo"]) == (
                result_fingerprint(parallel.runs[size]["fifo"])
            )


class TestRngIsolation:
    def test_worker_runs_do_not_share_rng(self, tiny_config):
        """Different seeds must diverge, identical seeds must agree —
        regardless of which worker executed them."""
        specs = [
            SweepSpec(config=tiny_config.with_(seed=seed), policy="fifo")
            for seed in (0, 1, 0)
        ]
        a, b, c = run_sweep(specs, workers=3)
        assert result_fingerprint(a) == result_fingerprint(c)
        assert a.final_loss != b.final_loss
