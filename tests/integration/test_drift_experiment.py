"""Integration tests for the drift experiment harness."""

import pytest

from repro.experiments.config import StreamExperimentConfig
from repro.experiments.drift import format_drift, run_drift_experiment


@pytest.fixture
def tiny_config():
    return StreamExperimentConfig(
        dataset="cifar10",
        image_size=8,
        stc=8,
        total_samples=128,
        buffer_size=8,
        encoder_widths=(8, 16),
        projection_dim=8,
        probe_train_per_class=4,
        probe_test_per_class=2,
        probe_epochs=5,
        seed=0,
    )


class TestDriftExperiment:
    def test_structure(self, tiny_config):
        result = run_drift_experiment(
            tiny_config, policies=("contrast-scoring", "fifo"), num_phases=2
        )
        assert set(result.overall) == {"contrast-scoring", "fifo"}
        assert result.num_phases == 2
        # growing phases over 10 classes: second phase introduces 5
        assert result.new_classes == [5, 6, 7, 8, 9]
        for policy in result.overall:
            assert 0.0 <= result.overall[policy] <= 1.0
            assert 0.0 <= result.old_class_acc[policy] <= 1.0
            assert 0.0 <= result.new_class_acc[policy] <= 1.0

    def test_single_phase_no_new_classes_split(self, tiny_config):
        result = run_drift_experiment(
            tiny_config, policies=("fifo",), num_phases=1
        )
        # with one phase every class counts as "new" (none were pre-drift)
        assert result.new_classes == list(range(10))

    def test_format(self, tiny_config):
        result = run_drift_experiment(tiny_config, policies=("fifo",), num_phases=2)
        text = format_drift(result)
        assert "new-class acc" in text
        assert "fifo" in text

    def test_reproducible(self, tiny_config):
        a = run_drift_experiment(tiny_config, policies=("fifo",), num_phases=2)
        b = run_drift_experiment(tiny_config, policies=("fifo",), num_phases=2)
        assert a.overall == b.overall
