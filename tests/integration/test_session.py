"""Integration tests for the Session surface: parity with the legacy
runner, JSON serialization, checkpoint/resume determinism, plugin
policies, and the deprecation shims."""

import json
import os

import numpy as np
import pytest

from repro.experiments.config import StreamExperimentConfig
from repro.experiments.runner import run_stream_experiment
from repro.registry import POLICIES, register_policy
from repro.selection import FIFOPolicy
from repro.session import (
    Session,
    StreamRunResult,
    build_components,
    config_from_dict,
    config_to_dict,
)


@pytest.fixture
def tiny_config():
    return StreamExperimentConfig(
        dataset="cifar10",
        image_size=8,
        stc=8,
        total_samples=96,
        buffer_size=8,
        encoder_widths=(8, 16),
        encoder_blocks=1,
        projection_dim=8,
        probe_train_per_class=4,
        probe_test_per_class=2,
        probe_epochs=3,
        seed=0,
    )


class TestSessionParity:
    def test_session_reproduces_run_stream_experiment(self, tiny_config):
        """Acceptance: Session.run() == run_stream_experiment, exactly."""
        legacy = run_stream_experiment(tiny_config, "contrast-scoring", eval_points=2)
        session = (
            Session.from_config(tiny_config)
            .with_policy("contrast-scoring")
            .with_eval_points(2)
            .run()
        )
        assert session.final_accuracy == legacy.final_accuracy
        assert session.curve.seen_inputs == legacy.curve.seen_inputs
        assert session.curve.accuracies == legacy.curve.accuracies
        assert session.final_loss == legacy.final_loss
        assert session.buffer_class_diversity == legacy.buffer_class_diversity

    def test_parity_for_stochastic_policy(self, tiny_config):
        legacy = run_stream_experiment(tiny_config, "random-replace", eval_points=1)
        via_session = Session(tiny_config, "random-replace").with_eval_points(1).run()
        assert via_session.final_accuracy == legacy.final_accuracy
        assert via_session.final_loss == legacy.final_loss

    def test_from_config_overrides(self, tiny_config):
        session = Session.from_config(tiny_config, seed=3, stc=4)
        assert session.config.seed == 3
        assert session.config.stc == 4
        # original untouched (frozen dataclass copies)
        assert tiny_config.seed == 0

    def test_alias_policy_canonicalized_in_result(self, tiny_config):
        result = Session(tiny_config, "cs").with_eval_points(1).run()
        assert result.policy == "contrast-scoring"
        assert result.curve.method == "contrast-scoring"

    def test_callbacks_fire(self, tiny_config):
        steps, probes, finishes = [], [], []
        result = (
            Session(tiny_config, "fifo")
            .with_eval_points(2)
            .on_step(lambda learner, stats: steps.append(stats.iteration))
            .on_probe(lambda learner, seen, acc: probes.append((seen, acc)))
            .on_finish(finishes.append)
            .run()
        )
        assert len(steps) == tiny_config.iterations
        assert probes[-1][0] == tiny_config.total_samples
        assert [p[1] for p in probes] == result.curve.accuracies
        assert finishes == [result]


class TestResultSerialization:
    def test_to_dict_json_roundtrip(self, tiny_config):
        result = Session(tiny_config, "fifo").with_eval_points(1).run()
        payload = json.dumps(result.to_dict())
        restored = StreamRunResult.from_dict(json.loads(payload))
        assert restored.policy == result.policy
        assert restored.config == result.config
        assert restored.final_accuracy == result.final_accuracy
        assert restored.curve.seen_inputs == result.curve.seen_inputs
        assert restored.curve.accuracies == result.curve.accuracies
        assert restored.rescoring_fraction == result.rescoring_fraction

    def test_nan_fields_serialize_to_strict_json(self, tiny_config):
        """A run stopped before any probe has NaN accuracy/loss; the dict
        must still be strict JSON (null, not the NaN literal)."""
        session = Session(tiny_config, "fifo").with_eval_points(1)
        result = session.run(stop_after=0)
        payload = json.dumps(result.to_dict(), allow_nan=False)  # must not raise
        restored = StreamRunResult.from_dict(json.loads(payload))
        assert np.isnan(restored.final_accuracy)
        assert np.isnan(restored.final_loss)

    def test_config_dict_roundtrip(self, tiny_config):
        assert config_from_dict(config_to_dict(tiny_config)) == tiny_config
        assert json.loads(json.dumps(config_to_dict(tiny_config)))


class TestCheckpointResume:
    @pytest.mark.parametrize("policy", ["contrast-scoring", "random-replace"])
    def test_resume_is_bitwise_identical(self, tiny_config, tmp_path, policy):
        """Checkpoint → resume reproduces the uninterrupted run's
        StepStats bit for bit (timing fields excluded)."""
        full_stats = []
        full = (
            Session(tiny_config, policy)
            .with_eval_points(3)
            .on_step(lambda learner, stats: full_stats.append(stats))
            .run()
        )

        split = 5
        part = Session(tiny_config, policy).with_eval_points(3)
        part.run(stop_after=split)
        path = str(tmp_path / "ckpt.npz")
        part.save_checkpoint(path)

        resumed_stats = []
        resumed_session = Session.resume(path).on_step(
            lambda learner, stats: resumed_stats.append(stats)
        )
        resumed = resumed_session.run()

        assert len(resumed_stats) == len(full_stats) - split
        for a, b in zip(full_stats[split:], resumed_stats):
            assert a.iteration == b.iteration
            assert a.seen_inputs == b.seen_inputs
            assert a.loss == b.loss  # bitwise: same float
            assert a.buffer_size == b.buffer_size
            assert a.num_scored == b.num_scored
            assert a.info == b.info
        assert resumed.final_accuracy == full.final_accuracy
        assert resumed.curve.seen_inputs == full.curve.seen_inputs
        assert resumed.curve.accuracies == full.curve.accuracies
        assert resumed.rescoring_fraction == full.rescoring_fraction
        assert resumed.buffer_class_diversity == full.buffer_class_diversity

    def test_resume_with_lazy_scoring(self, tiny_config, tmp_path):
        full = (
            Session(tiny_config, "contrast-scoring")
            .with_eval_points(1)
            .with_lazy_interval(4)
            .run()
        )
        part = Session(tiny_config, "contrast-scoring").with_eval_points(1)
        part.with_lazy_interval(4).run(stop_after=4)
        path = str(tmp_path / "lazy.npz")
        part.save_checkpoint(path)
        resumed = Session.resume(path).run()
        assert resumed.final_accuracy == full.final_accuracy
        assert resumed.rescoring_fraction == full.rescoring_fraction

    def test_in_memory_state_dict_resume_is_bitwise(self, tiny_config):
        """state_dict/from_state_dict continue a run without touching
        disk, bitwise-identically (the fleet engine's device path)."""
        from repro.experiments.parallel import result_fingerprint

        full = Session(tiny_config, "contrast-scoring").with_eval_points(3).run()
        part = Session(tiny_config, "contrast-scoring").with_eval_points(3)
        part.run(stop_after=4)
        state = part.state_dict()
        resumed = Session.from_state_dict(state).run()
        assert result_fingerprint(resumed) == result_fingerprint(full)

    def test_state_dict_before_run_raises(self, tiny_config):
        with pytest.raises(RuntimeError, match="nothing to checkpoint"):
            Session(tiny_config, "fifo").state_dict()

    def test_from_state_dict_rejects_bad_version(self, tiny_config):
        session = Session(tiny_config, "fifo").with_eval_points(1)
        session.run(stop_after=1)
        state = session.state_dict()
        state["meta"]["version"] = 99
        with pytest.raises(ValueError, match="version"):
            Session.from_state_dict(state)

    def test_wall_seconds_accumulates_across_resume(self, tiny_config, tmp_path):
        part = Session(tiny_config, "fifo").with_eval_points(1)
        partial = part.run(stop_after=4)
        path = str(tmp_path / "wall.npz")
        part.save_checkpoint(path)
        with np.load(path, allow_pickle=False) as archive:
            saved_wall = json.loads(str(archive["meta"]))["wall_accum"]
        assert saved_wall >= partial.wall_seconds > 0.0
        resumed = Session.resume(path).run()
        # full-run wall time includes the pre-checkpoint portion
        assert resumed.wall_seconds > saved_wall

    def test_rerun_on_same_session_does_not_accumulate_wall_time(self, tiny_config):
        session = Session(tiny_config, "fifo").with_eval_points(1)
        first = session.run()
        # a second, empty run must not inherit the first run's wall time
        second = session.run(stop_after=0)
        assert second.wall_seconds < first.wall_seconds

    def test_periodic_checkpointing_writes_file(self, tiny_config, tmp_path):
        path = str(tmp_path / "auto.npz")
        session = (
            Session(tiny_config, "fifo")
            .with_eval_points(1)
            .with_checkpointing(path, every=4)
        )
        session.run()
        assert os.path.exists(path)
        # the checkpoint is loadable and carries the learner state
        resumed = Session.resume(path)
        assert resumed.config == tiny_config

    def test_checkpoint_path_without_suffix_is_normalized(self, tiny_config, tmp_path):
        """np.savez appends .npz silently; the returned path must be the
        file actually written, so resume works on it."""
        part = Session(tiny_config, "fifo").with_eval_points(1)
        part.run(stop_after=2)
        written = part.save_checkpoint(str(tmp_path / "ckpt"))
        assert written.endswith(".npz")
        assert os.path.exists(written)
        assert Session.resume(written).config == tiny_config

    def test_resume_restores_periodic_checkpointing(self, tiny_config, tmp_path):
        """A resumed run keeps writing periodic checkpoints (crash safety)."""
        path = str(tmp_path / "periodic.npz")
        first = (
            Session(tiny_config, "fifo")
            .with_eval_points(1)
            .with_checkpointing(path, every=2)
        )
        first.run(stop_after=2)  # writes the iteration-2 checkpoint
        resumed = Session.resume(path)
        assert resumed._checkpoint_every == 2
        mtime = os.path.getmtime(path)
        resumed.run(stop_after=2)  # must overwrite the checkpoint again
        assert os.path.getmtime(path) >= mtime
        assert int(np.load(path)["learner/iteration"]) == 4

    def test_resume_of_injected_components_requires_reinjection(
        self, tiny_config, tmp_path
    ):
        """Injected components can't be rebuilt from config; resuming
        without re-injecting them must fail loudly, not diverge silently."""
        comp = build_components(tiny_config)
        part = Session(tiny_config, "fifo").with_components(comp).with_eval_points(1)
        part.run(stop_after=2)
        path = str(tmp_path / "injected.npz")
        part.save_checkpoint(path)
        with pytest.raises(RuntimeError, match="injected components"):
            Session.resume(path).run()
        # re-injecting equivalent components lets the run continue
        resumed = Session.resume(path).with_components(build_components(tiny_config))
        full = Session(tiny_config, "fifo").with_eval_points(1).run()
        assert resumed.run().final_accuracy == full.final_accuracy

    def test_resume_rejects_other_versions(self, tiny_config, tmp_path):
        part = Session(tiny_config, "fifo").with_eval_points(1)
        part.run(stop_after=2)
        path = str(tmp_path / "bad.npz")
        part.save_checkpoint(path)
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            arrays = {k: archive[k] for k in archive.files if k != "meta"}
        meta["version"] = 999
        np.savez(path, meta=np.array(json.dumps(meta)), **arrays)
        with pytest.raises(ValueError, match="checkpoint version"):
            Session.resume(path)

    def test_stop_after_zero_runs_no_steps(self, tiny_config):
        steps = []
        session = (
            Session(tiny_config, "fifo")
            .with_eval_points(1)
            .on_step(lambda learner, stats: steps.append(stats))
        )
        session.run(stop_after=0)
        assert steps == []
        assert session.learner.iteration == 0

    def test_negative_stop_after_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="stop_after"):
            Session(tiny_config, "fifo").run(stop_after=-1)

    def test_checkpoint_before_run_rejected(self, tiny_config, tmp_path):
        session = Session(tiny_config, "fifo")
        with pytest.raises(RuntimeError, match="run\\(\\) has not started"):
            session.save_checkpoint(str(tmp_path / "nothing.npz"))


class TestPluginPolicy:
    def test_plugin_policy_runs_through_session(self, tiny_config):
        """Acceptance: a @register_policy plugin is constructible through
        Session with zero edits to repro internals."""

        @register_policy("keep-newest-test")
        class KeepNewest(FIFOPolicy):
            name = "keep-newest-test"

        try:
            result = (
                Session.from_config(tiny_config)
                .with_policy("keep-newest-test")
                .with_eval_points(1)
                .run()
            )
            assert result.policy == "keep-newest-test"
            assert len(result.curve) >= 1
            # behaves exactly like its FIFO parent under the same seed
            fifo = Session(tiny_config, "fifo").with_eval_points(1).run()
            assert result.final_accuracy == fifo.final_accuracy
        finally:
            POLICIES.unregister("keep-newest-test")

    def test_plugin_policy_runs_through_cli(self, tiny_config, capsys, monkeypatch):
        import repro.cli as cli_mod

        @register_policy("cli-plugin-test")
        class CliPlugin(FIFOPolicy):
            name = "cli-plugin-test"

        try:
            monkeypatch.setattr(cli_mod, "default_config", lambda *a, **k: tiny_config)
            monkeypatch.setattr(cli_mod, "scaled_config", lambda cfg: cfg)
            code = cli_mod.main(["stream", "--policy", "cli-plugin-test"])
            out = capsys.readouterr().out
            assert code == 0
            assert "policy=cli-plugin-test" in out
        finally:
            POLICIES.unregister("cli-plugin-test")

    def test_non_policy_factory_rejected(self, tiny_config):
        @register_policy("not-a-policy-test")
        def bad_factory(capacity):
            return capacity  # not a ReplacementPolicy

        try:
            with pytest.raises(TypeError, match="expected a ReplacementPolicy"):
                Session(tiny_config, "not-a-policy-test").run()
        finally:
            POLICIES.unregister("not-a-policy-test")


class TestDeprecationShims:
    def test_make_policy_warns_once_per_call(self, tiny_config):
        from repro.experiments.runner import make_policy

        comp = build_components(tiny_config)
        with pytest.warns(DeprecationWarning, match="make_policy is deprecated") as rec:
            policy = make_policy(
                "fifo", comp.scorer, 8, comp.rngs.get("policy")
            )
        assert isinstance(policy, FIFOPolicy)
        assert len([w for w in rec if w.category is DeprecationWarning]) == 1

    def test_build_components_warns_once_per_call(self, tiny_config):
        from repro.experiments import runner

        with pytest.warns(
            DeprecationWarning, match="build_components is deprecated"
        ) as rec:
            comp = runner.build_components(tiny_config)
        assert comp.dataset.num_classes == 10
        assert len([w for w in rec if w.category is DeprecationWarning]) == 1

    def test_quickstart_components_warns_once_per_call(self):
        import repro

        with pytest.warns(
            DeprecationWarning, match="quickstart_components is deprecated"
        ) as rec:
            learner, stream, dataset = repro.quickstart_components(
                dataset="cifar10", buffer_size=8, stc=4, seed=0
            )
        assert dataset.num_classes == 10
        assert len([w for w in rec if w.category is DeprecationWarning]) == 1

    def test_new_surface_does_not_warn(self, tiny_config, recwarn):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Session(tiny_config, "fifo").with_eval_points(1).run()
