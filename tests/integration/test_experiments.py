"""Integration tests for the experiment harnesses (small budgets)."""

import numpy as np
import pytest

from repro.experiments import (
    POLICY_NAMES,
    build_components,
    default_config,
    make_policy,
    run_fig3,
    run_learning_curves,
    run_stream_experiment,
    run_supervised_reference,
    run_table1,
    run_table2,
)
from repro.experiments.config import StreamExperimentConfig, scaled_config


@pytest.fixture
def tiny_config():
    """A seconds-scale config for integration testing."""
    return StreamExperimentConfig(
        dataset="cifar10",
        image_size=8,
        stc=8,
        total_samples=128,
        buffer_size=8,
        encoder_widths=(8, 16),
        encoder_blocks=1,
        projection_dim=8,
        probe_train_per_class=4,
        probe_test_per_class=2,
        probe_epochs=5,
        seed=0,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamExperimentConfig(buffer_size=1)
        with pytest.raises(ValueError):
            StreamExperimentConfig(total_samples=4, buffer_size=8)
        with pytest.raises(ValueError):
            StreamExperimentConfig(stc=0)

    def test_iterations_ceil(self):
        cfg = StreamExperimentConfig(total_samples=100, buffer_size=32)
        assert cfg.iterations == 4

    def test_with_changes(self):
        cfg = default_config()
        cfg2 = cfg.with_(stc=128)
        assert cfg2.stc == 128
        assert cfg.stc != 128 or cfg.stc == cfg2.stc

    def test_scaled_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.0")
        cfg = default_config()
        scaled = scaled_config(cfg)
        assert scaled.total_samples == 2 * cfg.total_samples

    def test_scale_identity(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "1.0")
        cfg = default_config()
        assert scaled_config(cfg) is cfg

    def test_bad_scale_env(self, monkeypatch):
        from repro.experiments.config import bench_scale

        monkeypatch.setenv("REPRO_BENCH_SCALE", "nope")
        with pytest.raises(ValueError):
            bench_scale()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.01")
        with pytest.raises(ValueError):
            bench_scale()

    def test_bench_seed_env(self, monkeypatch):
        from repro.experiments.config import bench_seed

        monkeypatch.setenv("REPRO_BENCH_SEED", "7")
        assert bench_seed() == 7
        monkeypatch.setenv("REPRO_BENCH_SEED", "x")
        with pytest.raises(ValueError):
            bench_seed()


class TestRunner:
    def test_build_components(self, tiny_config):
        comp = build_components(tiny_config)
        assert comp.dataset.num_classes == 10
        assert comp.encoder.feature_dim == 16
        assert comp.projector.out_dim == 8

    def test_make_policy_all_names(self, tiny_config):
        comp = build_components(tiny_config)
        for name in POLICY_NAMES:
            policy = make_policy(
                name, comp.scorer, 8, comp.rngs.get("p"), temperature=0.5
            )
            assert policy.name == name

    def test_make_policy_unknown(self, tiny_config):
        comp = build_components(tiny_config)
        with pytest.raises(ValueError):
            make_policy("bogus", comp.scorer, 8, comp.rngs.get("p"))

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_run_stream_experiment_all_policies(self, tiny_config, policy):
        result = run_stream_experiment(tiny_config, policy, eval_points=2)
        assert 0.0 <= result.final_accuracy <= 1.0
        assert len(result.curve) >= 2
        assert result.curve.seen_inputs[-1] == tiny_config.total_samples
        assert result.mean_train_seconds > 0

    def test_curve_checkpoints_monotone_in_inputs(self, tiny_config):
        result = run_stream_experiment(tiny_config, "fifo", eval_points=3)
        seen = result.curve.seen_inputs
        assert all(a < b for a, b in zip(seen, seen[1:]))

    def test_rescoring_fraction_only_for_cs(self, tiny_config):
        cs = run_stream_experiment(tiny_config, "contrast-scoring", eval_points=1)
        fifo = run_stream_experiment(tiny_config, "fifo", eval_points=1)
        assert cs.rescoring_fraction is not None
        assert fifo.rescoring_fraction is None

    def test_lazy_interval_reduces_rescoring(self, tiny_config):
        eager = run_stream_experiment(
            tiny_config, "contrast-scoring", eval_points=1, lazy_interval=None
        )
        lazy = run_stream_experiment(
            tiny_config, "contrast-scoring", eval_points=1, lazy_interval=8
        )
        assert lazy.rescoring_fraction < eager.rescoring_fraction
        assert eager.rescoring_fraction == pytest.approx(1.0)

    def test_same_seed_same_result(self, tiny_config):
        a = run_stream_experiment(tiny_config, "contrast-scoring", eval_points=1)
        b = run_stream_experiment(tiny_config, "contrast-scoring", eval_points=1)
        assert a.final_accuracy == b.final_accuracy
        assert a.final_loss == b.final_loss

    def test_different_seed_different_stream(self, tiny_config):
        a = run_stream_experiment(tiny_config, "contrast-scoring", eval_points=1)
        b = run_stream_experiment(
            tiny_config.with_(seed=1), "contrast-scoring", eval_points=1
        )
        # losses come from different streams/models; equality would signal
        # a seeding bug
        assert a.final_loss != b.final_loss


class TestFig3Harness:
    def test_fig3_structure(self, tiny_config):
        result = run_fig3(
            tiny_config,
            policies=("contrast-scoring", "fifo"),
            label_fractions=(0.5, 1.0),
            include_supervised=False,
        )
        assert set(result.accuracy) == {"contrast-scoring", "fifo"}
        for by_fraction in result.accuracy.values():
            assert set(by_fraction) == {0.5, 1.0}
        margin = result.margin_over("fifo", 1.0)
        assert isinstance(margin, float)

    def test_supervised_reference_runs(self, tiny_config):
        acc = run_supervised_reference(tiny_config, 0.5)
        assert 0.0 <= acc <= 1.0

    def test_format_fig3(self, tiny_config):
        from repro.experiments import format_fig3

        result = run_fig3(
            tiny_config,
            policies=("contrast-scoring", "fifo"),
            label_fractions=(1.0,),
            include_supervised=True,
        )
        text = format_fig3(result)
        assert "Contrast Scoring" in text
        assert "Supervised-only" in text


class TestCurveHarness:
    def test_learning_curves_structure(self, tiny_config):
        result = run_learning_curves(
            "cifar10", tiny_config, policies=("contrast-scoring", "fifo"),
            eval_points=2,
        )
        assert set(result.runs) == {"contrast-scoring", "fifo"}
        finals = result.final_accuracies()
        assert all(0 <= v <= 1 for v in finals.values())

    def test_speedup_computable(self, tiny_config):
        result = run_learning_curves(
            "cifar10", tiny_config, policies=("contrast-scoring", "random-replace"),
            eval_points=3,
        )
        speedup = result.speedup_over("random-replace")
        assert speedup is None or speedup > 0

    def test_format_learning_curves(self, tiny_config):
        from repro.experiments import format_learning_curves

        result = run_learning_curves(
            "cifar10", tiny_config, policies=("contrast-scoring", "fifo"),
            eval_points=2,
        )
        text = format_learning_curves(result)
        assert "seen inputs" in text
        assert "final:" in text


class TestTableHarnesses:
    def test_table1_structure(self, tiny_config):
        from repro.experiments import format_table1

        result = run_table1(tiny_config, intervals=(None, 4))
        assert set(result.runs) == {None, 4}
        assert result.accuracy_delta(None) == 0.0
        text = format_table1(result)
        assert "disabled" in text
        assert "re-scoring pct" in text

    def test_table1_lazy_reduces_overhead(self, tiny_config):
        result = run_table1(tiny_config, intervals=(None, 8))
        eager = result.runs[None]
        lazy = result.runs[8]
        assert lazy.rescoring_fraction < eager.rescoring_fraction

    def test_table2_structure(self, tiny_config):
        from repro.experiments import format_table2

        result = run_table2(
            tiny_config,
            buffer_sizes=(4, 8),
            policies=("contrast-scoring", "fifo"),
        )
        assert set(result.runs) == {4, 8}
        margin = result.margin(8, "fifo")
        assert isinstance(margin, float)
        text = format_table2(result)
        assert "buffer size" in text

    def test_table2_lr_scaling_applied(self, tiny_config):
        result = run_table2(
            tiny_config, buffer_sizes=(4,), policies=("fifo",)
        )
        run = result.runs[4]["fifo"]
        expected_lr = tiny_config.lr * np.sqrt(4 / tiny_config.buffer_size)
        assert run.config.lr == pytest.approx(expected_lr)
