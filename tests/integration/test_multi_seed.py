"""Tests for multi-seed aggregation."""

import numpy as np
import pytest

from repro.experiments.config import StreamExperimentConfig
from repro.experiments.multi_seed import (
    MultiSeedResult,
    SeedAggregate,
    format_multi_seed,
    run_multi_seed,
)


@pytest.fixture
def tiny_config():
    return StreamExperimentConfig(
        dataset="cifar10",
        image_size=8,
        stc=8,
        total_samples=96,
        buffer_size=8,
        encoder_widths=(8, 16),
        projection_dim=8,
        probe_train_per_class=3,
        probe_test_per_class=2,
        probe_epochs=3,
        seed=0,
    )


class TestSeedAggregate:
    def test_statistics(self):
        agg = SeedAggregate("p", [0.5, 0.7])
        assert agg.mean == pytest.approx(0.6)
        assert agg.std == pytest.approx(0.1)
        assert agg.count == 2


class TestRunMultiSeed:
    def test_structure(self, tiny_config):
        result = run_multi_seed(
            tiny_config, policies=("fifo", "random-replace"), seeds=(0, 1)
        )
        assert set(result.aggregates) == {"fifo", "random-replace"}
        assert result.aggregates["fifo"].count == 2
        assert len(result.runs["fifo"]) == 2

    def test_seeds_produce_different_runs(self, tiny_config):
        result = run_multi_seed(tiny_config, policies=("fifo",), seeds=(0, 1))
        losses = [run.final_loss for run in result.runs["fifo"]]
        assert losses[0] != losses[1]

    def test_same_seed_reproducible(self, tiny_config):
        a = run_multi_seed(tiny_config, policies=("fifo",), seeds=(0,))
        b = run_multi_seed(tiny_config, policies=("fifo",), seeds=(0,))
        assert a.aggregates["fifo"].accuracies == b.aggregates["fifo"].accuracies

    def test_win_rate(self, tiny_config):
        result = run_multi_seed(
            tiny_config, policies=("fifo", "random-replace"), seeds=(0, 1)
        )
        rate = result.win_rate("fifo", "random-replace")
        assert 0.0 <= rate <= 1.0

    def test_empty_seeds_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            run_multi_seed(tiny_config, seeds=())

    def test_format(self, tiny_config):
        result = run_multi_seed(tiny_config, policies=("fifo",), seeds=(0,))
        text = format_multi_seed(result)
        assert "mean ± std" in text
        assert "fifo" in text


class TestWinRateEdgeCases:
    def test_no_pairs_raises(self):
        result = MultiSeedResult(config=None, seeds=())
        result.aggregates["a"] = SeedAggregate("a", [])
        result.aggregates["b"] = SeedAggregate("b", [])
        with pytest.raises(ValueError):
            result.win_rate("a", "b")
