"""Backend threading through Session / sweeps — determinism per backend."""

import numpy as np
import pytest

from repro.experiments.config import default_config
from repro.experiments.parallel import SweepSpec, result_fingerprint, run_sweep
from repro.nn.backend import get_backend, set_backend
from repro.registry import UnknownComponentError
from repro.session import Session, config_from_dict, config_to_dict

BACKENDS_UNDER_TEST = ("numpy", "fused")


@pytest.fixture(autouse=True)
def _restore_backend():
    before = get_backend()
    yield
    set_backend(before)


def _tiny_config(seed=0, backend=None):
    return default_config(seed=seed).with_(
        backend=backend,
        image_size=10,
        encoder_widths=(8, 16),
        projection_dim=16,
        buffer_size=16,
        total_samples=96,
        stc=8,
        probe_train_per_class=6,
        probe_test_per_class=4,
        probe_epochs=4,
    )


class TestConfigThreading:
    def test_backend_round_trips_through_config_dict(self):
        config = _tiny_config(backend="fused")
        assert config_from_dict(config_to_dict(config)).backend == "fused"

    def test_default_backend_is_inherit(self):
        assert default_config().backend is None

    def test_with_backend_builder(self):
        session = Session.from_config(_tiny_config()).with_backend("fused")
        assert session.config.backend == "fused"

    def test_unknown_backend_fails_at_run(self):
        session = Session.from_config(_tiny_config(backend="not-a-backend"))
        with pytest.raises(UnknownComponentError, match="unknown backend"):
            session.run()


class TestPerBackendDeterminism:
    @pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
    def test_fingerprint_bitwise_identical_across_runs(self, backend):
        """Each backend is fully deterministic: two identical Session
        runs produce bitwise-identical result fingerprints."""
        results = [
            Session.from_config(_tiny_config(seed=3, backend=backend))
            .with_eval_points(2)
            .run()
            for _ in range(2)
        ]
        assert result_fingerprint(results[0]) == result_fingerprint(results[1])

    def test_backends_agree_on_run_shape_and_ballpark(self):
        """Cross-backend runs are *statistically* equivalent (float32
        scoring may reorder near-tie selections, so bitwise equality is
        not the contract — the learning outcome is)."""
        by_backend = {
            backend: Session.from_config(_tiny_config(seed=1, backend=backend))
            .with_eval_points(2)
            .run()
            for backend in BACKENDS_UNDER_TEST
        }
        accs = [r.final_accuracy for r in by_backend.values()]
        assert all(np.isfinite(a) for a in accs)
        assert max(accs) - min(accs) < 0.25
        curves = [list(r.curve.seen_inputs) for r in by_backend.values()]
        assert curves[0] == curves[1]

    def test_run_restores_process_backend(self):
        set_backend("numpy")
        Session.from_config(_tiny_config(backend="fused")).with_eval_points(1).run()
        assert get_backend().name == "numpy"


class TestSweepThreading:
    def test_backend_crosses_worker_boundary(self):
        """A fused-backend sweep spec produces the same fingerprint
        serially and under multiprocessing workers."""
        specs = [
            SweepSpec(config=_tiny_config(seed=s, backend="fused"), eval_points=1)
            for s in (0, 1)
        ]
        serial = run_sweep(specs, workers=1)
        parallel = run_sweep(specs, workers=2)
        for a, b in zip(serial, parallel):
            assert result_fingerprint(a) == result_fingerprint(b)

    def test_checkpoint_resume_preserves_backend(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        config = _tiny_config(seed=2, backend="fused")
        full = Session.from_config(config).with_eval_points(1).run()
        split = Session.from_config(config).with_eval_points(1)
        split.with_checkpointing(path)
        split.run(stop_after=3)
        split.save_checkpoint()
        resumed_session = Session.resume(path)
        assert resumed_session.config.backend == "fused"
        resumed = resumed_session.run()
        assert result_fingerprint(resumed) == result_fingerprint(full)
