"""Integration tests for the ablation harnesses at tiny scale."""

import numpy as np
import pytest

from repro.experiments import (
    format_gradient_ablation,
    format_momentum_ablation,
    format_scoring_view_ablation,
    format_stc_sweep,
    run_gradient_ablation,
    run_momentum_ablation,
    run_scoring_view_ablation,
    run_stc_sweep,
)
from repro.experiments.config import StreamExperimentConfig


@pytest.fixture
def tiny_config():
    return StreamExperimentConfig(
        dataset="cifar10",
        image_size=8,
        stc=8,
        total_samples=128,
        buffer_size=8,
        encoder_widths=(8, 16),
        encoder_blocks=1,
        projection_dim=8,
        probe_train_per_class=4,
        probe_test_per_class=2,
        probe_epochs=5,
        seed=0,
    )


class TestGradientAblation:
    def test_structure(self, tiny_config):
        result = run_gradient_ablation(tiny_config, probes=2, batch=16)
        # probes + the pre-training measurement
        assert len(result.checkpoints) == 3
        assert len(result.correlations) == 3
        assert all(np.isfinite(c) for c in result.correlations)

    def test_high_score_quartile_dominates(self, tiny_config):
        result = run_gradient_ablation(tiny_config, probes=2, batch=16)
        for low, high in zip(result.low_score_grad, result.high_score_grad):
            assert high >= low * 0.5  # loose at tiny scale; shape holds

    def test_format(self, tiny_config):
        result = run_gradient_ablation(tiny_config, probes=1, batch=16)
        text = format_gradient_ablation(result)
        assert "spearman" in text


class TestScoringViewAblation:
    def test_deterministic_has_zero_std(self, tiny_config):
        result = run_scoring_view_ablation(tiny_config, repeats=3)
        assert result.deterministic_score_std == 0.0
        assert result.randomized_score_std > 0.0

    def test_format(self, tiny_config):
        result = run_scoring_view_ablation(tiny_config, repeats=2)
        text = format_scoring_view_ablation(result)
        assert "deterministic flip" in text


class TestStcSweep:
    def test_structure(self, tiny_config):
        result = run_stc_sweep(tiny_config, stc_values=(1, 16))
        assert result.stc_values == (1, 16)
        for stc in (1, 16):
            assert set(result.accuracy[stc]) == {
                "contrast-scoring",
                "random-replace",
            }
        assert np.isfinite(result.margin(16))

    def test_format(self, tiny_config):
        result = run_stc_sweep(tiny_config, stc_values=(1,))
        assert "STC" in format_stc_sweep(result)


class TestMomentumAblation:
    def test_structure(self, tiny_config):
        result = run_momentum_ablation(
            tiny_config, momenta=(0.0, 0.9), lazy_interval=4
        )
        assert len(result.settings) == 3
        assert result.settings[0] == "eager (paper)"
        assert "lazy" in result.settings[-1]
        assert result.rescoring[0] == 1.0
        assert result.rescoring[-1] < 1.0

    def test_format(self, tiny_config):
        result = run_momentum_ablation(tiny_config, momenta=(0.0,), lazy_interval=4)
        text = format_momentum_ablation(result)
        assert "score update rule" in text
