"""The `fleet` experiment harness: table rendering, gap metric, and
config-carried fleet fields."""

import pytest

from repro.experiments.config import StreamExperimentConfig
from repro.experiments.fleet import format_fleet, run_fleet
from repro.fleet import DeviceSpec, FleetConfig


@pytest.fixture
def tiny_config():
    return StreamExperimentConfig(
        dataset="cifar10",
        image_size=8,
        stc=4,
        total_samples=64,
        buffer_size=8,
        encoder_widths=(8, 16),
        projection_dim=8,
        probe_train_per_class=2,
        probe_test_per_class=2,
        probe_epochs=2,
        seed=0,
    )


class TestRunFleet:
    def test_uniform_roster_and_gap(self, tiny_config):
        result = run_fleet(tiny_config, devices=2, rounds=2, aggregator="fedavg")
        assert len(result.fleet.rounds) == 2
        assert result.fleet.device_names == ["device0", "device1"]
        single_knn = float(result.single.info["final_knn_accuracy"])
        assert result.fleet_gap == pytest.approx(
            result.fleet.final_global_knn_accuracy - single_knn
        )
        # the baseline is a plain run: no fleet fields on its config
        assert result.single.config.fleet is None
        assert result.single.config.aggregator is None

    def test_config_fleet_fields_win(self, tiny_config):
        """A config that already carries fleet/aggregator overrides the
        devices/rounds/aggregator arguments."""
        config = tiny_config.with_(
            fleet=FleetConfig(devices=(DeviceSpec(policy="fifo"),), rounds=1),
            aggregator="local-only",
        )
        result = run_fleet(config, devices=5, rounds=9, aggregator="fedavg")
        assert len(result.fleet.device_names) == 1
        assert len(result.fleet.rounds) == 1
        assert result.fleet.aggregator == "local-only"
        # baseline follows the first device's policy
        assert result.single.policy == "fifo"

    def test_baseline_follows_first_device_plan(self, tiny_config):
        """The gap is an equal-budget comparison: an explicit roster's
        seed/stream-length overrides reach the baseline run too."""
        from repro.experiments.parallel import result_fingerprint

        roster = (DeviceSpec(seed=7, total_samples=128, scenario="bursty"),)
        result = run_fleet(tiny_config, devices=roster, rounds=2)
        assert result.single.config.seed == 7
        assert result.single.config.total_samples == 128
        assert result.single.config.scenario == "bursty"
        # one fedavg device IS the baseline run, bitwise (the gap itself
        # may still differ from zero: the global model is scored on the
        # server's pools, the baseline on the device's own)
        assert result_fingerprint(result.fleet.device_results[0]) == (
            result_fingerprint(result.single)
        )

    def test_policy_and_scenario_apply_to_roster_and_baseline(self, tiny_config):
        result = run_fleet(
            tiny_config, devices=2, rounds=1, policy="fifo", scenario="drift"
        )
        for run in result.fleet.device_results:
            assert run.policy == "fifo"
            assert run.config.scenario == "drift"
        assert result.single.policy == "fifo"
        assert result.single.config.scenario == "drift"


class TestFormatFleet:
    def test_table_shape_and_summary(self, tiny_config):
        result = run_fleet(tiny_config, devices=2, rounds=2)
        text = format_fleet(result)
        assert "round" in text and "global acc" in text
        assert "device0 (acc/div)" in text and "device1 (acc/div)" in text
        assert "aggregator=fedavg devices=2 rounds=2" in text
        assert "fleet-vs-single-device gap" in text

    def test_local_only_marks_unsynchronized_rounds(self, tiny_config):
        result = run_fleet(tiny_config, devices=2, rounds=1, aggregator="local-only")
        assert "(no sync)" in format_fleet(result)
