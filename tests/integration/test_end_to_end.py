"""End-to-end reproduction-shape tests.

These run the actual two-stage pipeline at a reduced (but not trivial)
budget and assert the *shape* of the paper's findings — the same checks
EXPERIMENTS.md records at full bench scale.  They are the slowest tests
in the suite (tens of seconds each).
"""

import numpy as np
import pytest

from repro.experiments import run_stream_experiment
from repro.experiments.config import StreamExperimentConfig


@pytest.fixture(scope="module")
def repro_config():
    """Reduced-budget config that still separates the policies.

    2048 stream samples (64 replacement iterations) is the calibrated
    minimum at which contrast scoring's margin over random replacement
    is unambiguous on the cifar10-like stream (seed 0: CS 0.635,
    Random 0.565, FIFO 0.41)."""
    return StreamExperimentConfig(
        dataset="cifar10",
        stc=64,
        total_samples=2048,
        buffer_size=32,
        probe_train_per_class=40,
        probe_test_per_class=20,
        probe_epochs=40,
        seed=0,
    )


@pytest.fixture(scope="module")
def policy_results(repro_config):
    """One stage-1 run per policy (shared across the shape tests)."""
    return {
        name: run_stream_experiment(repro_config, name, eval_points=2)
        for name in ("contrast-scoring", "random-replace", "fifo")
    }


class TestPaperShape:
    def test_contrast_scoring_beats_baselines(self, policy_results):
        """Figs. 3-6 headline: CS > Random and CS > FIFO."""
        cs = policy_results["contrast-scoring"].final_accuracy
        random_acc = policy_results["random-replace"].final_accuracy
        fifo = policy_results["fifo"].final_accuracy
        assert cs > random_acc
        assert cs > fifo

    def test_all_policies_above_chance(self, policy_results):
        for name, result in policy_results.items():
            assert result.final_accuracy > 0.15, f"{name} failed to learn"

    def test_buffer_diversity_ordering(self, policy_results):
        """The mechanism: CS maintains a more class-diverse buffer than
        FIFO under temporal correlation (paper §I / §III motivation)."""
        cs = policy_results["contrast-scoring"].buffer_class_diversity
        fifo = policy_results["fifo"].buffer_class_diversity
        assert cs > fifo

    def test_fifo_buffer_single_class_under_high_stc(self, policy_results):
        """STC >= 2x buffer: FIFO's buffer is one class almost always."""
        fifo = policy_results["fifo"].buffer_class_diversity
        assert fifo < 2.0

    def test_scoring_overhead_present_without_lazy(self, policy_results):
        """Table I premise: contrast scoring costs extra batch time."""
        cs = policy_results["contrast-scoring"]
        assert cs.relative_batch_time > 1.1
        assert policy_results["fifo"].relative_batch_time < cs.relative_batch_time

    def test_rescoring_is_full_without_lazy(self, policy_results):
        assert policy_results["contrast-scoring"].rescoring_fraction == pytest.approx(
            1.0
        )


class TestLazyScoringShape:
    def test_lazy_cuts_overhead_keeps_accuracy(self, repro_config):
        """Table I shape at reduced scale: interval T cuts re-scoring to
        ~1/T and shrinks relative batch time without large accuracy loss."""
        eager = run_stream_experiment(
            repro_config, "contrast-scoring", eval_points=1, lazy_interval=None
        )
        lazy = run_stream_experiment(
            repro_config, "contrast-scoring", eval_points=1, lazy_interval=8
        )
        assert lazy.rescoring_fraction < 0.5 * eager.rescoring_fraction
        assert lazy.relative_batch_time < eager.relative_batch_time
        assert lazy.final_accuracy > eager.final_accuracy - 0.15


class TestStcEffect:
    def test_margin_grows_with_temporal_correlation(self, repro_config):
        """Ablation C: at STC=1 (iid) CS and Random are close; at high STC
        the CS margin is large (the paper's problem setting)."""
        iid_cfg = repro_config.with_(stc=1)
        cs_iid = run_stream_experiment(iid_cfg, "contrast-scoring", eval_points=1)
        rnd_iid = run_stream_experiment(iid_cfg, "random-replace", eval_points=1)
        margin_iid = cs_iid.final_accuracy - rnd_iid.final_accuracy

        corr_cfg = repro_config.with_(stc=128)
        cs_corr = run_stream_experiment(corr_cfg, "contrast-scoring", eval_points=1)
        rnd_corr = run_stream_experiment(corr_cfg, "random-replace", eval_points=1)
        margin_corr = cs_corr.final_accuracy - rnd_corr.final_accuracy

        assert margin_corr > margin_iid - 0.05
        assert cs_corr.final_accuracy > rnd_corr.final_accuracy
