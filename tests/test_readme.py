"""Guards for the README's documented surface.

CI executes the quickstart snippet for real; these tests keep the
cheap invariants in the tier-1 suite so a broken README fails fast
locally too.
"""

import pathlib
import re

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


def _python_blocks(text):
    return re.findall(r"```python\n(.*?)```", text, re.S)


def test_readme_exists_with_quickstart():
    text = README.read_text()
    blocks = _python_blocks(text)
    assert blocks, "README must contain a python quickstart block"
    quickstart = blocks[0]
    assert "from repro import Session" in quickstart
    assert ".run()" in quickstart


def test_quickstart_snippet_compiles():
    quickstart = _python_blocks(README.read_text())[0]
    compile(quickstart, "README.md:quickstart", "exec")


def test_quickstart_uses_only_public_api():
    """The snippet's imports must resolve from the top-level package."""
    quickstart = _python_blocks(README.read_text())[0]
    import repro

    for match in re.finditer(r"from repro import (.+)", quickstart):
        for name in match.group(1).split(","):
            assert hasattr(repro, name.strip()), name


def test_readme_documents_the_operational_commands():
    text = README.read_text()
    assert "python -m repro.cli --list" in text
    assert "python -m pytest -x -q" in text
    assert "bench_perf_suite.py" in text
    assert "--workers" in text
    assert "docs/API.md" in text
