"""SpanTracer: nesting, logical clocks, extend/drain, exports, gating."""

import json
import os

import pytest

from repro.obs.trace import (
    TRACE_ENV,
    SpanTracer,
    current_tracer,
    ensure_worker_tracer,
    set_clock,
    set_tracer,
    trace_span,
    use_tracer,
)


@pytest.fixture(autouse=True)
def _no_active_tracer(monkeypatch):
    monkeypatch.delenv(TRACE_ENV, raising=False)
    previous = current_tracer()
    set_tracer(None)
    yield
    set_tracer(previous)


class TestRecording:
    def test_nesting_links_parents(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans  # inner closes (and files) first
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert inner["duration_s"] <= outer["duration_s"]

    def test_clocks_stamp_later_spans(self):
        tracer = SpanTracer()
        tracer.set_clock(step=3)
        with tracer.span("a"):
            pass
        tracer.set_clock(step=4, round=1)
        with tracer.span("b"):
            pass
        assert tracer.spans[0]["clocks"] == {"step": 3}
        assert tracer.spans[1]["clocks"] == {"step": 4, "round": 1}

    def test_attrs_recorded(self):
        tracer = SpanTracer()
        with tracer.span("fwd", batch=8):
            pass
        assert tracer.spans[0]["attrs"] == {"batch": 8}

    def test_spans_are_json_able(self):
        tracer = SpanTracer()
        with tracer.span("a", k="v"):
            pass
        assert json.loads(json.dumps(tracer.spans)) == tracer.spans


class TestExtendDrain:
    def test_extend_rebases_ids_and_sets_proc(self):
        parent, worker = SpanTracer(), SpanTracer(proc="w")
        with parent.span("round"):
            pass
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        parent.extend(worker.drain(), proc="worker-7")
        assert worker.spans == []
        names = {s["name"]: s for s in parent.spans}
        assert names["inner"]["proc"] == "worker-7"
        assert names["inner"]["parent_id"] == names["outer"]["span_id"]
        ids = [s["span_id"] for s in parent.spans]
        assert len(ids) == len(set(ids))  # no collisions after re-base
        # Later local spans keep allocating above the shipped batch.
        with parent.span("after"):
            pass
        assert parent.spans[-1]["span_id"] > max(ids)


class TestExports:
    def _traced(self):
        tracer = SpanTracer()
        tracer.set_clock(step=1)
        with tracer.span("outer", phase="x"):
            with tracer.span("inner"):
                pass
        return tracer

    def test_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._traced().to_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert {json.loads(line)["name"] for line in lines} == {
            "outer",
            "inner",
        }

    def test_chrome(self, tmp_path):
        path = tmp_path / "trace.json"
        self._traced().to_chrome(str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert meta[0]["args"]["name"] == "main"
        assert {e["name"] for e in spans} == {"outer", "inner"}
        for event in spans:
            assert event["ts"] >= 0 and event["dur"] >= 0  # microseconds
            assert event["args"]["step"] == 1

    def test_chrome_gives_each_proc_a_pid(self, tmp_path):
        tracer = self._traced()
        tracer.extend(
            [{"name": "w", "span_id": 1, "parent_id": None, "start_s": 0.0}],
            proc="worker-1",
        )
        path = tmp_path / "trace.json"
        tracer.to_chrome(str(path))
        events = json.loads(path.read_text())["traceEvents"]
        pids = {e["args"]["name"]: e["pid"] for e in events if e["ph"] == "M"}
        assert set(pids) == {"main", "worker-1"}
        assert pids["main"] != pids["worker-1"]


class TestModuleGate:
    def test_trace_span_is_noop_without_tracer(self):
        assert current_tracer() is None
        with trace_span("nothing"):  # must not raise, records nowhere
            set_clock(step=1)

    def test_use_tracer_installs_and_restores(self):
        tracer = SpanTracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with trace_span("seen"):
                pass
        assert current_tracer() is None
        assert tracer.spans[0]["name"] == "seen"


class TestWorkerTracer:
    def test_absent_without_env_or_inherited(self):
        assert ensure_worker_tracer() is None

    def test_env_installs_fresh_worker_tracer(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "1")
        tracer = ensure_worker_tracer()
        assert tracer is not None
        assert tracer.proc == f"worker-{os.getpid()}"
        assert ensure_worker_tracer() is tracer  # idempotent

    def test_inherited_tracer_is_replaced_not_reused(self):
        # Fork-started workers inherit the parent's active tracer
        # (pre-fork spans included); recording into it would ship those
        # spans home as duplicates, so the worker swaps in its own.
        inherited = SpanTracer(proc="main")
        with inherited.span("pre-fork"):
            pass
        set_tracer(inherited)
        tracer = ensure_worker_tracer()
        assert tracer is not inherited
        assert tracer.proc == f"worker-{os.getpid()}"
        assert tracer.spans == []
