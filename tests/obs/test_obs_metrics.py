"""MetricsRegistry: instrument semantics, label sets, merge, gating."""

import json
import os

import pytest

from repro.obs import (
    METRIC_INVENTORY,
    METRICS_ENV,
    MetricsRegistry,
    metric_inventory,
    metrics,
    metrics_enabled,
    reset_metrics,
    set_metrics_enabled,
    use_metrics,
)
from repro.obs.metrics import bucket_bounds, bucket_index


@pytest.fixture(autouse=True)
def _clean_process_state(monkeypatch):
    monkeypatch.delenv(METRICS_ENV, raising=False)
    reset_metrics()
    previous = metrics_enabled()
    yield
    set_metrics_enabled(previous)
    reset_metrics()


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc()
        counter.inc(2.5)
        assert registry.value("requests") == 3.5

    def test_rejects_negative(self):
        counter = MetricsRegistry().counter("requests")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_same_handle_for_same_labels(self):
        registry = MetricsRegistry()
        assert registry.counter("c", a=1, b="x") is registry.counter(
            "c", b="x", a=1
        )


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 12.0


class TestHistogram:
    def test_summary_statistics(self):
        hist = MetricsRegistry().histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == 10.0
        assert hist.min == 1.0
        assert hist.max == 4.0
        assert hist.mean == 2.5

    def test_percentiles_bracket_the_data(self):
        hist = MetricsRegistry().histogram("latency")
        for i in range(1, 101):
            hist.observe(float(i))
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0
        # Exponential buckets are good to a factor of 2.
        assert 25.0 <= hist.percentile(50) <= 100.0

    def test_percentile_validates_q(self):
        hist = MetricsRegistry().histogram("latency")
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            hist.percentile(101)

    def test_empty_histogram_is_all_zero(self):
        hist = MetricsRegistry().histogram("latency")
        assert hist.count == 0
        assert hist.percentile(99) == 0.0
        assert hist.min == 0.0 and hist.max == 0.0

    def test_bucket_grid_is_monotone(self):
        values = (1e-9, 1e-6, 3e-4, 0.1, 1.0, 7.0, 1e6)
        indices = [bucket_index(v) for v in values]
        assert indices == sorted(indices)
        # In-range values land inside their bucket's (low, high] bounds.
        for value in (3e-4, 0.1, 1.0, 7.0):
            low, high = bucket_bounds(bucket_index(value))
            assert low < value <= high


class TestLabelSets:
    def test_labels_partition_series(self):
        registry = MetricsRegistry()
        registry.counter("jobs", worker=0).inc()
        registry.counter("jobs", worker=1).inc(5)
        assert registry.value("jobs", worker=0) == 1.0
        assert registry.value("jobs", worker=1) == 5.0
        assert registry.value("jobs") is None

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="is a counter, not a histogram"):
            registry.histogram("thing")

    def test_series_is_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.gauge("b").set(1)
        registry.counter("a", z="2").inc()
        registry.counter("a", z="1").inc()
        listed = [
            (kind, name, labels) for kind, name, labels, _ in registry.series()
        ]
        assert listed == [
            ("counter", "a", {"z": "1"}),
            ("counter", "a", {"z": "2"}),
            ("gauge", "b", {}),
        ]


class TestSnapshotMerge:
    def test_snapshot_is_json_round_trippable(self):
        registry = MetricsRegistry()
        registry.counter("c", k="v").inc(2)
        registry.histogram("h").observe(0.5)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        other = MetricsRegistry()
        other.merge(snapshot)
        assert other.value("c", k="v") == 2.0
        assert other.histogram("h").count == 1

    def test_merge_by_label_set(self):
        parent = MetricsRegistry()
        parent.counter("jobs", worker=0).inc(2)
        parent.gauge("depth").set(1)
        worker_a = MetricsRegistry()
        worker_a.counter("jobs", worker=0).inc(3)
        worker_a.counter("jobs", worker=1).inc(1)
        worker_a.gauge("depth").set(7)
        parent.merge(worker_a.snapshot())
        assert parent.value("jobs", worker=0) == 5.0  # counters add
        assert parent.value("jobs", worker=1) == 1.0  # new series appears
        assert parent.value("depth") == 7.0  # gauges last-write-win

    def test_histogram_merge_is_exact(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (0.001, 0.5, 3.0):
            a.histogram("h").observe(v)
        for v in (0.25, 40.0):
            b.histogram("h").observe(v)
        a.merge(b.snapshot())
        merged = a.histogram("h")
        assert merged.count == 5
        assert merged.sum == pytest.approx(43.751)
        assert merged.min == 0.001
        assert merged.max == 40.0

    def test_kind_conflict_on_merge_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        b.gauge("x").set(1)
        with pytest.raises(ValueError, match="is a counter, not a gauge"):
            a.merge(b.snapshot())

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert list(registry.series()) == []
        assert registry.value("c") is None


class TestProcessGateAndInventory:
    def test_env_sets_the_import_default(self):
        # The gate is read from REPRO_METRICS once at import — that is
        # how pool workers inherit the parent's choice — so probe fresh
        # interpreters rather than mutating this one's import state.
        import pathlib
        import subprocess
        import sys

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        code = "import repro.obs as obs; print(obs.metrics_enabled())"
        for value, expect in (("1", "True"), ("true", "True"), ("0", "False")):
            env = dict(os.environ, PYTHONPATH=src, **{METRICS_ENV: value})
            out = subprocess.run(
                [sys.executable, "-c", code],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            assert out.stdout.strip() == expect, value

    def test_set_overrides(self):
        set_metrics_enabled(False)
        assert not metrics_enabled()
        set_metrics_enabled(True)
        assert metrics_enabled()

    def test_use_metrics_restores(self):
        set_metrics_enabled(False)
        with use_metrics(True):
            assert metrics_enabled()
            with use_metrics(False):
                assert not metrics_enabled()
            assert metrics_enabled()
        assert not metrics_enabled()

    def test_use_metrics_none_defers(self):
        set_metrics_enabled(True)
        with use_metrics(None):
            assert metrics_enabled()

    def test_process_registry_is_a_singleton(self):
        metrics().counter("alive").inc()
        assert metrics().value("alive") == 1.0
        reset_metrics()
        assert metrics().value("alive") is None

    def test_inventory_names_are_dotted_and_described(self):
        assert METRIC_INVENTORY  # non-empty
        for name, description in METRIC_INVENTORY.items():
            assert "." in name and name == name.lower()
            assert description
        copy = metric_inventory()
        copy.clear()
        assert METRIC_INVENTORY  # accessor returns a copy
