"""Cross-process collection: workers snapshot-and-reset, parents merge."""

import pytest

from repro.experiments import pool as pool_module
from repro.obs import (
    absorb_worker_telemetry,
    collect_worker_telemetry,
    metrics,
    reset_metrics,
)
from repro.obs.trace import SpanTracer, set_tracer, use_tracer


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    reset_metrics()
    previous_tracer = __import__(
        "repro.obs.trace", fromlist=["current_tracer"]
    ).current_tracer()
    set_tracer(None)
    yield
    set_tracer(previous_tracer)
    reset_metrics()


@pytest.fixture()
def in_pool_worker(monkeypatch):
    monkeypatch.setattr(pool_module, "IN_POOL_WORKER", True)


class TestCollect:
    def test_none_outside_pool_worker(self):
        # Serial runs and in-parent crash fallbacks execute the same job
        # functions; collecting there would wipe the parent registry.
        metrics().counter("session.steps").inc()
        assert collect_worker_telemetry() is None
        assert metrics().value("session.steps") == 1.0

    def test_none_when_nothing_recorded(self, in_pool_worker):
        assert collect_worker_telemetry() is None

    def test_snapshots_and_resets(self, in_pool_worker):
        metrics().counter("session.steps").inc(5)
        payload = collect_worker_telemetry()
        assert payload is not None
        assert payload["metrics"][0]["name"] == "session.steps"
        assert payload["proc"].startswith("worker-")
        assert metrics().value("session.steps") is None  # reset after ship

    def test_drains_the_worker_tracer(self, in_pool_worker):
        tracer = SpanTracer(proc="worker-123")
        with use_tracer(tracer):
            with tracer.span("session.step"):
                pass
            payload = collect_worker_telemetry()
        assert payload["proc"] == "worker-123"
        assert [s["name"] for s in payload["spans"]] == ["session.step"]
        assert tracer.spans == []


class TestAbsorb:
    def test_none_and_empty_are_noops(self):
        absorb_worker_telemetry(None)
        absorb_worker_telemetry({})
        assert list(metrics().series()) == []

    def test_same_label_sets_add_across_workers(self, monkeypatch):
        payloads = []
        monkeypatch.setattr(pool_module, "IN_POOL_WORKER", True)
        for steps in (3, 4):
            metrics().counter("session.steps", policy="c").inc(steps)
            metrics().histogram("session.train_seconds").observe(0.1)
            payloads.append(collect_worker_telemetry())
        monkeypatch.setattr(pool_module, "IN_POOL_WORKER", False)
        for payload in payloads:
            absorb_worker_telemetry(payload)
        assert metrics().value("session.steps", policy="c") == 7.0
        assert metrics().histogram("session.train_seconds").count == 2

    def test_spans_land_in_the_shipping_procs_lane(self):
        worker = SpanTracer(proc="worker-9")
        with worker.span("session.step"):
            pass
        payload = {"metrics": [], "spans": worker.drain(), "proc": "worker-9"}
        parent = SpanTracer()
        with use_tracer(parent):
            absorb_worker_telemetry(payload)
        assert parent.spans[0]["proc"] == "worker-9"

    def test_spans_dropped_when_parent_has_no_tracer(self):
        payload = {"metrics": [], "spans": [{"name": "x", "span_id": 1}]}
        absorb_worker_telemetry(payload)  # must not raise
