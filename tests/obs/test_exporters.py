"""EXPORTERS registry: console table, jsonl round-trip, prometheus text."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.registry import EXPORTERS


def loaded_registry():
    registry = MetricsRegistry()
    registry.counter("fleet.rounds").inc(3)
    registry.counter("pool.jobs", worker=0).inc(2)
    registry.counter("pool.jobs", worker=1).inc(4)
    registry.gauge("fleet.pending_depth").set(1.5)
    hist = registry.histogram("serve.latency_ms")
    for value in (0.5, 2.0, 8.0):
        hist.observe(value)
    return registry


class TestRegistry:
    def test_all_three_registered(self):
        assert set(EXPORTERS.names()) == {"console", "jsonl", "prometheus"}

    def test_prom_alias(self):
        assert type(EXPORTERS.get("prom").factory()) is type(
            EXPORTERS.get("prometheus").factory()
        )

    def test_export_writes_render_output(self, tmp_path):
        exporter = EXPORTERS.get("jsonl").factory()
        path = tmp_path / "metrics.jsonl"
        exporter.export(loaded_registry(), str(path))
        assert path.read_text() == exporter.render(loaded_registry()) + "\n"


class TestConsole:
    def test_one_row_per_series(self):
        text = EXPORTERS.get("console").factory().render(loaded_registry())
        assert "fleet.rounds" in text
        assert "worker=0" in text and "worker=1" in text
        assert "p99=" in text and "count=3" in text  # histogram summary
        assert "1.5" in text  # gauge value

    def test_empty_registry(self):
        text = EXPORTERS.get("console").factory().render(MetricsRegistry())
        assert "no metrics" in text


class TestJsonl:
    def test_lines_are_the_snapshot_and_merge_back(self):
        registry = loaded_registry()
        text = EXPORTERS.get("jsonl").factory().render(registry)
        entries = [json.loads(line) for line in text.splitlines()]
        assert entries == json.loads(json.dumps(registry.snapshot()))
        rebuilt = MetricsRegistry()
        rebuilt.merge(entries)
        assert rebuilt.value("pool.jobs", worker=1) == 4.0
        assert rebuilt.histogram("serve.latency_ms").count == 3


class TestPrometheus:
    @pytest.fixture()
    def lines(self):
        text = EXPORTERS.get("prometheus").factory().render(loaded_registry())
        return text.splitlines()

    def test_counters_get_total_suffix_and_type(self, lines):
        assert "# TYPE fleet_rounds_total counter" in lines
        assert "fleet_rounds_total 3" in lines
        assert 'pool_jobs_total{worker="0"} 2' in lines
        assert 'pool_jobs_total{worker="1"} 4' in lines

    def test_gauge(self, lines):
        assert "# TYPE fleet_pending_depth gauge" in lines
        assert "fleet_pending_depth 1.5" in lines

    def test_histogram_is_cumulative_with_inf_sum_count(self, lines):
        buckets = [
            line for line in lines if line.startswith("serve_latency_ms_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)  # cumulative
        assert buckets[-1] == 'serve_latency_ms_bucket{le="+Inf"} 3'
        assert "serve_latency_ms_sum 10.5" in lines
        assert "serve_latency_ms_count 3" in lines

    def test_dots_sanitized_out_of_names(self, lines):
        for line in lines:
            metric = line.split("{")[0].split(" ")[-1 if "#" in line else 0]
            assert "." not in metric

    def test_empty_registry(self):
        text = EXPORTERS.get("prometheus").factory().render(MetricsRegistry())
        assert text.startswith("#")
