"""DeviceSpec / FleetConfig: validation and serialization."""

import json

import pytest

from repro.experiments.config import StreamExperimentConfig, default_config
from repro.fleet.spec import DeviceSpec, FleetConfig
from repro.session import config_from_dict, config_to_dict


class TestDeviceSpecValidation:
    def test_defaults_are_valid(self):
        spec = DeviceSpec()
        assert spec.policy == "contrast-scoring"
        assert spec.scenario is None and spec.seed is None

    @pytest.mark.parametrize(
        "field, value, match",
        [
            ("policy", "", "DeviceSpec.policy"),
            ("scenario", "", "DeviceSpec.scenario"),
            ("backend", "", "DeviceSpec.backend"),
            ("seed", "3", "DeviceSpec.seed"),
            ("total_samples", 0, "DeviceSpec.total_samples"),
            ("profile", "", "DeviceSpec.profile"),
            ("compute_budget_mj", 0.0, "DeviceSpec.compute_budget_mj"),
            ("lazy_interval", 0, "DeviceSpec.lazy_interval"),
        ],
    )
    def test_per_field_messages(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            DeviceSpec(**{field: value})

    def test_budget_and_interval_are_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            DeviceSpec(compute_budget_mj=10.0, lazy_interval=4)

    def test_round_trip(self):
        spec = DeviceSpec(
            policy="fifo",
            scenario="drift",
            seed=7,
            profile="mcu-class",
            compute_budget_mj=25.0,
        )
        assert DeviceSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec


class TestFleetConfig:
    def test_needs_devices(self):
        with pytest.raises(ValueError, match="at least one device"):
            FleetConfig(devices=())

    def test_rejects_non_spec_entries(self):
        with pytest.raises(ValueError, match=r"devices\[0\]"):
            FleetConfig(devices=({"policy": "fifo"},))

    def test_rejects_bad_rounds(self):
        with pytest.raises(ValueError, match="rounds"):
            FleetConfig(devices=(DeviceSpec(),), rounds=0)

    def test_uniform(self):
        fleet = FleetConfig.uniform(3, rounds=4, policy="fifo")
        assert len(fleet.devices) == 3
        assert all(spec.policy == "fifo" for spec in fleet.devices)
        assert fleet.rounds == 4

    def test_round_trip(self):
        fleet = FleetConfig(
            devices=(DeviceSpec(), DeviceSpec(scenario="bursty")), rounds=3
        )
        assert FleetConfig.from_dict(json.loads(json.dumps(fleet.to_dict()))) == fleet


class TestConfigThreading:
    """config.fleet / config.aggregator ride the config serialization."""

    def test_default_config_has_no_fleet(self):
        config = default_config()
        assert config.fleet is None and config.aggregator is None

    def test_config_dict_round_trip_with_fleet(self):
        config = default_config().with_(
            fleet=FleetConfig.uniform(2, rounds=3), aggregator="fedavg"
        )
        payload = json.loads(json.dumps(config_to_dict(config)))
        restored = config_from_dict(payload)
        assert restored == config
        assert restored.fleet.rounds == 3
        assert restored.aggregator == "fedavg"

    def test_config_stays_hashable_with_fleet(self):
        config = default_config().with_(fleet=FleetConfig.uniform(2))
        assert hash(config) == hash(config.with_())

    def test_pre_fleet_payloads_still_load(self):
        """Configs serialized before the fleet fields existed (no
        'fleet'/'aggregator' keys) must keep loading."""
        payload = config_to_dict(default_config())
        del payload["fleet"], payload["aggregator"]
        restored = config_from_dict(payload)
        assert restored.fleet is None and restored.aggregator is None

    def test_fleet_config_is_frozen(self):
        config = StreamExperimentConfig(fleet=FleetConfig.uniform(1))
        with pytest.raises(Exception):
            config.fleet.rounds = 5


class TestPopulationFields:
    """The PR-9 FleetConfig fields: sampling, regions, deadlines, chaos."""

    def two(self, **kw):
        return FleetConfig(devices=(DeviceSpec(), DeviceSpec()), **kw)

    def test_participants_bounds(self):
        assert self.two(participants=1).participants == 1
        assert self.two(participants=2).participants == 2
        with pytest.raises(ValueError, match="participants"):
            self.two(participants=0)
        with pytest.raises(ValueError, match="participants"):
            self.two(participants=3)

    def test_sampler_must_be_nonempty_string(self):
        assert self.two(sampler="uniform").sampler == "uniform"
        with pytest.raises(ValueError, match="sampler"):
            self.two(sampler="")

    def test_regions_validated_and_canonicalized(self):
        fleet = FleetConfig(
            devices=tuple(DeviceSpec() for _ in range(4)),
            regions=[[0, 1], [2]],
        )
        assert fleet.regions == ((0, 1), (2,))
        with pytest.raises(ValueError, match="two regions"):
            self.two(regions=((0,), (0,)))
        with pytest.raises(ValueError, match="names device 5"):
            self.two(regions=((5,),))
        with pytest.raises(ValueError, match="must not be empty"):
            self.two(regions=((),))

    def test_round_deadline_positive(self):
        assert self.two(round_deadline_s=1.5).round_deadline_s == 1.5
        with pytest.raises(ValueError, match="round_deadline_s"):
            self.two(round_deadline_s=0.0)

    def test_fault_plan_overrides_checked_against_roster(self):
        from repro.fleet.faults import DeviceFaults, FaultPlan

        plan = FaultPlan(seed=1, overrides=((1, DeviceFaults(dropout_prob=0.5)),))
        assert self.two(fault_plan=plan).fault_plan == plan
        beyond = FaultPlan(seed=1, overrides=((2, DeviceFaults(dropout_prob=0.5)),))
        with pytest.raises(ValueError, match="overrides device 2"):
            self.two(fault_plan=beyond)

    def test_population_round_trip(self):
        from repro.fleet.faults import DeviceFaults, FaultPlan

        fleet = FleetConfig(
            devices=tuple(DeviceSpec() for _ in range(4)),
            rounds=3,
            participants=2,
            sampler="round-robin",
            regions=((0, 1), (2, 3)),
            round_deadline_s=2.0,
            fault_plan=FaultPlan(
                seed=7,
                default=DeviceFaults(dropout_prob=0.1),
                overrides=((3, DeviceFaults(straggler_delay_s=5.0)),),
            ),
        )
        assert FleetConfig.from_dict(json.loads(json.dumps(fleet.to_dict()))) == fleet

    def test_population_config_threads_and_stays_hashable(self):
        fleet = self.two(participants=1, sampler="uniform", round_deadline_s=1.0)
        config = default_config().with_(fleet=fleet, aggregator="fedavg-async")
        payload = json.loads(json.dumps(config_to_dict(config)))
        assert config_from_dict(payload) == config
        assert hash(config) == hash(config.with_())

    def test_pre_population_payloads_still_load(self):
        """FleetConfig dicts serialized before PR 9 (no population
        keys) must keep loading with the new fields defaulted."""
        payload = self.two().to_dict()
        for key in (
            "participants",
            "sampler",
            "regions",
            "round_deadline_s",
            "fault_plan",
        ):
            del payload[key]
        restored = FleetConfig.from_dict(payload)
        assert restored.participants is None
        assert restored.fault_plan is None
