"""Aggregation rules: registry semantics, update-rule math, identity
guarantees, and state round trips."""

import numpy as np
import pytest

from repro.fleet.aggregators import (
    Aggregator,
    DeviceRoundReport,
    create_aggregator,
    weighted_mean_state,
)
from repro.registry import AGGREGATORS, UnknownComponentError, register_aggregator


def report(name, arrays, weight=1.0, knn=0.5):
    return DeviceRoundReport(
        device=name, model_state=arrays, weight=weight, knn_accuracy=knn
    )


def toy(values, dtype=np.float32):
    return {"encoder/w": np.asarray(values, dtype=dtype)}


class TestRegistry:
    def test_builtins_registered(self):
        assert set(AGGREGATORS.names()) >= {
            "fedavg",
            "fedavg-momentum",
            "best-of",
            "local-only",
        }

    def test_aliases_resolve(self):
        assert AGGREGATORS.get("avg").name == "fedavg"
        assert AGGREGATORS.get("fedavgm").name == "fedavg-momentum"
        assert AGGREGATORS.get("best").name == "best-of"
        assert AGGREGATORS.get("no-sync").name == "local-only"

    def test_did_you_mean(self):
        with pytest.raises(UnknownComponentError, match="did you mean 'fedavg'"):
            AGGREGATORS.get("fedavgg")

    def test_create_rejects_unknown_option(self):
        with pytest.raises(TypeError, match="does not accept"):
            create_aggregator("fedavg", beta=0.5)

    def test_create_accepts_factory_option(self):
        rule = create_aggregator("fedavg-momentum", beta=0.5)
        assert rule.beta == 0.5

    def test_create_type_checks(self):
        @register_aggregator("not-an-aggregator-test")
        def bad():
            return object()

        try:
            with pytest.raises(TypeError, match="expected"):
                create_aggregator("not-an-aggregator-test")
        finally:
            AGGREGATORS.unregister("not-an-aggregator-test")

    def test_plugin_rule_usable(self):
        @register_aggregator("plugin-mean-test")
        class PluginMean(Aggregator):
            def aggregate(self, global_state, reports):
                return weighted_mean_state(reports)

        try:
            rule = create_aggregator("plugin-mean-test")
            out = rule.aggregate(None, [report("d0", toy([2.0]))])
            assert out["encoder/w"] == np.float32(2.0)
        finally:
            AGGREGATORS.unregister("plugin-mean-test")


class TestWeightedMean:
    def test_weighted_average(self):
        out = weighted_mean_state(
            [
                report("d0", toy([0.0]), weight=1.0),
                report("d1", toy([3.0]), weight=3.0),
            ]
        )
        np.testing.assert_allclose(out["encoder/w"], [2.25])

    def test_single_report_is_bitwise_identity(self):
        values = np.array([0.1, -1.7, 3.3e-7], dtype=np.float32)
        out = weighted_mean_state([report("d0", {"encoder/w": values})])
        assert out["encoder/w"].dtype == np.float32
        assert np.array_equal(
            out["encoder/w"].view(np.uint32), values.view(np.uint32)
        )

    def test_zero_weights_fall_back_to_uniform(self):
        out = weighted_mean_state(
            [
                report("d0", toy([0.0]), weight=0.0),
                report("d1", toy([4.0]), weight=0.0),
            ]
        )
        np.testing.assert_allclose(out["encoder/w"], [2.0])

    def test_mismatched_keys_rejected(self):
        with pytest.raises(ValueError, match="share one"):
            weighted_mean_state(
                [
                    report("d0", {"encoder/w": np.zeros(1, np.float32)}),
                    report("d1", {"encoder/b": np.zeros(1, np.float32)}),
                ]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            weighted_mean_state([])

    def test_preserves_dtype(self):
        out = weighted_mean_state(
            [report("d0", toy([1.0], dtype=np.float64), weight=2.0)]
        )
        assert out["encoder/w"].dtype == np.float64


class TestFedAvgMomentum:
    def test_first_aggregation_bootstraps_to_average(self):
        rule = create_aggregator("fedavg-momentum", beta=0.5)
        out = rule.aggregate(None, [report("d0", toy([2.0]))])
        np.testing.assert_allclose(out["encoder/w"], [2.0])

    def test_update_rule(self):
        rule = create_aggregator("fedavg-momentum", beta=0.5)
        g1 = rule.aggregate(None, [report("d0", toy([2.0]))])
        # round 2: avg=4 -> delta=2, v=0.5*0+2=2, g=2+2=4
        g2 = rule.aggregate(g1, [report("d0", toy([4.0]))])
        np.testing.assert_allclose(g2["encoder/w"], [4.0])
        # round 3: avg=4 -> delta=0, v=0.5*2+0=1, g=4+1=5 (momentum overshoots)
        g3 = rule.aggregate(g2, [report("d0", toy([4.0]))])
        np.testing.assert_allclose(g3["encoder/w"], [5.0])

    def test_state_round_trip_continues_bitwise(self):
        a = create_aggregator("fedavg-momentum", beta=0.9)
        b = create_aggregator("fedavg-momentum", beta=0.9)
        g1 = a.aggregate(None, [report("d0", toy([2.0]))])
        b.aggregate(None, [report("d0", toy([2.0]))])
        b.load_state_dict(a.state_dict())
        ga = a.aggregate(g1, [report("d0", toy([7.0]))])
        gb = b.aggregate(g1, [report("d0", toy([7.0]))])
        assert np.array_equal(ga["encoder/w"], gb["encoder/w"])

    def test_empty_state_means_fresh(self):
        rule = create_aggregator("fedavg-momentum")
        rule.load_state_dict({})
        assert rule.state_dict() == {}

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError, match="beta"):
            create_aggregator("fedavg-momentum", beta=1.0)

    def test_bn_statistics_are_averaged_not_extrapolated(self):
        """running_var must never go negative: momentum applies to
        parameters only, statistics take the plain weighted mean."""
        rule = create_aggregator("fedavg-momentum", beta=0.9)

        def model(weight, var):
            return {
                "encoder/stem_bn.gamma": np.asarray([weight], dtype=np.float32),
                "encoder/stem_bn.running_var": np.asarray([var], dtype=np.float32),
            }

        g = rule.aggregate(None, [report("d0", model(2.0, 1.0))])
        # shrinking variance across rounds: extrapolation would
        # overshoot below zero, the plain average cannot
        for var in (0.5, 0.1, 0.01, 0.01):
            g = rule.aggregate(g, [report("d0", model(2.0, var))])
            assert g["encoder/stem_bn.running_var"][0] == np.float32(var)
        assert all(
            not rule._is_statistic(key) for key in rule.state_dict()
        )


class TestBestOf:
    def test_picks_highest_accuracy(self):
        rule = create_aggregator("best-of")
        out = rule.aggregate(
            None,
            [
                report("d0", toy([1.0]), knn=0.2),
                report("d1", toy([2.0]), knn=0.9),
                report("d2", toy([3.0]), knn=0.5),
            ],
        )
        np.testing.assert_allclose(out["encoder/w"], [2.0])

    def test_tie_goes_to_lowest_index(self):
        rule = create_aggregator("best-of")
        out = rule.aggregate(
            None,
            [report("d0", toy([1.0]), knn=0.5), report("d1", toy([2.0]), knn=0.5)],
        )
        np.testing.assert_allclose(out["encoder/w"], [1.0])

    def test_returns_copies(self):
        rule = create_aggregator("best-of")
        source = toy([1.0])
        out = rule.aggregate(None, [report("d0", source)])
        out["encoder/w"][0] = 99.0
        assert source["encoder/w"][0] == 1.0


class TestLocalOnly:
    def test_never_synchronizes(self):
        rule = create_aggregator("local-only")
        assert rule.aggregate(None, [report("d0", toy([1.0]))]) is None

    def test_stateless_rejects_foreign_state(self):
        rule = create_aggregator("local-only")
        rule.load_state_dict({})
        with pytest.raises(ValueError, match="stateless"):
            rule.load_state_dict({"velocity/x": np.zeros(1)})


class TestFedAvgAsync:
    def test_all_fresh_degenerates_to_fedavg_bitwise(self):
        rule = create_aggregator("fedavg-async")
        reports = [
            report("d0", toy([1.0, 3.0]), weight=2.0),
            report("d1", toy([5.0, 7.0]), weight=1.0),
        ]
        previous = toy([100.0, 100.0])
        out = rule.aggregate(previous, reports)
        expected = create_aggregator("fedavg").aggregate(previous, reports)
        np.testing.assert_array_equal(out["encoder/w"], expected["encoder/w"])

    def test_single_fresh_report_is_bitwise_identity(self):
        rule = create_aggregator("fedavg-async")
        value = np.array([0.1, 0.2, 0.3], dtype=np.float32)
        out = rule.aggregate(toy([9.0, 9.0, 9.0]), [report("d0", {"encoder/w": value})])
        np.testing.assert_array_equal(out["encoder/w"], value)
        assert out["encoder/w"].dtype == value.dtype

    def test_stale_report_is_downweighted_and_blended(self):
        # one stale report against a previous global: decay pulls the
        # average toward the old model by exactly (1 - mix)
        rule = create_aggregator("fedavg-async", alpha=1.0)
        stale = DeviceRoundReport(
            device="d0",
            model_state=toy([2.0]),
            weight=1.0,
            knn_accuracy=0.5,
            info={"staleness": 1.0},
        )
        out = rule.aggregate(toy([0.0]), [stale])
        # decay = (1 + 1)^-1 = 0.5 -> mix = 0.5 -> 0.5*0 + 0.5*2 = 1.0
        np.testing.assert_allclose(out["encoder/w"], [1.0])

    def test_mix_weights_fresh_over_stale(self):
        rule = create_aggregator("fedavg-async", alpha=1.0)
        fresh = report("d0", toy([0.0]), weight=1.0)
        stale = DeviceRoundReport(
            device="d1",
            model_state=toy([3.0]),
            weight=1.0,
            knn_accuracy=0.5,
            info={"staleness": 1.0},
        )
        out = rule.aggregate(toy([0.0]), [fresh, stale])
        # weights 1.0 and 0.5 -> avg = 1.0; mix = 1.5/2 = 0.75
        np.testing.assert_allclose(out["encoder/w"], [0.75])

    def test_first_aggregation_without_global_is_plain_average(self):
        rule = create_aggregator("fedavg-async", alpha=1.0)
        stale = DeviceRoundReport(
            device="d0",
            model_state=toy([4.0]),
            weight=1.0,
            knn_accuracy=0.5,
            info={"staleness": 3.0},
        )
        out = rule.aggregate(None, [stale])
        np.testing.assert_allclose(out["encoder/w"], [4.0])

    def test_rejects_bad_alpha_and_empty_reports(self):
        with pytest.raises(ValueError, match="alpha"):
            create_aggregator("fedavg-async", alpha=-0.1)
        with pytest.raises(ValueError, match="at least one"):
            create_aggregator("fedavg-async").aggregate(None, [])


class TestHierarchicalFedAvg:
    def regional(self, name, arrays, weight, region):
        return DeviceRoundReport(
            device=name,
            model_state=arrays,
            weight=weight,
            knn_accuracy=0.5,
            info={"region": region},
        )

    def test_single_region_matches_flat_fedavg(self):
        reports = [
            self.regional("d0", toy([1.0]), 2.0, 0),
            self.regional("d1", toy([4.0]), 1.0, 0),
        ]
        out = create_aggregator("hierarchical").aggregate(None, reports)
        flat = create_aggregator("fedavg").aggregate(None, reports)
        np.testing.assert_allclose(out["encoder/w"], flat["encoder/w"])

    def test_two_stage_mean_equals_flat_mean(self):
        # (2*1 + 1*4)/3 = 2 in region 0 (mass 3); region 1 holds 10
        # (mass 1); server: (3*2 + 1*10)/4 = 4 — same as flat fedavg
        reports = [
            self.regional("d0", toy([1.0]), 2.0, 0),
            self.regional("d1", toy([4.0]), 1.0, 0),
            self.regional("d2", toy([10.0]), 1.0, 1),
        ]
        out = create_aggregator("hierarchical").aggregate(None, reports)
        np.testing.assert_allclose(out["encoder/w"], [4.0])

    def test_missing_region_info_defaults_to_one_region(self):
        reports = [report("d0", toy([2.0])), report("d1", toy([6.0]))]
        out = create_aggregator("hierarchical").aggregate(None, reports)
        np.testing.assert_allclose(out["encoder/w"], [4.0])

    def test_single_report_is_bitwise_identity(self):
        value = np.array([0.7, 0.9], dtype=np.float32)
        out = create_aggregator("hierarchical").aggregate(
            None, [self.regional("d0", {"encoder/w": value}, 1.0, 3)]
        )
        np.testing.assert_array_equal(out["encoder/w"], value)

    def test_new_rules_registered_with_aliases(self):
        assert AGGREGATORS.get("async").name == "fedavg-async"
        assert AGGREGATORS.get("fedasync").name == "fedavg-async"
        assert AGGREGATORS.get("hier").name == "hierarchical"
        assert AGGREGATORS.get("edge-region-server").name == "hierarchical"
