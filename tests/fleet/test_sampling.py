"""Client samplers: registry semantics, K-of-N participation counts,
bitwise mid-schedule resume, and the K == N identity contract."""

import json
import os
import tempfile

import numpy as np
import pytest

from repro.experiments.config import StreamExperimentConfig
from repro.fleet import DeviceSpec, FleetConfig, FleetCoordinator
from repro.fleet.sampling import (
    ClientSampler,
    RoundRobinSampler,
    create_client_sampler,
)
from repro.registry import CLIENT_SAMPLERS, UnknownComponentError

SAMPLER_NAMES = ("uniform", "weighted", "round-robin")


def tiny_config(**overrides):
    base = dict(
        dataset="cifar10",
        image_size=8,
        stc=8,
        total_samples=64,
        buffer_size=8,
        encoder_widths=(8, 16),
        encoder_blocks=1,
        projection_dim=8,
        probe_train_per_class=4,
        probe_test_per_class=2,
        probe_epochs=2,
        seed=0,
    )
    base.update(overrides)
    return StreamExperimentConfig(**base)


def population_config(devices=4, rounds=2, participants=None, sampler=None, **kw):
    return tiny_config(**kw).with_(
        fleet=FleetConfig(
            devices=tuple(DeviceSpec() for _ in range(devices)),
            rounds=rounds,
            participants=participants,
            sampler=sampler,
        ),
        aggregator="fedavg",
    )


def fingerprint(result):
    return json.dumps(result.fingerprint(), sort_keys=True, default=str)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(SAMPLER_NAMES) <= set(CLIENT_SAMPLERS.names())

    def test_aliases_resolve(self):
        assert CLIENT_SAMPLERS.get("random").name == "uniform"
        assert CLIENT_SAMPLERS.get("rr").name == "round-robin"
        assert CLIENT_SAMPLERS.get("weighted-by-profile").name == "weighted"

    def test_did_you_mean(self):
        with pytest.raises(UnknownComponentError, match="uniform"):
            CLIENT_SAMPLERS.get("unifrom")

    def test_create_builds_instances(self):
        for name in SAMPLER_NAMES:
            assert isinstance(create_client_sampler(name), ClientSampler)

    def test_coordinator_rejects_unknown_sampler(self):
        config = population_config(participants=2, sampler="pigeon")
        with pytest.raises(ValueError, match="config.fleet.sampler"):
            FleetCoordinator(config)

    def test_coordinator_canonicalizes_alias(self):
        config = population_config(participants=2, sampler="rr")
        coordinator = FleetCoordinator(config)
        assert coordinator.fleet.sampler == "round-robin"


class TestSampleContract:
    """sample() returns k sorted distinct in-range indices."""

    @pytest.mark.parametrize("name", SAMPLER_NAMES)
    @pytest.mark.parametrize("k", [1, 3, 7, 10])
    def test_sorted_distinct_in_range(self, name, k):
        sampler = create_client_sampler(name)
        rng = np.random.default_rng(0)
        weights = np.linspace(1.0, 2.0, 10)
        for round_index in range(5):
            picked = sampler.sample(round_index, 10, k, rng, weights=weights)
            assert list(picked) == sorted(set(int(i) for i in picked))
            assert len(picked) == k
            assert all(0 <= i < 10 for i in picked)

    @pytest.mark.parametrize("name", SAMPLER_NAMES)
    def test_k_equals_n_selects_everyone(self, name):
        sampler = create_client_sampler(name)
        rng = np.random.default_rng(1)
        for round_index in range(3):
            picked = sampler.sample(
                round_index, 6, 6, rng, weights=np.ones(6)
            )
            assert list(picked) == list(range(6))

    @pytest.mark.parametrize("name", SAMPLER_NAMES)
    def test_invalid_k_rejected(self, name):
        sampler = create_client_sampler(name)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sampler.sample(0, 4, 0, rng)
        with pytest.raises(ValueError):
            sampler.sample(0, 4, 5, rng)

    def test_round_robin_cycles_without_repeats(self):
        sampler = RoundRobinSampler()
        rng = np.random.default_rng(0)
        seen = []
        for round_index in range(3):
            seen.extend(sampler.sample(round_index, 6, 2, rng))
        # 3 rounds x K=2 over 6 devices = exactly one full cycle
        assert sorted(seen) == list(range(6))

    def test_round_robin_state_round_trips(self):
        a = RoundRobinSampler()
        rng = np.random.default_rng(0)
        a.sample(0, 7, 3, rng)
        b = RoundRobinSampler()
        b.load_state_dict(a.state_dict())
        assert a.sample(1, 7, 3, rng) == b.sample(1, 7, 3, rng)


class TestParticipationCounts:
    def test_uniform_covers_devices_statistically(self):
        sampler = create_client_sampler("uniform")
        rng = np.random.default_rng(7)
        counts = np.zeros(10)
        rounds = 400
        for round_index in range(rounds):
            for i in sampler.sample(round_index, 10, 3, rng):
                counts[i] += 1
        expected = rounds * 3 / 10
        # loose statistical tolerance: every device participates and no
        # device dominates
        assert counts.min() > expected * 0.7
        assert counts.max() < expected * 1.3

    def test_weighted_prefers_cheap_profiles(self):
        sampler = create_client_sampler("weighted")
        rng = np.random.default_rng(11)
        # jetson-class compute is 5x cheaper than mcu-class, so its
        # sampling weight (1 / compute_pj_per_flop) is 5x larger.
        weights = np.array([5.0, 1.0, 5.0, 1.0])
        counts = np.zeros(4)
        rounds = 600
        for round_index in range(rounds):
            for i in sampler.sample(round_index, 4, 1, rng, weights=weights):
                counts[i] += 1
        heavy = counts[0] + counts[2]
        light = counts[1] + counts[3]
        assert heavy > light * 3  # ~5x in expectation

    def test_coordinator_trains_exactly_k_per_round(self):
        config = population_config(
            devices=5, rounds=3, participants=2, sampler="uniform"
        )
        result = FleetCoordinator(config).run()
        for stats in result.rounds:
            assert len(stats.participants) == 2
            assert len(stats.devices) == 2


class TestResume:
    @pytest.mark.parametrize("name", SAMPLER_NAMES)
    def test_mid_schedule_resume_is_bitwise(self, name, tmp_path):
        """Interrupting the sampling schedule and resuming draws the
        identical remaining participant sets (sampler RNG + cursor ride
        the checkpoint)."""
        config = population_config(
            devices=5, rounds=4, participants=2, sampler=name
        )
        full = FleetCoordinator(config).run()

        first = FleetCoordinator(config)
        first.run(rounds=2)
        path = first.save_checkpoint(str(tmp_path / "mid"))
        resumed = FleetCoordinator.resume(path).run()

        assert fingerprint(full) == fingerprint(resumed)
        assert [s.participants for s in full.rounds] == [
            s.participants for s in resumed.rounds
        ]

    def test_sampler_meta_is_strict_json(self):
        config = population_config(devices=4, rounds=2, participants=2)
        coordinator = FleetCoordinator(config)
        coordinator.run(rounds=1)
        meta = coordinator.state_dict()["meta"]
        json.loads(json.dumps(meta))  # raises on non-JSON types
        assert "sampler" in meta


class TestKEqualsNIdentity:
    @pytest.mark.parametrize("name", SAMPLER_NAMES)
    def test_full_participation_matches_unsampled_rounds(self, name):
        """participants == N under every sampler trains everyone, every
        round — device results are bitwise-identical to the plain
        synchronous path (only the bookkeeping columns differ)."""
        plain = FleetCoordinator(population_config(devices=3, rounds=2)).run()
        sampled = FleetCoordinator(
            population_config(devices=3, rounds=2, participants=3, sampler=name)
        ).run()
        assert [s.participants for s in sampled.rounds] == [[0, 1, 2]] * 2
        plain_fp = plain.fingerprint()
        sampled_fp = sampled.fingerprint()
        # identical everywhere except the population bookkeeping and
        # the config's population fields
        assert plain_fp["device_results"] == sampled_fp["device_results"]
        assert (
            plain_fp["final_global_knn_accuracy"]
            == sampled_fp["final_global_knn_accuracy"]
        )
        for p_round, s_round in zip(plain_fp["rounds"], sampled_fp["rounds"]):
            assert p_round["devices"] == s_round["devices"]
            assert (
                p_round["global_knn_accuracy"] == s_round["global_knn_accuracy"]
            )
