"""FaultPlan chaos harness: deterministic seeded draws, and the
coordinator-level properties — any seeded plan leaves the fleet
resumable, never deadlocks a round, and replays fingerprint-identical
from the same plan + seed."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import StreamExperimentConfig
from repro.fleet import DeviceSpec, FaultPlan, FleetConfig, FleetCoordinator
from repro.fleet.faults import DeviceFaults, fault_rng

PLAN_SETTINGS = dict(max_examples=50, deadline=None)
FLEET_SETTINGS = dict(max_examples=5, deadline=None)


def tiny_config(**overrides):
    base = dict(
        dataset="cifar10",
        image_size=8,
        stc=8,
        total_samples=48,
        buffer_size=8,
        encoder_widths=(8, 16),
        encoder_blocks=1,
        projection_dim=8,
        probe_train_per_class=4,
        probe_test_per_class=2,
        probe_epochs=2,
        seed=0,
    )
    base.update(overrides)
    return StreamExperimentConfig(**base)


def chaos_config(plan, devices=3, rounds=2, deadline=1.0):
    return tiny_config().with_(
        fleet=FleetConfig(
            devices=tuple(DeviceSpec() for _ in range(devices)),
            rounds=rounds,
            round_deadline_s=deadline,
            fault_plan=plan,
        ),
        aggregator="fedavg",
    )


def fingerprint(result):
    return json.dumps(result.fingerprint(), sort_keys=True, default=str)


device_faults = st.builds(
    DeviceFaults,
    straggler_delay_s=st.sampled_from([0.0, 0.5, 1.5, 2.5]),
    dropout_prob=st.sampled_from([0.0, 0.3, 1.0]),
    crash_at_round=st.sampled_from([None, 0, 1]),
)

fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(0, 2**31 - 1),
    default=device_faults,
    overrides=st.dictionaries(
        st.integers(0, 2), device_faults, max_size=2
    ).map(lambda d: tuple(sorted(d.items()))),
)


class TestPlanDeterminism:
    @settings(**PLAN_SETTINGS)
    @given(
        seed=st.integers(0, 2**31 - 1),
        round_index=st.integers(0, 100),
        device_index=st.integers(0, 1000),
    )
    def test_fault_rng_is_stateless_and_stable(self, seed, round_index, device_index):
        a = fault_rng(seed, round_index, device_index).random(4)
        b = fault_rng(seed, round_index, device_index).random(4)
        np.testing.assert_array_equal(a, b)

    @settings(**PLAN_SETTINGS)
    @given(plan=fault_plans, round_index=st.integers(0, 5))
    def test_draws_replay_identically(self, plan, round_index):
        replay = FaultPlan.from_dict(plan.to_dict())
        for device in range(4):
            assert plan.drops(round_index, device) == replay.drops(
                round_index, device
            )
            assert plan.delay(device) == replay.delay(device)
            assert plan.crashes(round_index, device) == replay.crashes(
                round_index, device
            )

    @settings(**PLAN_SETTINGS)
    @given(plan=fault_plans)
    def test_dict_round_trip(self, plan):
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        json.loads(json.dumps(plan.to_dict()))  # strict JSON

    def test_extreme_probabilities(self):
        always = FaultPlan(seed=0, default=DeviceFaults(dropout_prob=1.0))
        never = FaultPlan(seed=0, default=DeviceFaults(dropout_prob=0.0))
        for r in range(4):
            for d in range(4):
                assert always.drops(r, d)
                assert not never.drops(r, d)
        assert never.is_noop
        assert not always.is_noop

    def test_validation(self):
        with pytest.raises(ValueError, match="dropout_prob"):
            DeviceFaults(dropout_prob=1.5)
        with pytest.raises(ValueError, match="straggler_delay_s"):
            DeviceFaults(straggler_delay_s=-1.0)
        with pytest.raises(ValueError, match="crash_at_round"):
            DeviceFaults(crash_at_round=-2)
        with pytest.raises(ValueError):
            FleetConfig(
                devices=(DeviceSpec(),),
                rounds=1,
                fault_plan=FaultPlan(
                    seed=0, overrides=((5, DeviceFaults(dropout_prob=0.5)),)
                ),
            )


class TestCoordinatorUnderChaos:
    @settings(**FLEET_SETTINGS)
    @given(plan=fault_plans)
    def test_replay_resumable_and_no_deadlock(self, plan, tmp_path_factory):
        """The property matrix: under ANY seeded plan the fleet (i)
        completes every round (no deadlock, even all-dropout rounds),
        (ii) replays fingerprint-identical from plan + seed, and (iii)
        resumes bitwise from a mid-run checkpoint."""
        config = chaos_config(plan)

        full = FleetCoordinator(config).run()
        assert len(full.rounds) == 2  # (i) completed

        replay = FleetCoordinator(config).run()
        assert fingerprint(full) == fingerprint(replay)  # (ii)

        first = FleetCoordinator(config)
        first.run(rounds=1)
        path = first.save_checkpoint(
            str(tmp_path_factory.mktemp("chaos") / "mid")
        )
        resumed = FleetCoordinator.resume(path).run()
        assert fingerprint(full) == fingerprint(resumed)  # (iii)

    def test_all_dropout_round_is_not_synchronized(self):
        plan = FaultPlan(seed=3, default=DeviceFaults(dropout_prob=1.0))
        result = FleetCoordinator(chaos_config(plan)).run()
        for stats in result.rounds:
            assert not stats.synchronized
            assert stats.devices == []
            assert len(stats.dropped) == 3
        # no global model and nobody trained: accuracy is None-encoded
        assert stats.to_dict()["global_knn_accuracy"] is None

    def test_straggler_report_is_buffered_then_aggregated(self):
        # device 1 is 2 deadlines late: its round-0 report joins round 2
        plan = FaultPlan(
            seed=0, overrides=((1, DeviceFaults(straggler_delay_s=2.5)),)
        )
        config = chaos_config(plan, devices=3, rounds=3, deadline=1.0)
        coordinator = FleetCoordinator(config)
        coordinator.run(rounds=1)
        assert len(coordinator._pending) == 1
        assert coordinator._pending[0]["arrival_round"] == 2
        coordinator.run()
        # round 0's report matured at round 2; rounds 1 and 2 are still
        # in flight when the schedule ends
        assert [p["dispatch_round"] for p in coordinator._pending] == [1, 2]
        late_rounds = [s.late for s in coordinator.result().rounds]
        assert late_rounds == [[1], [1], [1]]

    def test_pending_reports_survive_checkpoint(self, tmp_path):
        plan = FaultPlan(
            seed=0, overrides=((0, DeviceFaults(straggler_delay_s=9.5)),)
        )
        config = chaos_config(plan, devices=2, rounds=3, deadline=1.0)
        first = FleetCoordinator(config)
        first.run(rounds=1)
        assert len(first._pending) == 1
        path = first.save_checkpoint(str(tmp_path / "pending"))
        resumed = FleetCoordinator.resume(path)
        assert len(resumed._pending) == 1
        entry = resumed._pending[0]
        assert entry["device_index"] == 0
        assert set(entry["model_state"]) == set(first._pending[0]["model_state"])
        assert fingerprint(resumed.run()) == fingerprint(
            FleetCoordinator(config).run()
        )

    def test_crash_fault_recovers_bitwise_under_pool(self):
        plan = FaultPlan(
            seed=0, overrides=((1, DeviceFaults(crash_at_round=0)),)
        )
        config = chaos_config(plan, devices=3, rounds=2)
        serial = FleetCoordinator(config, workers=1).run()
        parallel_coordinator = FleetCoordinator(config, workers=3)
        parallel = parallel_coordinator.run()
        assert fingerprint(serial) == fingerprint(parallel)
        # the injected crash actually happened (then recovered)
        assert sum(t["crashes"] for t in parallel_coordinator.timings) >= 1
