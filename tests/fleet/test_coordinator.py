"""FleetCoordinator: eager validation, single-device identity,
heterogeneous fleets, checkpoint/resume and parallel bitwiseness."""

import numpy as np
import pytest

from repro.experiments.config import StreamExperimentConfig
from repro.experiments.parallel import result_fingerprint
from repro.fleet import DeviceSpec, FleetConfig, FleetCoordinator
from repro.fleet.coordinator import decode_arrays, encode_arrays
from repro.registry import BACKENDS
from repro.session import Session

BACKENDS_UNDER_TEST = tuple(BACKENDS.names())


def tiny_config(**overrides):
    base = dict(
        dataset="cifar10",
        image_size=8,
        stc=8,
        total_samples=64,
        buffer_size=8,
        encoder_widths=(8, 16),
        encoder_blocks=1,
        projection_dim=8,
        probe_train_per_class=4,
        probe_test_per_class=2,
        probe_epochs=2,
        seed=0,
    )
    base.update(overrides)
    return StreamExperimentConfig(**base)


def fleet_config(devices, rounds=2, aggregator="fedavg", **overrides):
    return tiny_config(**overrides).with_(
        fleet=FleetConfig(devices=tuple(devices), rounds=rounds),
        aggregator=aggregator,
    )


class TestWireFormat:
    def test_array_round_trip_is_bitwise(self):
        rng = np.random.default_rng(0)
        arrays = {
            "f32": rng.normal(size=(3, 4)).astype(np.float32),
            "f64": rng.normal(size=(2,)),
            "i64-scalar": np.array(7, dtype=np.int64),
            "empty": np.zeros((0, 5), dtype=np.float32),
            "noncontig": np.asarray(rng.normal(size=(4, 4)))[::2, ::2],
        }
        decoded = decode_arrays(encode_arrays(arrays))
        assert set(decoded) == set(arrays)
        for key, value in arrays.items():
            assert decoded[key].dtype == value.dtype
            assert decoded[key].shape == value.shape
            assert np.array_equal(decoded[key], value)


class TestEagerValidation:
    """Everything fails at construction, with per-field messages."""

    def test_requires_fleet_field(self):
        with pytest.raises(ValueError, match="config.fleet must be set"):
            FleetCoordinator(tiny_config())

    def test_unknown_aggregator_names_field(self):
        config = fleet_config([DeviceSpec()], aggregator="fedavgg")
        with pytest.raises(ValueError, match="config.aggregator:.*did you mean"):
            FleetCoordinator(config)

    def test_unknown_device_policy_names_index(self):
        config = fleet_config([DeviceSpec(), DeviceSpec(policy="fifoo")])
        with pytest.raises(
            ValueError, match=r"config.fleet.devices\[1\].policy:.*did you mean"
        ):
            FleetCoordinator(config)

    def test_unknown_device_scenario_names_index(self):
        config = fleet_config([DeviceSpec(scenario="driift")])
        with pytest.raises(
            ValueError, match=r"config.fleet.devices\[0\].scenario:"
        ):
            FleetCoordinator(config)

    def test_unknown_device_backend_names_index(self):
        config = fleet_config([DeviceSpec(backend="fussed")])
        with pytest.raises(
            ValueError, match=r"config.fleet.devices\[0\].backend:"
        ):
            FleetCoordinator(config)

    def test_unknown_device_profile_names_index(self):
        config = fleet_config([DeviceSpec(profile="tpu-pod")])
        with pytest.raises(
            ValueError, match=r"config.fleet.devices\[0\].profile:.*known:"
        ):
            FleetCoordinator(config)

    def test_impossible_budget_names_field(self):
        config = fleet_config([DeviceSpec(compute_budget_mj=1e-12)])
        with pytest.raises(
            ValueError,
            match=r"config.fleet.devices\[0\].compute_budget_mj:.*cannot be met",
        ):
            FleetCoordinator(config)

    def test_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            FleetCoordinator(fleet_config([DeviceSpec()]), workers=0)

    def test_bad_eval_points(self):
        with pytest.raises(ValueError, match="eval_points"):
            FleetCoordinator(fleet_config([DeviceSpec()]), eval_points=0)

    def test_aliases_canonicalized_on_config(self):
        config = fleet_config(
            [DeviceSpec(policy="cs", scenario="cyclic")], aggregator="avg"
        )
        coordinator = FleetCoordinator(config)
        assert coordinator.config.aggregator == "fedavg"
        spec = coordinator.config.fleet.devices[0]
        assert spec.policy == "contrast-scoring"
        assert spec.scenario == "cyclic-drift"

    def test_budget_derives_lazy_interval(self):
        # Generous budget -> eager scoring fits; tight-but-feasible
        # budget -> some ladder interval is chosen deterministically.
        config = fleet_config(
            [DeviceSpec(profile="mcu-class", compute_budget_mj=1e6)]
        )
        coordinator = FleetCoordinator(config)
        assert coordinator._plans[0].lazy_interval is None


class TestSingleDeviceIdentity:
    def test_fedavg_fleet_of_one_matches_plain_session(self):
        """Acceptance: a fedavg fleet of 1 device is bitwise-identical
        to a plain single-device Session run with the same config."""
        config = tiny_config(total_samples=96)
        plain = Session(config, "contrast-scoring").with_eval_points(1).run()
        coordinator = FleetCoordinator(
            config.with_(fleet=FleetConfig.uniform(1, rounds=3), aggregator="fedavg")
        )
        fleet = coordinator.run()
        assert result_fingerprint(fleet.device_results[0]) == result_fingerprint(
            plain
        )
        assert fleet.final_global_knn_accuracy == plain.info["final_knn_accuracy"]

    @pytest.mark.parametrize("aggregator", ["fedavg-momentum", "best-of"])
    def test_other_rules_are_also_identity_for_one_device(self, aggregator):
        config = tiny_config()
        plain = Session(config, "contrast-scoring").with_eval_points(1).run()
        fleet = FleetCoordinator(
            config.with_(
                fleet=FleetConfig.uniform(1, rounds=2), aggregator=aggregator
            )
        ).run()
        assert result_fingerprint(fleet.device_results[0]) == result_fingerprint(
            plain
        )


HETERO_DEVICES = (
    DeviceSpec(scenario="temporal"),
    DeviceSpec(scenario="drift", policy="fifo"),
    DeviceSpec(scenario="imbalanced"),
)


class TestHeterogeneousFleet:
    def test_aggregation_across_scenarios(self):
        """Satellite: aggregation works over per-device scenarios —
        every device keeps its own stream shape, policy, and seed while
        the model still synchronizes."""
        coordinator = FleetCoordinator(
            fleet_config(HETERO_DEVICES, rounds=2, aggregator="fedavg")
        )
        result = coordinator.run()
        assert len(result.rounds) == 2
        assert [d.device for d in result.rounds[0].devices] == [
            "device0",
            "device1",
            "device2",
        ]
        # every device consumed its own stream
        assert all(d.samples > 0 for d in result.rounds[0].devices)
        # scenario and seed heterogeneity survived on the run configs
        scenarios = [r.config.scenario for r in result.device_results]
        assert scenarios == ["temporal", "drift", "imbalanced"]
        assert [r.config.seed for r in result.device_results] == [0, 1, 2]
        # after a synchronizing round, devices share the model bitwise
        states = coordinator._device_states
        for key, value in states[0]["learner"].items():
            if key.startswith(("encoder/", "projector/")):
                assert np.array_equal(value, states[1]["learner"][key])
        # ... but keep their own optimizer moments
        assert result.rounds[-1].synchronized

    def test_local_only_never_synchronizes(self):
        coordinator = FleetCoordinator(
            fleet_config(HETERO_DEVICES, rounds=2, aggregator="local-only")
        )
        result = coordinator.run()
        assert all(not r.synchronized for r in result.rounds)
        assert coordinator.global_model_state is None
        expected = np.mean([d.knn_accuracy for d in result.rounds[-1].devices])
        assert result.final_global_knn_accuracy == pytest.approx(float(expected))

    def test_parallel_bitwise_identical_to_serial(self):
        config = fleet_config(HETERO_DEVICES, rounds=2, aggregator="fedavg-momentum")
        serial = FleetCoordinator(config).run()
        parallel = FleetCoordinator(config, workers=3).run()
        assert serial.fingerprint() == parallel.fingerprint()

    def test_run_fleet_experiment_parallel_equals_serial(self):
        """Acceptance: the fleet experiment with workers=2 produces
        bitwise-identical deterministic fields to the serial run."""
        from repro.experiments.fleet import run_fleet

        config = tiny_config()
        serial = run_fleet(config, devices=2, rounds=2, workers=1)
        parallel = run_fleet(config, devices=2, rounds=2, workers=2)
        assert serial.fingerprint() == parallel.fingerprint()


class TestCheckpointResume:
    @pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
    def test_mid_run_resume_is_bitwise(self, backend, tmp_path):
        """Satellite: checkpoint after round 1 of 3, resume, finish —
        bitwise-identical to the uninterrupted run, on every backend."""
        config = fleet_config(
            (DeviceSpec(scenario="temporal"), DeviceSpec(scenario="drift")),
            rounds=3,
            aggregator="fedavg-momentum",
            backend=backend,
        )
        straight = FleetCoordinator(config).run()

        part = FleetCoordinator(config)
        part.run(rounds=1)
        path = part.save_checkpoint(str(tmp_path / "fleet"))
        resumed = FleetCoordinator.resume(path)
        assert resumed.rounds_completed == 1
        result = resumed.run()
        assert result.fingerprint() == straight.fingerprint()

    def test_resume_under_parallel_workers_is_bitwise(self, tmp_path):
        config = fleet_config(HETERO_DEVICES, rounds=2)
        straight = FleetCoordinator(config).run()
        part = FleetCoordinator(config, workers=2)
        part.run(rounds=1)
        path = part.save_checkpoint(str(tmp_path / "fleet"))
        result = FleetCoordinator.resume(path, workers=2).run()
        assert result.fingerprint() == straight.fingerprint()

    def test_state_dict_round_trip_in_memory(self):
        config = fleet_config([DeviceSpec(), DeviceSpec()], rounds=2)
        a = FleetCoordinator(config)
        a.run(rounds=1)
        b = FleetCoordinator(config)
        b.load_state_dict(a.state_dict())
        assert a.run().fingerprint() == b.run().fingerprint()

    def test_load_rejects_mismatched_config(self):
        a = FleetCoordinator(fleet_config([DeviceSpec()], rounds=2))
        a.run(rounds=1)
        b = FleetCoordinator(fleet_config([DeviceSpec()], rounds=2, seed=9))
        with pytest.raises(ValueError, match="different config"):
            b.load_state_dict(a.state_dict())

    def test_result_before_any_round_raises(self):
        coordinator = FleetCoordinator(fleet_config([DeviceSpec()]))
        with pytest.raises(RuntimeError, match="no rounds"):
            coordinator.result()

    def test_run_rejects_zero_rounds(self):
        coordinator = FleetCoordinator(fleet_config([DeviceSpec()]))
        with pytest.raises(ValueError, match="rounds must be >= 1"):
            coordinator.run(rounds=0)

    def test_run_after_completion_returns_result(self):
        coordinator = FleetCoordinator(fleet_config([DeviceSpec()], rounds=1))
        first = coordinator.run()
        again = coordinator.run()  # nothing remaining: just the result
        assert again.fingerprint() == first.fingerprint()
