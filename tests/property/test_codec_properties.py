"""Property tests for the lossy compressed-delta codecs.

``delta-q8`` and ``delta-topk`` trade exactness for bandwidth, but only
inside a documented tolerance contract (wire.py docstrings and
docs/FLEET.md codec table): q8's per-element absolute error is at most
the affine scale and exact zeros stay exactly zero; topk ships the
largest moves exactly and bounds every other element's deviation by the
smallest shipped move.  Full sends — first contact and every send after
a respawn/invalidate — are bitwise under both.  These tests drive the
contracts over random shapes, dtypes, and state transitions, and assert
the lossless registry metadata stays truthful."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.wire import (
    WireProtocolError,
    array_hash,
    create_wire_format,
    lossless_wire_format_names,
    shm_available,
)
from repro.registry import WIRE_FORMATS

SETTINGS = dict(max_examples=25, deadline=None)

LOSSY = ("delta-q8", "delta-topk")


@st.composite
def float_transitions(draw):
    """A (base, new) pair of same-shape float arrays large enough to
    trigger compression, with exact zeros planted in ``new``."""
    dtype = draw(st.sampled_from((np.float32, np.float64)))
    size = draw(st.integers(64, 300))
    magnitude = draw(st.sampled_from([1e-3, 1.0, 1e3]))
    step = draw(st.sampled_from([0.01, 0.5, 2.0]))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    base = (rng.normal(size=size) * magnitude).astype(dtype)
    new = (base + rng.normal(size=size) * magnitude * step).astype(dtype)
    zeros = rng.choice(size, size=draw(st.integers(0, 8)), replace=False)
    new[zeros] = 0.0
    return base, new


@st.composite
def array_dicts(draw):
    """Random state dicts mixing dtypes, dims, and degenerate shapes."""
    out = {}
    for i in range(draw(st.integers(0, 4))):
        dtype = draw(
            st.sampled_from((np.float32, np.float64, np.int64, np.uint8))
        )
        shape = tuple(draw(st.lists(st.integers(0, 6), max_size=3)))
        rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
        if np.issubdtype(dtype, np.floating):
            out[f"array{i}"] = rng.normal(size=shape).astype(dtype)
        else:
            out[f"array{i}"] = rng.integers(0, 200, size=shape).astype(dtype)
    return out


class TestQ8Contract:
    @settings(**SETTINGS)
    @given(float_transitions())
    def test_error_bound_and_exact_zeros(self, pair):
        base, new = pair
        codec = create_wire_format("delta-q8")
        codec.decode(codec.encode({"w": base}, channel="c"), channel="c")
        payload = codec.encode({"w": new}, channel="c")
        decoded = codec.decode(payload, channel="c")["w"]
        assert decoded.dtype == new.dtype
        assert decoded.shape == new.shape
        lo = min(float(new.min()), 0.0)
        hi = max(float(new.max()), 0.0)
        scale = (hi - lo) / 255.0
        error = np.abs(decoded.astype(np.float64) - new.astype(np.float64))
        assert float(error.max()) <= scale * 1.000001 + 1e-12
        # exact zeros reconstruct to exact zeros, bitwise
        np.testing.assert_array_equal(decoded[new == 0.0], 0.0)
        # and the lossy path actually engaged unless nothing changed
        if array_hash(new) != array_hash(base):
            meta = payload["codec"].get("w")
            assert meta is None or meta["kind"] == "q8"

    def test_small_nonfinite_and_integer_arrays_ship_raw(self):
        codec = create_wire_format("delta-q8")
        states = [
            {"w": np.zeros(16, dtype=np.float32)},  # below min_size
            {"w": np.full(128, np.nan, dtype=np.float32)},  # non-finite
            {"w": np.arange(128, dtype=np.int64)},  # non-float
        ]
        for state in states:
            codec.invalidate()
            codec.decode(codec.encode(state, channel="c"), channel="c")
            bumped = {"w": state["w"] + 1}
            payload = codec.encode(bumped, channel="c")
            assert payload["codec"] == {}
            decoded = codec.decode(payload, channel="c")["w"]
            assert array_hash(decoded) == array_hash(bumped["w"])


class TestTopKContract:
    @settings(**SETTINGS)
    @given(float_transitions())
    def test_deviation_bounded_by_smallest_shipped_move(self, pair):
        base, new = pair
        codec = create_wire_format("delta-topk")
        codec.decode(codec.encode({"w": base}, channel="c"), channel="c")
        payload = codec.encode({"w": new}, channel="c")
        decoded = codec.decode(payload, channel="c")["w"]
        assert decoded.dtype == new.dtype
        assert decoded.shape == new.shape
        moves = np.abs(new.astype(np.float64) - base.astype(np.float64))
        k = max(1, int(math.ceil(codec.fraction * new.size)))
        bound = float(np.sort(moves)[-k])  # the smallest shipped move
        error = np.abs(decoded.astype(np.float64) - new.astype(np.float64))
        assert float(error.max()) <= bound

    def test_shipped_elements_are_exact_and_sparse(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=100).astype(np.float32)
        new = base.copy()
        new[:5] += 10.0  # five large moves, everything else untouched
        codec = create_wire_format("delta-topk")
        codec.decode(codec.encode({"w": base}, channel="c"), channel="c")
        payload = codec.encode({"w": new}, channel="c")
        assert payload["codec"]["w"] == {"kind": "topk", "k": 10}
        decoded = codec.decode(payload, channel="c")["w"]
        # untouched elements keep the base bitwise; the large moves land
        np.testing.assert_array_equal(decoded, new)

    def test_first_send_has_no_base_so_ships_raw(self):
        codec = create_wire_format("delta-topk")
        value = np.random.default_rng(1).normal(size=128).astype(np.float32)
        payload = codec.encode({"w": value}, channel="c")
        assert payload["full"] and payload["codec"] == {}
        decoded = codec.decode(payload, channel="c")["w"]
        assert array_hash(decoded) == array_hash(value)


class TestStateTransitions:
    @pytest.mark.parametrize("name", LOSSY)
    @settings(**SETTINGS)
    @given(array_dicts(), array_dicts())
    def test_any_transition_decodes_consistently(self, name, first, second):
        """Added, removed, reshaped, retyped, and unchanged keys all
        decode to the advertised key set with exact dtypes/shapes; the
        protocol's own hash verification guards the values."""
        codec = create_wire_format(name)
        codec.decode(codec.encode(first, channel="t"), channel="t")
        decoded = codec.decode(codec.encode(second, channel="t"), channel="t")
        assert set(decoded) == set(second)
        for key, value in second.items():
            assert decoded[key].dtype == value.dtype, key
            assert decoded[key].shape == value.shape, key
            if value.dtype.kind != "f":
                assert array_hash(decoded[key]) == array_hash(value), key


class TestRespawnResend:
    @pytest.mark.parametrize("name", ("delta",) + LOSSY)
    def test_full_resend_after_receiver_respawn(self, name):
        """A respawned receiver (fresh codec instance, empty cache)
        fails loudly on an incremental payload; after the sender
        invalidates the channel the next send is full and decodes
        bitwise — the exact recovery sequence run_jobs performs on
        WorkerCrashedError."""
        rng = np.random.default_rng(2)
        first = {"w": rng.normal(size=128).astype(np.float32)}
        second = {"w": (first["w"] + rng.normal(size=128) * 0.1).astype(np.float32)}
        sender = create_wire_format(name)
        receiver = create_wire_format(name)
        receiver.decode(sender.encode(first, channel="r"), channel="r")

        respawned = create_wire_format(name)  # lost its cached base
        stale = sender.encode(second, channel="r")
        assert not stale["full"]
        with pytest.raises(WireProtocolError):
            respawned.decode(stale, channel="r")

        sender.invalidate("r")
        resend = sender.encode(second, channel="r")
        assert resend["full"]
        decoded = respawned.decode(resend, channel="r")["w"]
        assert array_hash(decoded) == array_hash(second["w"])


class TestLosslessRegistry:
    def test_metadata_matches_instances(self):
        names = set(lossless_wire_format_names())
        assert names.isdisjoint(LOSSY)
        assert {"json-b64", "delta"} <= names
        if shm_available():
            assert "shm" in names
        for name in WIRE_FORMATS.names():
            if name == "shm" and not shm_available():
                continue
            entry_lossless = WIRE_FORMATS.get(name).metadata.get("lossless", True)
            assert create_wire_format(name).lossless == entry_lossless, name

    @settings(**SETTINGS)
    @given(array_dicts(), array_dicts())
    def test_lossless_formats_stay_bitwise_across_transitions(
        self, first, second
    ):
        for name in lossless_wire_format_names():
            if name == "shm" and not shm_available():
                continue
            codec = create_wire_format(name)
            codec.decode(codec.encode(first, channel="s"), channel="s")
            decoded = codec.decode(codec.encode(second, channel="s"), channel="s")
            assert set(decoded) == set(second), name
            for key, value in second.items():
                assert array_hash(decoded[key]) == array_hash(value), (name, key)
