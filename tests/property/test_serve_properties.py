"""Property-based tests for the serve layer's two core contracts:

1. a cache-hit decision is **bitwise identical** to the cache-miss
   decision that populated it, for the same (content hash, model
   version) — scores, selection verdicts, and versions all match;
2. a model publish (what every fleet broadcast triggers through
   ``ModelRegistry.attach``) invalidates **every** stale cache entry —
   no entry at a non-retained version ever survives a publish.
"""

import asyncio

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scoring import content_hash
from repro.serve import EmbeddingCache, ModelRegistry, ScoringServer

SETTINGS = dict(max_examples=25, deadline=None)


class _StubModule:
    def load_state_dict(self, state):
        self.loaded = dict(state)


class _StubScorer:
    """Deterministic, model-free scorer: score = mean pixel value."""

    def __init__(self):
        self.encoder = _StubModule()
        self.projector = _StubModule()
        self.score_cache = None

    def score(self, images):
        return np.clip(
            images.astype(np.float64).mean(axis=(1, 2, 3)), 0.0, 2.0
        )


def _model_state(value=0.0):
    return {"encoder/w": np.full((2,), value), "projector/w": np.full((2,), value)}


def _server(cache=None, **overrides):
    models = ModelRegistry()
    models.publish(_model_state())
    kwargs = dict(max_batch=8, max_wait_ms=0.0, cache=cache)
    kwargs.update(overrides)
    return ScoringServer(_StubScorer(), models, **kwargs)


images_strategy = st.lists(
    st.lists(st.floats(0.0, 1.0, width=32), min_size=4, max_size=4),
    min_size=1,
    max_size=12,
).map(
    lambda rows: np.asarray(rows, dtype=np.float32).reshape(len(rows), 1, 2, 2)
)


class TestCacheHitBitwiseIdentity:
    @given(images=images_strategy, threshold=st.floats(0.0, 2.0))
    @settings(**SETTINGS)
    def test_hit_decision_bitwise_equals_populating_miss(self, images, threshold):
        server = _server(cache=EmbeddingCache(), threshold=threshold)

        async def run():
            async with server:
                cold = await server.submit_many(list(images))
                warm = await server.submit_many(list(images))
                return cold, warm

        cold, warm = asyncio.run(run())
        digests = content_hash(images)
        seen = {}
        for digest, c, w in zip(digests, cold, warm):
            assert w.cache_hit
            # bitwise score identity, same verdict, same version
            assert np.float64(c.score).tobytes() == np.float64(w.score).tobytes()
            assert c.selected == w.selected == (c.score >= threshold)
            assert c.model_version == w.model_version
            # equal content -> equal decision, within and across passes
            if digest in seen:
                assert seen[digest].score == c.score
            seen[digest] = c

    @given(images=images_strategy)
    @settings(**SETTINGS)
    def test_cached_scores_equal_uncached_server(self, images):
        cached_server = _server(cache=EmbeddingCache())
        plain_server = _server(cache=None)

        async def run(server):
            async with server:
                first = await server.submit_many(list(images))
                second = await server.submit_many(list(images))
                return first, second

        c1, c2 = asyncio.run(run(cached_server))
        p1, _ = asyncio.run(run(plain_server))
        for a, b, p in zip(c1, c2, p1):
            assert a.score == b.score == p.score


class TestBroadcastInvalidation:
    @given(
        publishes=st.integers(min_value=1, max_value=5),
        keep=st.integers(min_value=1, max_value=3),
        extra_bare_keys=st.integers(min_value=0, max_value=3),
    )
    @settings(**SETTINGS)
    def test_no_stale_entry_survives_any_publish(
        self, publishes, keep, extra_bare_keys
    ):
        models = ModelRegistry(keep=keep)
        cache = EmbeddingCache()
        models.on_publish(lambda v, m: cache.invalidate_stale(m.versions()))
        for round_index in range(publishes):
            version = models.publish(_model_state(float(round_index)))
            # entries accumulate at the freshly published version...
            cache.put((f"digest-{round_index}", version), float(round_index))
            # ...plus version-free strays (the in-library hook's keys)
            for j in range(extra_bare_keys):
                cache.put(f"bare-{round_index}-{j}", 0.0)
            live = set(models.versions())
            for key in list(cache._entries):
                if isinstance(key, tuple):
                    assert key[1] in live, (
                        f"stale entry {key!r} survived publish {version} "
                        f"(live: {sorted(live)})"
                    )
                else:
                    # bare keys inserted after this publish linger only
                    # until the next one drops them
                    assert key.startswith(f"bare-{round_index}-")

    def test_fleet_shaped_publish_chain(self):
        # The exact wiring ScoringServer uses, driven manually: each
        # "broadcast" publishes, publish prunes, pruning invalidates.
        models = ModelRegistry(keep=1)
        cache = EmbeddingCache()
        server = ScoringServer(_StubScorer(), models, cache=cache)
        models.publish(_model_state(1.0))
        cache.put(("d", 1), 0.5)
        models.publish(_model_state(2.0))  # v1 pruned -> ("d", 1) stale
        assert ("d", 1) not in cache
        assert server.models.versions() == [2]
