"""Property-based tests for the paper's core data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffer import DataBuffer
from repro.core.lazy import LazyScoringSchedule
from repro.core.replacement import ContrastScoringPolicy
from repro.data.stream import measure_stc
from repro.metrics.curves import LearningCurve
from repro.selection.fifo import FIFOPolicy
from repro.selection.kcenter import greedy_k_center
from repro.selection.random_replace import RandomReplacePolicy

SETTINGS = dict(max_examples=50, deadline=None)


class StubScorer:
    """score(x) = mean pixel value — deterministic, label-free."""

    def score(self, images):
        return images.mean(axis=(1, 2, 3)).astype(np.float64)


def const_images(values):
    values = np.asarray(values, dtype=np.float32)
    return np.broadcast_to(values[:, None, None, None], (len(values), 1, 2, 2)).copy()


class TestTopNProperties:
    @settings(**SETTINGS)
    @given(
        st.lists(st.floats(0, 2, allow_nan=False, width=32), min_size=1, max_size=40),
        st.integers(1, 40),
    )
    def test_topn_selects_maximal_subset(self, scores, n):
        scores = np.asarray(scores, dtype=np.float64)
        keep = ContrastScoringPolicy._top_n(scores, n)
        k = min(n, scores.size)
        assert keep.size == k
        assert len(set(keep.tolist())) == k
        # every kept score >= every dropped score
        dropped = np.setdiff1d(np.arange(scores.size), keep)
        if dropped.size and keep.size:
            assert scores[keep].min() >= scores[dropped].max() - 1e-12

    @settings(**SETTINGS)
    @given(
        st.lists(st.floats(0, 2, allow_nan=False, width=32), min_size=2, max_size=30)
    )
    def test_topn_full_selection_is_identity(self, scores):
        scores = np.asarray(scores, dtype=np.float64)
        keep = ContrastScoringPolicy._top_n(scores, scores.size)
        np.testing.assert_array_equal(np.sort(keep), np.arange(scores.size))


class TestReplacementInvariants:
    @settings(**SETTINGS)
    @given(
        st.lists(
            st.lists(st.floats(0.0, 1.0, allow_nan=False, width=32), min_size=4, max_size=4),
            min_size=1,
            max_size=12,
        )
    )
    def test_buffer_always_holds_top_scores_seen_recently(self, segments):
        """Invariant (Eq. 4): after each step, buffer scores equal the top-N
        of (previous buffer scores ∪ segment scores)."""
        capacity = 4
        policy = ContrastScoringPolicy(StubScorer(), capacity)
        buf = DataBuffer(capacity)
        prev_scores = np.zeros(0)
        for it, seg_values in enumerate(segments):
            incoming = const_images(seg_values)
            result = policy.select(buf, incoming, it)
            pool = (
                np.concatenate([buf.images, incoming]) if buf.size else incoming
            )
            buf.replace(pool, result.keep_indices, result.pool_scores, it)
            pool_scores = np.concatenate(
                [prev_scores, np.asarray(seg_values, dtype=np.float64)]
            )
            expected_top = np.sort(pool_scores)[::-1][: buf.size]
            np.testing.assert_allclose(
                np.sort(buf.scores)[::-1], expected_top, atol=1e-6
            )
            prev_scores = buf.scores.copy()

    @settings(**SETTINGS)
    @given(st.integers(1, 6), st.integers(1, 30))
    def test_buffer_never_exceeds_capacity(self, capacity, steps):
        rng = np.random.default_rng(0)
        policy = RandomReplacePolicy(capacity, rng)
        buf = DataBuffer(capacity)
        for it in range(steps):
            incoming = const_images(rng.uniform(0, 1, size=3))
            result = policy.select(buf, incoming, it)
            pool = np.concatenate([buf.images, incoming]) if buf.size else incoming
            buf.replace(pool, result.keep_indices, None, it)
            assert buf.size <= capacity

    @settings(**SETTINGS)
    @given(st.integers(2, 8))
    def test_fifo_buffer_is_suffix_of_stream(self, capacity):
        """FIFO invariant: buffer contents = most recent stream values."""
        policy = FIFOPolicy(capacity)
        buf = DataBuffer(capacity)
        stream_values = []
        rng = np.random.default_rng(1)
        for it in range(6):
            seg_values = rng.uniform(0, 1, size=capacity)
            stream_values.extend(seg_values.tolist())
            incoming = const_images(seg_values)
            result = policy.select(buf, incoming, it)
            pool = np.concatenate([buf.images, incoming]) if buf.size else incoming
            buf.replace(pool, result.keep_indices, None, it)
        expected = np.asarray(stream_values[-capacity:], dtype=np.float32)
        np.testing.assert_allclose(
            np.sort(buf.images[:, 0, 0, 0]), np.sort(expected), atol=1e-6
        )


class TestLazyProperties:
    @settings(**SETTINGS)
    @given(st.integers(2, 50), st.lists(st.integers(0, 500), min_size=1, max_size=64))
    def test_mask_matches_eq7(self, interval, ages):
        lazy = LazyScoringSchedule(interval)
        ages = np.asarray(ages)
        mask = lazy.needs_scoring(ages)
        np.testing.assert_array_equal(mask, (ages > 0) & (ages % interval == 0))

    @settings(**SETTINGS)
    @given(st.integers(2, 50))
    def test_rescoring_fraction_bounded(self, interval):
        lazy = LazyScoringSchedule(interval)
        rng = np.random.default_rng(interval)
        for _ in range(10):
            candidates = int(rng.integers(1, 20))
            rescored = int(rng.integers(0, candidates + 1))
            lazy.record(rescored, candidates)
        assert 0.0 <= lazy.rescoring_fraction <= 1.0


class TestKCenterProperties:
    @settings(**SETTINGS)
    @given(
        st.integers(2, 20),
        st.integers(1, 10),
        st.integers(0, 10_000),
    )
    def test_greedy_cover_radius_shrinks_with_k(self, n, d, seed):
        rng = np.random.default_rng(seed)
        feats = rng.normal(size=(n, d))

        def cover_radius(k):
            centers = greedy_k_center(feats, k)
            dists = np.linalg.norm(
                feats[:, None, :] - feats[centers][None], axis=2
            ).min(axis=1)
            return dists.max()

        k_small = max(1, n // 4)
        k_large = min(n, k_small + 2)
        assert cover_radius(k_large) <= cover_radius(k_small) + 1e-9


class TestStreamProperties:
    @settings(**SETTINGS)
    @given(st.integers(1, 40), st.integers(50, 400))
    def test_measured_stc_matches_nominal(self, stc, length):
        from repro.data.stream import TemporalStream
        from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset

        dataset = SyntheticImageDataset(SyntheticConfig("prop", 5, 8))
        stream = TemporalStream(dataset, stc, np.random.default_rng(0))
        labels = stream.next_labels(length * stc if stc < 10 else length)
        measured = measure_stc(labels)
        # runs are exact; only the final truncated run biases downward
        assert measured <= stc + 1e-9
        if labels.size >= 5 * stc:
            assert measured >= 0.7 * stc


class TestCurveProperties:
    @settings(**SETTINGS)
    @given(
        st.lists(
            st.tuples(st.integers(0, 10_000), st.floats(0, 1, allow_nan=False)),
            min_size=1,
            max_size=20,
        )
    )
    def test_inputs_to_reach_consistent(self, points):
        points = sorted(points, key=lambda p: p[0])
        curve = LearningCurve("m")
        for seen, acc in points:
            curve.add(seen, acc)
        target = curve.best_accuracy
        reach = curve.inputs_to_reach(target)
        assert reach is not None
        assert reach <= curve.seen_inputs[-1]
        # never reached above best
        assert curve.inputs_to_reach(target + 0.01) is None
