"""The observability contract: telemetry never changes a result.

Session, fleet, and sweep outputs must be bitwise identical with
metrics/tracing enabled or disabled, serial or parallel, under every
backend.  ``config.obs`` is normalized away by every fingerprint; these
tests enforce the whole matrix end to end.
"""

import pytest

from repro.experiments.config import StreamExperimentConfig
from repro.experiments.parallel import SweepSpec, result_fingerprint, run_sweep
from repro.experiments.runner import run_stream_experiment
from repro.fleet import DeviceSpec, FleetConfig, FleetCoordinator
from repro.obs import metrics, reset_metrics
from repro.obs.trace import SpanTracer, use_tracer
from repro.registry import BACKENDS

BACKENDS_UNDER_TEST = tuple(BACKENDS.names())


@pytest.fixture(autouse=True)
def _clean_registry():
    reset_metrics()
    yield
    reset_metrics()


def tiny_config(**overrides):
    base = dict(
        dataset="cifar10",
        image_size=8,
        stc=8,
        total_samples=64,
        buffer_size=8,
        encoder_widths=(8, 16),
        encoder_blocks=1,
        projection_dim=8,
        probe_train_per_class=4,
        probe_test_per_class=2,
        probe_epochs=2,
        seed=0,
    )
    base.update(overrides)
    return StreamExperimentConfig(**base)


def fleet_config(**overrides):
    return tiny_config(**overrides).with_(
        fleet=FleetConfig(devices=(DeviceSpec(), DeviceSpec()), rounds=2),
        aggregator="fedavg",
    )


def recorded_names():
    return {name for _, name, _, _ in metrics().series()}


class TestSessionIdentity:
    @pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
    def test_metrics_and_tracing_change_no_field(self, backend):
        config = tiny_config(backend=backend)
        plain = run_stream_experiment(
            config.with_(obs=False), "contrast-scoring", eval_points=2
        )
        tracer = SpanTracer()
        with use_tracer(tracer):
            observed = run_stream_experiment(
                config.with_(obs=True), "contrast-scoring", eval_points=2
            )
        assert result_fingerprint(observed) == result_fingerprint(plain)
        # The observed run really was instrumented, not silently off.
        assert "session.steps" in recorded_names()
        assert any(s["name"] == "session.step" for s in tracer.spans)


class TestFleetIdentity:
    def test_obs_on_equals_obs_off(self):
        off = FleetCoordinator(fleet_config().with_(obs=False)).run()
        on = FleetCoordinator(fleet_config().with_(obs=True)).run()
        assert on.fingerprint() == off.fingerprint()
        assert "fleet.rounds" in recorded_names()

    def test_serial_equals_parallel_with_metrics_on(self):
        config = fleet_config().with_(obs=True)
        serial = FleetCoordinator(config).run()
        parallel = FleetCoordinator(config, workers=2).run()
        assert serial.fingerprint() == parallel.fingerprint()
        # Worker-side telemetry shipped home and merged by label set.
        assert "session.steps" in recorded_names()


class TestSweepIdentity:
    def test_serial_equals_parallel_with_metrics_on(self):
        specs = [
            SweepSpec(
                config=tiny_config(seed=seed).with_(obs=True), policy="fifo"
            )
            for seed in (0, 1)
        ]
        serial = run_sweep(specs, workers=1)
        parallel = run_sweep(specs, workers=2)
        assert [result_fingerprint(r) for r in serial] == [
            result_fingerprint(r) for r in parallel
        ]

    def test_obs_on_equals_obs_off(self):
        spec = lambda obs: SweepSpec(  # noqa: E731
            config=tiny_config().with_(obs=obs), policy="contrast-scoring"
        )
        (off,) = run_sweep([spec(False)], workers=1)
        (on,) = run_sweep([spec(True)], workers=1)
        assert result_fingerprint(on) == result_fingerprint(off)
