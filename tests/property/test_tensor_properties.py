"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import functional as F
from repro.nn.tensor import Tensor, unbroadcast

SETTINGS = dict(max_examples=40, deadline=None)


def finite_arrays(min_dims=1, max_dims=3, min_side=1, max_side=5):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(
            min_dims=min_dims, max_dims=max_dims, min_side=min_side, max_side=max_side
        ),
        elements=st.floats(-10, 10, allow_nan=False, width=64),
    )


class TestArithmeticProperties:
    @settings(**SETTINGS)
    @given(finite_arrays())
    def test_add_commutative(self, x):
        a, b = Tensor(x), Tensor(x[::-1].copy())
        np.testing.assert_allclose((a + b).data, (b + a).data)

    @settings(**SETTINGS)
    @given(finite_arrays())
    def test_double_negation_identity(self, x):
        t = Tensor(x)
        np.testing.assert_allclose((-(-t)).data, x)

    @settings(**SETTINGS)
    @given(finite_arrays())
    def test_mul_by_one_identity(self, x):
        t = Tensor(x)
        np.testing.assert_allclose((t * 1.0).data, x)

    @settings(**SETTINGS)
    @given(finite_arrays())
    def test_sum_grad_is_ones(self, x):
        t = Tensor(x, requires_grad=True)
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(x))

    @settings(**SETTINGS)
    @given(finite_arrays())
    def test_mean_grad_uniform(self, x):
        t = Tensor(x, requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full_like(x, 1.0 / x.size))

    @settings(**SETTINGS)
    @given(finite_arrays())
    def test_linear_combination_gradient(self, x):
        """d(a*x + b*x)/dx = a + b everywhere."""
        t = Tensor(x, requires_grad=True)
        (t * 3.0 + t * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(x, 5.0))

    @settings(**SETTINGS)
    @given(finite_arrays())
    def test_relu_output_nonnegative(self, x):
        assert (Tensor(x).relu().data >= 0).all()

    @settings(**SETTINGS)
    @given(finite_arrays())
    def test_relu_idempotent(self, x):
        t = Tensor(x)
        np.testing.assert_array_equal(t.relu().data, t.relu().relu().data)

    @settings(**SETTINGS)
    @given(finite_arrays())
    def test_exp_log_inverse(self, x):
        t = Tensor(np.abs(x) + 0.5)
        np.testing.assert_allclose(t.log().exp().data, t.data, rtol=1e-9)

    @settings(**SETTINGS)
    @given(finite_arrays())
    def test_reshape_preserves_sum(self, x):
        t = Tensor(x)
        flat = t.reshape(x.size)
        np.testing.assert_allclose(flat.sum().item(), x.sum(), rtol=1e-9, atol=1e-9)


class TestSoftmaxProperties:
    @settings(**SETTINGS)
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(2, 8)),
            elements=st.floats(-30, 30, allow_nan=False, width=64),
        )
    )
    def test_softmax_is_distribution(self, x):
        s = F.softmax(Tensor(x), axis=1).data
        assert (s >= 0).all()
        np.testing.assert_allclose(s.sum(axis=1), np.ones(x.shape[0]), rtol=1e-6)

    @settings(**SETTINGS)
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(2, 8)),
            elements=st.floats(-30, 30, allow_nan=False, width=64),
        )
    )
    def test_softmax_shift_invariant(self, x):
        a = F.softmax(Tensor(x), axis=1).data
        b = F.softmax(Tensor(x + 7.0), axis=1).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    @settings(**SETTINGS)
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(2, 8)),
            elements=st.floats(-30, 30, allow_nan=False, width=64),
        )
    )
    def test_log_softmax_nonpositive(self, x):
        assert (F.log_softmax(Tensor(x), axis=1).data <= 1e-12).all()


class TestNormalizeProperties:
    @settings(**SETTINGS)
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
            elements=st.floats(-10, 10, allow_nan=False, width=64),
        ).filter(lambda x: (np.linalg.norm(x, axis=1) > 1e-3).all())
    )
    def test_l2_normalize_unit_norm(self, x):
        z = F.l2_normalize(Tensor(x), axis=1).data
        np.testing.assert_allclose(
            np.linalg.norm(z, axis=1), np.ones(x.shape[0]), rtol=1e-6
        )

    @settings(**SETTINGS)
    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
            elements=st.floats(0.1, 10, allow_nan=False, width=64),
        ),
        st.floats(0.5, 5.0),
    )
    def test_l2_normalize_scale_invariant(self, x, scale):
        a = F.l2_normalize(Tensor(x), axis=1).data
        b = F.l2_normalize(Tensor(x * scale), axis=1).data
        np.testing.assert_allclose(a, b, atol=1e-9)


class TestUnbroadcastProperties:
    @settings(**SETTINGS)
    @given(finite_arrays(min_dims=2, max_dims=3))
    def test_unbroadcast_preserves_total(self, g):
        """Summed-out gradients preserve the total mass."""
        target_shape = g.shape[1:]
        out = unbroadcast(g, target_shape)
        np.testing.assert_allclose(out.sum(), g.sum(), rtol=1e-9)

    @settings(**SETTINGS)
    @given(finite_arrays(min_dims=1, max_dims=3))
    def test_unbroadcast_identity(self, g):
        assert unbroadcast(g, g.shape) is g
