"""Property tests: every registered wire format round-trips fleet-style
array payloads bitwise, over random shapes and dtypes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.wire import (
    array_hash,
    create_wire_format,
    outstanding_shm_segments,
    shm_available,
)
from repro.registry import WIRE_FORMATS

SETTINGS = dict(max_examples=25, deadline=None)

DTYPES = (np.float32, np.float64, np.int64, np.int32, np.uint8, np.bool_)


def formats_under_test():
    return [
        name
        for name in sorted(WIRE_FORMATS.names())
        if name != "shm" or shm_available()
    ]


@st.composite
def array_dicts(draw):
    """Random state dicts: 0-5 arrays, random dtype, 0-3 dims (0-d and
    zero-size shapes included — the transport edge cases)."""
    n = draw(st.integers(0, 5))
    out = {}
    for i in range(n):
        dtype = draw(st.sampled_from(DTYPES))
        shape = tuple(
            draw(st.lists(st.integers(0, 6), min_size=0, max_size=3))
        )
        seed = draw(st.integers(0, 2**31 - 1))
        rng = np.random.default_rng(seed)
        if dtype is np.bool_:
            value = rng.integers(0, 2, size=shape).astype(dtype)
        elif np.issubdtype(dtype, np.floating):
            value = rng.normal(size=shape).astype(dtype)
        else:
            value = rng.integers(-1000, 1000, size=shape).astype(dtype)
        out[f"array{i}"] = value
    return out


class TestWireRoundTripProperties:
    @settings(**SETTINGS)
    @given(array_dicts())
    def test_every_format_round_trips_bitwise(self, state):
        for name in formats_under_test():
            codec = create_wire_format(name)
            decoded = codec.decode(codec.encode(state, channel="p"), channel="p")
            assert set(decoded) == set(state), name
            for key, value in state.items():
                out = decoded[key]
                assert out.dtype == value.dtype, (name, key)
                assert out.shape == value.shape, (name, key)
                assert array_hash(out) == array_hash(value), (name, key)
        assert outstanding_shm_segments() == []

    @settings(**SETTINGS)
    @given(array_dicts(), array_dicts())
    def test_delta_round_trips_any_state_transition(self, first, second):
        """Whatever the first broadcast held, the second decodes to
        exactly the second state — added, removed, reshaped, and
        unchanged keys all included."""
        codec = create_wire_format("delta")
        codec.decode(codec.encode(first, channel="q"), channel="q")
        decoded = codec.decode(codec.encode(second, channel="q"), channel="q")
        assert set(decoded) == set(second)
        for key, value in second.items():
            assert decoded[key].dtype == value.dtype, key
            assert decoded[key].shape == value.shape, key
            assert array_hash(decoded[key]) == array_hash(value), key
        assert outstanding_shm_segments() == []
