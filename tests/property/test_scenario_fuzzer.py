"""Tests for the scenario fuzzer itself, plus the two jobs it performs
in tier-1: a small always-on fuzz smoke over the composition space and
the replay of the committed regression corpus as named cases.

The "harness bites" tests register deliberately broken wrappers and
check the invariant battery actually reports them — a fuzzer that can't
fail is worse than no fuzzer."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.data.scenarios import (
    StreamWrapper,
    create_scenario,
    derive_wrapper_rng,
)
from repro.data.stream import StreamSegment, TemporalStream
from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset
from repro.registry import SCENARIOS, register_scenario
from repro.testing import (
    FuzzReport,
    check_stream_invariants,
    fuzz_campaign,
    generate_composition,
    replay_case,
)
from repro.testing.scenario_fuzzer import check_label_contracts

CORPUS_PATH = Path(__file__).parent / "scenario_corpus.json"
CORPUS = json.loads(CORPUS_PATH.read_text(encoding="utf-8"))


@pytest.fixture
def dataset():
    return SyntheticImageDataset(
        SyntheticConfig("fuzzer-test", num_classes=8, image_size=8)
    )


class TestGenerator:
    def test_deterministic_per_seed(self):
        first = [generate_composition(np.random.default_rng(5)) for _ in range(20)]
        second = [generate_composition(np.random.default_rng(5)) for _ in range(20)]
        assert first == second

    def test_seeds_differ(self):
        a = [generate_composition(np.random.default_rng(0)) for _ in range(20)]
        b = [generate_composition(np.random.default_rng(1)) for _ in range(20)]
        assert a != b

    def test_generates_canonical_strings(self):
        from repro.data.scenarios import canonical_scenario

        rng = np.random.default_rng(3)
        for _ in range(50):
            scenario = generate_composition(rng)
            assert canonical_scenario(scenario) == scenario

    def test_depth_is_bounded_and_reached(self):
        rng = np.random.default_rng(7)
        depths = [
            generate_composition(rng, max_depth=3).count("(")
            for _ in range(100)
        ]
        # "(" count over-approximates wrapper depth (options-only parens),
        # but max_depth=3 means at most 4 nodes ... so <= 4 open parens
        assert max(depths) <= 4
        assert min(depths) == 0  # bare bases occur too


class TestFuzzSmoke:
    """The always-on tier-1 smoke: 20 compositions, stream invariants on
    all of them, every policy driven on a stride. Zero falsifications."""

    def test_smoke_campaign_is_clean(self):
        report = fuzz_campaign(
            num_compositions=20, seed=0, session_stride=5, sweep_stride=0
        )
        details = "\n".join(
            f"{f.scenario}: {f.invariant}: {f.detail}" for f in report.findings
        )
        assert report.ok, f"fuzzer falsified compositions:\n{details}"
        assert len(report.compositions) == 20
        assert report.sessions_run > 0

    def test_campaign_is_reproducible(self):
        a = fuzz_campaign(num_compositions=6, seed=42, session_stride=6)
        b = fuzz_campaign(num_compositions=6, seed=42, session_stride=6)
        assert a.compositions == b.compositions
        assert [f.corpus_entry() for f in a.findings] == [
            f.corpus_entry() for f in b.findings
        ]

    def test_report_serializes(self):
        report = fuzz_campaign(num_compositions=3, seed=1, session_stride=3)
        assert isinstance(report, FuzzReport)
        wire = json.loads(json.dumps(report.to_dict()))
        assert wire["seed"] == 1
        assert len(wire["compositions"]) == 3

    def test_campaign_validates_arguments(self):
        with pytest.raises(ValueError, match="num_compositions"):
            fuzz_campaign(num_compositions=0)
        with pytest.raises(ValueError, match="session_stride"):
            fuzz_campaign(num_compositions=1, session_stride=0)


class TestCorpusReplay:
    """Every committed corpus entry replays clean, forever."""

    def test_corpus_names_unique(self):
        names = [case["name"] for case in CORPUS["cases"]]
        assert len(names) == len(set(names))

    @pytest.mark.parametrize(
        "case",
        CORPUS["cases"],
        ids=[case["name"] for case in CORPUS["cases"]],
    )
    def test_corpus_case_replays_clean(self, case):
        findings = replay_case(case)
        details = "\n".join(
            f"{f.invariant}: {f.detail}" for f in findings
        )
        assert not findings, (
            f"regression corpus case {case['name']!r} "
            f"({case['scenario']}) falsified again:\n{details}"
        )


class _LabelMangler(StreamWrapper):
    """Claims bitwise labels, shifts them by one. The fuzzer must bite."""

    label_contract = "bitwise"

    def next_segment(self, segment_size):
        segment = self.base.next_segment(segment_size)
        labels = (segment.labels + 1) % 8
        return StreamSegment(segment.images, labels, segment.start_index)


class _SubsetCheater(StreamWrapper):
    """Claims subset pairs, fabricates images its base never produced."""

    label_contract = "subset"

    def next_segment(self, segment_size):
        segment = self.base.next_segment(segment_size)
        return StreamSegment(
            np.clip(segment.images + 0.25, 0.0, 1.0),
            segment.labels,
            segment.start_index,
        )


class _AmnesiacWrapper(StreamWrapper):
    """Honest labels, but state_dict forgets its own progress."""

    label_contract = "bitwise"

    def __init__(self, base, rng):
        super().__init__(base, rng)
        self._drawn = 0

    def next_segment(self, segment_size):
        segment = self.base.next_segment(segment_size)
        # wrapper-rng-driven transform whose draws are lost on resume
        noise = self.wrapper_rng.normal(0.0, 0.1, size=segment.images.shape)
        self._drawn += 1
        images = np.clip(segment.images + noise.astype(np.float32), 0.0, 1.0)
        return StreamSegment(images, segment.labels, segment.start_index)

    def state_dict(self):
        return {"base": self.base.state_dict()}  # wrapper_rng dropped

    def load_state_dict(self, state):
        self.base.load_state_dict(state["base"])


class TestHarnessBites:
    """Deliberately broken wrappers must be caught by the battery."""

    def test_label_contract_check_catches_bitwise_violation(self, dataset):
        rng = np.random.default_rng(0)
        stream = _LabelMangler(TemporalStream(dataset, 4, rng), rng)
        problems = check_label_contracts(stream)
        assert any("labels changed across a bitwise layer" in p for p in problems)

    def test_label_contract_check_catches_fabricated_pairs(self, dataset):
        rng = np.random.default_rng(0)
        stream = _SubsetCheater(TemporalStream(dataset, 4, rng), rng)
        problems = check_label_contracts(stream)
        assert any("never produced" in p for p in problems)

    def test_honest_wrappers_pass_contract_check(self, dataset):
        stream = create_scenario(
            "corrupted(bursty(imbalanced))",
            dataset=dataset,
            stc=4,
            rng=np.random.default_rng(0),
            total_samples=64,
        )
        assert check_label_contracts(stream) == []

    def test_stream_invariants_catch_broken_resume(self):
        @register_scenario("amnesiac-test", kind="wrapper")
        def amnesiac(dataset, stc, rng, base_source=None, wrapper_layer=0):
            base = base_source or TemporalStream(dataset, stc, rng)
            # a proper derived wrapper rng — which state_dict then loses
            return _AmnesiacWrapper(
                base, derive_wrapper_rng(rng, wrapper_layer, "amnesiac-test")
            )

        try:
            findings = check_stream_invariants("amnesiac-test(temporal)", seed=0)
        finally:
            SCENARIOS.unregister("amnesiac-test")
        assert any(f.invariant == "resume-bitwise" for f in findings)

    def test_findings_render_corpus_entries(self):
        rng = np.random.default_rng(0)

        @register_scenario("mangler-test", kind="wrapper")
        def mangler(dataset, stc, rng, base_source=None, wrapper_layer=0):
            base = base_source or TemporalStream(dataset, stc, rng)
            return _LabelMangler(base, rng)

        try:
            findings = check_stream_invariants("mangler-test(temporal)", seed=3)
        finally:
            SCENARIOS.unregister("mangler-test")
        assert findings
        entry = findings[0].corpus_entry()
        assert entry["scenario"] == "mangler-test(temporal)"
        assert entry["seed"] == 3
        assert "label-contract" in entry["reason"]
        json.dumps(entry)  # corpus entries must be JSON-serializable
