"""Property tests: numpy-vs-fused agreement on conv/bn/pool/losses.

The backend contract (DESIGN.md §8) is two-sided:

* forwards may differ only within float32 tolerance (the fused backend
  reassociates GEMMs and runs float32 scoring), and
* anything recorded on the autograd graph — training forwards and every
  backward — is bitwise identical across backends.

These properties drive both sides over randomized shapes and values.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.backend import get_backend, set_backend, use_backend
from repro.nn.layers import BatchNorm2d, Conv2d
from repro.nn.losses import NTXentLoss, nt_xent_loss
from repro.nn.tensor import Tensor, no_grad

SETTINGS = dict(max_examples=25, deadline=None)


@pytest.fixture(autouse=True)
def _restore_backend():
    before = get_backend()
    yield
    set_backend(before)


def _images(rng: np.random.Generator, n: int, c: int, hw: int) -> np.ndarray:
    return rng.normal(size=(n, c, hw, hw)).astype(np.float32)


class TestForwardParity:
    @settings(**SETTINGS)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(1, 4),
        c_in=st.integers(1, 4),
        c_out=st.integers(1, 5),
        stride=st.sampled_from([1, 2]),
        padding=st.sampled_from([0, 1]),
    )
    def test_conv2d_infer(self, seed, n, c_in, c_out, stride, padding):
        rng = np.random.default_rng(seed)
        x = Tensor(_images(rng, n, c_in, 6))
        conv = Conv2d(c_in, c_out, 3, stride=stride, padding=padding, rng=rng)
        with no_grad():
            with use_backend("numpy"):
                ref = conv(x).data
            with use_backend("fused"):
                out = conv(x).data
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-5)

    @settings(**SETTINGS)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(2, 5), c=st.integers(1, 4))
    def test_conv_bn_relu_eval(self, seed, n, c):
        rng = np.random.default_rng(seed)
        conv = Conv2d(c, 4, 3, stride=1, padding=1, rng=rng)
        bn = BatchNorm2d(4)
        bn.set_buffer("running_mean", rng.normal(size=4).astype(np.float32))
        bn.set_buffer(
            "running_var", rng.uniform(0.25, 4.0, size=4).astype(np.float32)
        )
        conv.eval(), bn.eval()
        x = Tensor(_images(rng, n, c, 6))
        with no_grad():
            with use_backend("numpy"):
                ref = F.conv_bn_relu(x, conv, bn).data
            with use_backend("fused"):
                out = F.conv_bn_relu(x, conv, bn).data
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    @settings(**SETTINGS)
    @given(seed=st.integers(0, 2**31 - 1), kernel=st.sampled_from([2, 3]))
    def test_pooling(self, seed, kernel):
        rng = np.random.default_rng(seed)
        x = Tensor(_images(rng, 3, 2, kernel * 3))
        with no_grad():
            for op in (F.max_pool2d, F.avg_pool2d):
                with use_backend("numpy"):
                    ref = op(x, kernel).data
                with use_backend("fused"):
                    out = op(x, kernel).data
                np.testing.assert_allclose(out, ref, rtol=1e-6, atol=1e-6)
            with use_backend("numpy"):
                ref = F.global_avg_pool2d(x).data
            with use_backend("fused"):
                out = F.global_avg_pool2d(x).data
            np.testing.assert_allclose(out, ref, rtol=1e-6, atol=1e-6)

    @settings(**SETTINGS)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(2, 8), d=st.integers(2, 16))
    def test_losses(self, seed, n, d):
        rng = np.random.default_rng(seed)
        z1 = Tensor(rng.normal(size=(n, d)).astype(np.float32))
        z2 = Tensor(rng.normal(size=(n, d)).astype(np.float32))
        with no_grad():
            with use_backend("numpy"):
                loss_ref = float(nt_xent_loss(z1, z2).data)
                per_ref = NTXentLoss().per_sample(z1, z2)
            with use_backend("fused"):
                loss_out = float(nt_xent_loss(z1, z2).data)
                per_out = NTXentLoss().per_sample(z1, z2)
        assert loss_out == pytest.approx(loss_ref, rel=1e-5, abs=1e-6)
        np.testing.assert_allclose(per_out, per_ref, rtol=1e-5, atol=1e-7)


class TestBackwardBitwiseParity:
    """Backward passes are *bitwise* equal: fusion is no_grad-only."""

    @settings(**SETTINGS)
    @given(seed=st.integers(0, 2**31 - 1), stride=st.sampled_from([1, 2]))
    def test_conv_bn_pool_chain(self, seed, stride):
        x_data = np.random.default_rng(seed).normal(size=(2, 3, 8, 8)).astype(
            np.float32
        )

        def run():
            rng = np.random.default_rng(0)
            conv = Conv2d(3, 4, 3, stride=stride, padding=1, rng=rng)
            bn = BatchNorm2d(4)
            x = Tensor(x_data.copy(), requires_grad=True)
            out = F.avg_pool2d(F.conv_bn_relu(x, conv, bn), 2)
            out.sum().backward()
            return out.data, x.grad, conv.weight.grad, bn.gamma.grad

        with use_backend("numpy"):
            ref = run()
        with use_backend("fused"):
            out = run()
        for r, o in zip(ref, out):
            np.testing.assert_array_equal(r, o)

    @settings(**SETTINGS)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(2, 6))
    def test_nt_xent_backward(self, seed, n):
        z_data = np.random.default_rng(seed).normal(size=(n, 8)).astype(np.float32)

        def run():
            z1 = Tensor(z_data.copy(), requires_grad=True)
            z2 = Tensor(z_data[::-1].copy(), requires_grad=True)
            nt_xent_loss(F.l2_normalize(z1), F.l2_normalize(z2)).backward()
            return z1.grad, z2.grad

        with use_backend("numpy"):
            ref = run()
        with use_backend("fused"):
            out = run()
        for r, o in zip(ref, out):
            np.testing.assert_array_equal(r, o)
