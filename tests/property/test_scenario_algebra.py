"""Algebra laws for scenario composition.

The wrapper-RNG derivation scheme (each layer seeds its own generator
from a *cloned* probe of the offered rng, never advancing it) is what
makes these laws hold; these tests pin them:

* **label order-independence** — wrapping a base with any stack of
  ``bitwise``-contract wrappers leaves the emitted label sequence
  exactly the base's.
* **identity** — a zero-severity ``corrupted`` wrapper is bitwise
  invisible: images and labels equal the bare base.
* **resume** — depth-3 nestings round-trip ``state_dict`` bitwise
  mid-stream, under both nn backends.
* **path errors** — a failing node deep in a composition names its
  position with the outermost-first path prefix.
"""

import json

import numpy as np
import pytest

from repro.data.scenarios import (
    CorruptedStream,
    StreamWrapper,
    canonical_scenario,
    create_scenario,
)
from repro.data.stream import TemporalStream
from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset
from repro.nn.backend import use_backend


@pytest.fixture
def dataset():
    return SyntheticImageDataset(
        SyntheticConfig("algebra-test", num_classes=8, image_size=8)
    )


def make(name, dataset, seed=0, stc=4, total=64, **options):
    return create_scenario(
        name,
        dataset=dataset,
        stc=stc,
        rng=np.random.default_rng(seed),
        total_samples=total,
        **options,
    )


def collect(source, segment_size=8, total=48):
    segments = list(source.segments(segment_size, total))
    return (
        np.concatenate([s.images for s in segments]),
        np.concatenate([s.labels for s in segments]),
    )


class TestLabelOrderIndependence:
    """A bitwise-contract wrapper must not perturb the base label
    process: the derived wrapper rng never advances the shared one."""

    @pytest.mark.parametrize(
        "base", ["temporal", "drift", "cyclic-drift", "bursty", "imbalanced"]
    )
    def test_corrupted_leaves_base_labels_untouched(self, dataset, base):
        _, bare = collect(make(base, dataset, seed=11))
        _, wrapped = collect(make(f"corrupted({base})", dataset, seed=11))
        np.testing.assert_array_equal(bare, wrapped)

    def test_stacked_corruption_still_bitwise_on_labels(self, dataset):
        _, bare = collect(make("imbalanced", dataset, seed=4))
        _, wrapped = collect(
            make("corrupted(corrupted(imbalanced))", dataset, seed=4)
        )
        np.testing.assert_array_equal(bare, wrapped)


class TestIdentityComposition:
    def test_zero_severity_corruption_is_bitwise_identity(self, dataset):
        bare_images, bare_labels = collect(make("imbalanced", dataset, seed=7))
        wrapped_images, wrapped_labels = collect(
            make(
                "corrupted(imbalanced,noise_std=0.0,blur=false)",
                dataset,
                seed=7,
            )
        )
        np.testing.assert_array_equal(bare_labels, wrapped_labels)
        np.testing.assert_array_equal(bare_images, wrapped_images)

    def test_burst_prob_zero_wrapper_is_bitwise_identity(self, dataset):
        # a never-stretching bursty wrapper emits exactly what its base
        # produces when pulled at stc granularity (the wrapper's probe
        # size), bitwise and in order
        bare_images, bare_labels = collect(
            make("drift", dataset, seed=2), segment_size=4
        )
        wrapped_images, wrapped_labels = collect(
            make("bursty(drift,burst_prob=0.0)", dataset, seed=2)
        )
        np.testing.assert_array_equal(bare_labels, wrapped_labels)
        np.testing.assert_array_equal(bare_images, wrapped_images)


class TestNestedLabelPassThrough:
    """Regression: CorruptedStream nested N layers deep still passes
    every label array through bitwise (the recording-shim check from the
    single-layer test, generalized)."""

    @pytest.mark.parametrize("layers", [1, 2, 3])
    def test_n_layer_corruption_passes_labels_through(self, dataset, layers):
        rng = np.random.default_rng(9)
        base = TemporalStream(dataset, 4, rng)
        emitted = []
        original = base.next_segment

        def recording(segment_size):
            segment = original(segment_size)
            emitted.append(segment.labels.copy())
            return segment

        base.next_segment = recording
        stream = base
        for _ in range(layers):
            stream = CorruptedStream(stream, rng, phase_length=8, noise_std=0.2)
        outputs = [stream.next_segment(8).labels for _ in range(6)]
        assert len(emitted) == 6
        for got, want in zip(outputs, emitted):
            np.testing.assert_array_equal(got, want)


DEPTH3 = [
    "corrupted(bursty(imbalanced))",
    "adversarial(corrupted(label-shift(temporal)))",
    "label-shift(bursty(cyclic-drift,burst_prob=0.75),shift=0.2)",
]


class TestDeepStateRoundTrip:
    @pytest.mark.parametrize("backend", ["numpy", "fused"])
    @pytest.mark.parametrize("scenario", DEPTH3)
    def test_depth3_state_dict_resumes_bitwise(self, dataset, backend, scenario):
        with use_backend(backend):
            source = make(scenario, dataset, seed=13)
            source.next_segment(13)
            state = json.loads(json.dumps(source.state_dict()))
            rng_state = source.rng.bit_generator.state
            after = source.next_segment(16)

            clone = make(scenario, dataset, seed=13)
            clone.load_state_dict(state)
            clone.rng.bit_generator.state = rng_state
            replay = clone.next_segment(16)
        np.testing.assert_array_equal(after.labels, replay.labels)
        np.testing.assert_array_equal(after.images, replay.images)
        assert after.start_index == replay.start_index

    @pytest.mark.parametrize("scenario", DEPTH3)
    def test_rng_property_reaches_innermost_base(self, dataset, scenario):
        source = make(scenario, dataset)
        node = source
        while isinstance(node, StreamWrapper):
            node = node.base
        assert source.rng is node.rng


class TestCompositionPathErrors:
    """A failing node names its position in the composition: the path is
    rendered outermost-first, eliding layers below the failure."""

    def test_failing_leaf_shows_full_path(self, dataset):
        with pytest.raises(
            ValueError,
            match=r"corrupted\(bursty\(imbalanced\)\): imbalance must be in \(0, 1\], got 7",
        ):
            make("corrupted(bursty(imbalanced(imbalance=7)))", dataset)

    def test_failing_wrapper_validation_keeps_prefix(self, dataset):
        with pytest.raises(
            ValueError,
            match=r"adversarial\(bursty\): lookahead must be >= 2",
        ):
            make("adversarial(bursty,lookahead=1)", dataset)

    def test_unknown_option_names_owning_node(self, dataset):
        with pytest.raises(
            TypeError,
            match=r"corrupted\(bursty\(imbalanced\)\): scenario 'bursty' does not accept option\(s\): nope",
        ):
            make("corrupted(bursty(imbalanced,nope=1))", dataset)

    def test_base_scenario_cannot_compose(self, dataset):
        with pytest.raises(
            ValueError,
            match=r"'temporal' is a base scenario, not a wrapper",
        ):
            make("corrupted(temporal(bursty))", dataset)

    def test_plain_name_calls_keep_bare_messages(self, dataset):
        # back-compat: kwargs passed programmatically (no composition
        # syntax) keep the original unprefixed message shape
        with pytest.raises(ValueError, match=r"^imbalance must be in"):
            make("imbalanced", dataset, imbalance=7)

    def test_canonical_scenario_rejects_bad_compositions_eagerly(self):
        with pytest.raises(ValueError, match="is a base scenario, not a wrapper"):
            canonical_scenario("corrupted(temporal(bursty))")
        # inside composition syntax the unknown-name error is re-wrapped
        # as a plain ValueError carrying the path prefix
        with pytest.raises(ValueError, match="unknown scenario"):
            canonical_scenario("corrupted(not-a-scenario)")
        # plain names keep the legacy UnknownComponentError (a KeyError)
        with pytest.raises(KeyError, match="did you mean"):
            canonical_scenario("cyclic-drif")

    def test_canonical_scenario_normalizes_aliases_and_spacing(self):
        assert (
            canonical_scenario(" noisy( bursty( long-tail ) , noise_std = 0.50 ) ")
            == "corrupted(bursty(imbalanced),noise_std=0.5)"
        )
