"""EmbeddingCache: LRU bounds, exact-float storage, invalidation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import EmbeddingCache

SETTINGS = dict(max_examples=50, deadline=None)


class TestBasics:
    def test_miss_then_hit(self):
        cache = EmbeddingCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1.25)
        assert cache.get("a") == 1.25
        assert cache.hits == 1 and cache.misses == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            EmbeddingCache(capacity=0)

    def test_exact_float64_roundtrip(self):
        # The bitwise contract: what went in comes back, bit for bit.
        cache = EmbeddingCache()
        value = float(np.float64(0.1) + np.float64(1e-17))
        cache.put("k", value)
        got = cache.get("k")
        assert np.float64(got).tobytes() == np.float64(value).tobytes()

    def test_contains_is_stats_free(self):
        cache = EmbeddingCache()
        cache.put("a", 1.0)
        assert "a" in cache and "b" not in cache
        assert cache.hits == 0 and cache.misses == 0

    def test_clear_counts_invalidations(self):
        cache = EmbeddingCache()
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.clear()
        assert len(cache) == 0
        assert cache.invalidations == 2

    def test_repr_and_stats(self):
        cache = EmbeddingCache(capacity=2)
        cache.put("a", 1.0)
        cache.get("a")
        cache.get("zzz")
        stats = cache.stats()
        assert stats["size"] == 1 and stats["capacity"] == 2
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert "EmbeddingCache" in repr(cache)


class TestLru:
    def test_eviction_order_is_least_recently_used(self):
        cache = EmbeddingCache(capacity=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        assert cache.get("a") == 1.0  # refresh a; b is now LRU
        cache.put("c", 3.0)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = EmbeddingCache(capacity=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.put("a", 1.5)  # overwrite refreshes, evicts b next
        cache.put("c", 3.0)
        assert "a" in cache and "b" not in cache
        assert cache.get("a") == 1.5

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=60),
        capacity=st.integers(min_value=1, max_value=5),
    )
    @settings(**SETTINGS)
    def test_size_never_exceeds_capacity(self, keys, capacity):
        cache = EmbeddingCache(capacity=capacity)
        for i, key in enumerate(keys):
            cache.put(key, float(i))
            assert len(cache) <= capacity


class TestInvalidation:
    def test_stale_versions_dropped_live_kept(self):
        cache = EmbeddingCache()
        cache.put(("d1", 1), 0.5)
        cache.put(("d2", 1), 0.6)
        cache.put(("d1", 2), 0.7)
        removed = cache.invalidate_stale(live_versions=[2])
        assert removed == 2
        assert ("d1", 2) in cache
        assert ("d1", 1) not in cache and ("d2", 1) not in cache
        assert cache.invalidations == 2

    def test_bare_digest_keys_always_dropped(self):
        # The in-library hook's keys carry no version: only meaningful
        # for one frozen model, so any publish drops them.
        cache = EmbeddingCache()
        cache.put("bare-digest", 0.5)
        cache.put(("d", 1), 0.6)
        assert cache.invalidate_stale(live_versions=[1]) == 1
        assert "bare-digest" not in cache and ("d", 1) in cache

    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 20), st.integers(1, 6)),
            min_size=0,
            max_size=40,
        ),
        live=st.sets(st.integers(1, 6), max_size=6),
    )
    @settings(**SETTINGS)
    def test_no_stale_entry_survives(self, entries, live):
        cache = EmbeddingCache(capacity=64)
        for digest, version in entries:
            cache.put((f"d{digest}", version), float(version))
        cache.invalidate_stale(live)
        for key in list(cache._entries):
            assert key[1] in live
