"""Serve admission policies: registry contract and hook behavior."""

import pytest

from repro.registry import SERVE_POLICIES, UnknownComponentError, serve_policy_names
from repro.serve.policies import BlockPolicy, DegradePolicy, ShedPolicy


class TestRegistry:
    def test_builtins_registered(self):
        assert serve_policy_names() == ["block", "degrade", "shed"]

    def test_aliases_resolve(self):
        assert SERVE_POLICIES.get("backpressure").name == "block"
        assert SERVE_POLICIES.get("reject").name == "shed"
        assert SERVE_POLICIES.get("fallback").name == "degrade"

    def test_unknown_name_suggests(self):
        with pytest.raises(UnknownComponentError, match="blok"):
            SERVE_POLICIES.get("blok")

    def test_factories_build_the_policy_classes(self):
        assert isinstance(SERVE_POLICIES.get("block").factory(), BlockPolicy)
        assert isinstance(SERVE_POLICIES.get("shed").factory(), ShedPolicy)
        assert isinstance(SERVE_POLICIES.get("degrade").factory(), DegradePolicy)


class _FakeServer:
    """Stands in for ScoringServer: the policies only call these two."""

    def __init__(self, cached=None):
        self.cached = cached
        self.calls = []

    def rejection_decision(self, request, status):
        self.calls.append(("reject", status))
        return ("rejection", status)

    def fallback_decision(self, request, *, fail_open):
        self.calls.append(("fallback", fail_open))
        return ("fallback", fail_open)


class TestHooks:
    def test_block_waits_on_full_and_expires(self):
        policy = BlockPolicy()
        server = _FakeServer()
        assert policy.on_full(object(), server) is None
        assert policy.on_expired(object(), server) == ("rejection", "expired")

    def test_shed_rejects_on_full(self):
        policy = ShedPolicy()
        server = _FakeServer()
        assert policy.on_full(object(), server) == ("rejection", "shed")
        assert policy.on_expired(object(), server) == ("rejection", "expired")

    def test_degrade_falls_back_both_ways(self):
        policy = DegradePolicy()
        server = _FakeServer()
        assert policy.on_full(object(), server) == ("fallback", True)
        assert policy.on_expired(object(), server) == ("fallback", True)

    def test_degrade_fail_closed(self):
        policy = DegradePolicy(fail_open=False)
        server = _FakeServer()
        assert policy.on_full(object(), server) == ("fallback", False)
