"""ScoringServer: micro-batching, caching, versioning, admission, TCP."""

import asyncio

import numpy as np
import pytest

from repro.experiments.config import StreamExperimentConfig
from repro.serve import (
    Decision,
    EmbeddingCache,
    InprocClient,
    ModelRegistry,
    ScoringServer,
    TcpClient,
    serve_tcp,
)
from repro.session import Session, build_components


def tiny_config(**overrides):
    base = dict(
        dataset="cifar10",
        image_size=8,
        stc=8,
        total_samples=32,
        buffer_size=8,
        encoder_widths=(8, 16),
        projection_dim=8,
        probe_train_per_class=2,
        probe_test_per_class=2,
        probe_epochs=2,
        seed=0,
    )
    base.update(overrides)
    return StreamExperimentConfig(**base)


@pytest.fixture(scope="module")
def published():
    """One trained tiny session published twice, plus serving components."""
    config = tiny_config()
    session = Session(config)
    session.run(stop_after=2)
    models = ModelRegistry()
    v1 = models.publish_session(session, source="first")
    session.run(stop_after=2)
    v2 = models.publish_session(session, source="second")
    return config, models, (v1, v2)


def make_server(published, **overrides):
    config, models, _ = published
    comp = build_components(config)
    kwargs = dict(max_batch=8, max_wait_ms=0.5, cache=EmbeddingCache())
    kwargs.update(overrides)
    return ScoringServer(comp.scorer, models, **kwargs)


def make_samples(n, seed=0, size=8):
    rng = np.random.default_rng(seed)
    return rng.random((n, 3, size, size), dtype=np.float32)


class TestValidation:
    def test_bad_knobs_rejected(self, published):
        with pytest.raises(ValueError, match="max_batch"):
            make_server(published, max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            make_server(published, max_wait_ms=-1)
        with pytest.raises(ValueError, match="queue_depth"):
            make_server(published, queue_depth=0)

    def test_unknown_policy_rejected_eagerly(self, published):
        with pytest.raises(ValueError, match="serve policy"):
            make_server(published, policy="nope")

    def test_submit_requires_running_server(self, published):
        server = make_server(published)
        with pytest.raises(RuntimeError, match="start"):
            asyncio.run(server.submit(make_samples(1)[0]))

    def test_submit_validates_shape_deadline_and_version(self, published):
        async def run():
            async with make_server(published) as server:
                with pytest.raises(ValueError, match="CHW"):
                    await server.submit(make_samples(2))  # NCHW, not CHW
                with pytest.raises(ValueError, match="deadline_ms"):
                    await server.submit(make_samples(1)[0], deadline_ms=0)
                with pytest.raises(KeyError, match="not retained"):
                    await server.submit(make_samples(1)[0], model_version=99)

        asyncio.run(run())


class TestBatchingAndDecisions:
    def test_concurrent_stream_is_micro_batched(self, published):
        samples = make_samples(12)

        async def run():
            async with make_server(published, max_batch=8) as server:
                decisions = await server.submit_many(samples, device_id="d0")
                return decisions, server.stats()

        decisions, stats = asyncio.run(run())
        assert len(decisions) == 12
        assert all(d.status == "ok" for d in decisions)
        assert all(d.score is not None and 0.0 <= d.score <= 2.0 for d in decisions)
        # submit-all-then-drain: 12 requests over max_batch=8 -> 8 + 4
        assert [d.batch_size for d in decisions] == [8] * 8 + [4] * 4
        assert stats["batches"] == 2
        assert stats["decisions"]["ok"] == 12

    def test_decision_matches_direct_scorer(self, published):
        config, models, (v1, v2) = published
        samples = make_samples(5)

        async def run():
            async with make_server(published, cache=None) as server:
                return await server.submit_many(samples, model_version=v2)

        decisions = asyncio.run(run())
        comp = build_components(config)
        state = models.get(v2)
        comp.encoder.load_state_dict(
            {k[len("encoder/"):]: v for k, v in state.items() if k.startswith("encoder/")}
        )
        comp.projector.load_state_dict(
            {k[len("projector/"):]: v for k, v in state.items() if k.startswith("projector/")}
        )
        expected = comp.scorer.score(samples)
        got = np.array([d.score for d in decisions])
        np.testing.assert_array_equal(got, expected)

    def test_selection_threshold(self, published):
        samples = make_samples(4)

        async def run(threshold):
            async with make_server(published, threshold=threshold) as server:
                return await server.submit_many(samples)

        all_selected = asyncio.run(run(0.0))
        none_selected = asyncio.run(run(2.5))
        assert all(d.selected for d in all_selected)
        assert not any(d.selected for d in none_selected)

    def test_in_batch_duplicates_forward_once(self, published):
        sample = make_samples(1)[0]

        async def run():
            async with make_server(published, cache=None) as server:
                decisions = await server.submit_many([sample] * 4)
                return decisions, server.stats()

        decisions, stats = asyncio.run(run())
        assert stats["forwarded"] == 1
        assert len({d.score for d in decisions}) == 1
        # In-batch dedup is not a cache hit: no value came from a cache
        # (there is none here) — the duplicates rode the one forward.
        assert [d.cache_hit for d in decisions] == [False, False, False, False]

    def test_fingerprint_excludes_timing(self):
        a = Decision("d", 1, 0.5, True, "ok", batch_size=4, latency_ms=1.0)
        b = Decision("d", 1, 0.5, True, "ok", batch_size=9, latency_ms=99.0)
        assert a.fingerprint() == b.fingerprint()

    def test_decision_dict_roundtrip(self):
        a = Decision("d", 2, None, False, "shed", latency_ms=0.25)
        assert Decision.from_dict(a.to_dict()) == a


class TestCacheSemantics:
    def test_hit_is_bitwise_identical_to_populating_miss(self, published):
        samples = make_samples(6)

        async def run():
            async with make_server(published) as server:
                cold = await server.submit_many(samples)
                warm = await server.submit_many(samples)
                return cold, warm, server.stats()

        cold, warm, stats = asyncio.run(run())
        assert all(not d.cache_hit for d in cold)
        assert all(d.cache_hit for d in warm)
        for c, w in zip(cold, warm):
            assert np.float64(c.score).tobytes() == np.float64(w.score).tobytes()
            assert c.selected == w.selected
        assert stats["cache"]["hits"] == 6

    def test_publish_invalidates_stale_entries(self, published):
        config, _, _ = published
        session = Session(config)
        session.run(stop_after=1)
        models = ModelRegistry(keep=1)
        models.publish_session(session)
        comp = build_components(config)
        cache = EmbeddingCache()
        server = ScoringServer(
            comp.scorer, models, max_batch=4, max_wait_ms=0.5, cache=cache
        )
        samples = make_samples(4)

        async def run():
            async with server:
                await server.submit_many(samples)
                assert len(cache) == 4
                # keep=1: the new publish prunes v1, every entry is stale
                models.publish_session(session)
                assert len(cache) == 0
                warm = await server.submit_many(samples)
                assert all(not d.cache_hit for d in warm)
                assert all(d.model_version == 2 for d in warm)

        asyncio.run(run())

    def test_versions_cache_independently(self, published):
        _, _, (v1, v2) = published
        sample = make_samples(1)[0]

        async def run():
            async with make_server(published) as server:
                d1 = await server.submit(sample, model_version=v1)
                d2 = await server.submit(sample, model_version=v2)
                h1 = await server.submit(sample, model_version=v1)
                return d1, d2, h1

        d1, d2, h1 = asyncio.run(run())
        assert not d1.cache_hit and not d2.cache_hit  # distinct keys
        assert h1.cache_hit and h1.score == d1.score


class TestVersioning:
    def test_pinned_device_scores_against_old_version(self, published):
        _, models, (v1, v2) = published
        sample = make_samples(1)[0]
        models.pin("canary", v1)
        try:

            async def run():
                async with make_server(published) as server:
                    canary = await server.submit(sample, device_id="canary")
                    fresh = await server.submit(sample, device_id="other")
                    return canary, fresh

            canary, fresh = asyncio.run(run())
            assert canary.model_version == v1
            assert fresh.model_version == v2
        finally:
            models.unpin("canary")

    def test_mixed_versions_in_one_batch(self, published):
        _, _, (v1, v2) = published
        samples = make_samples(6)

        async def run():
            async with make_server(published, max_batch=6, cache=None) as server:
                return await asyncio.gather(
                    *(
                        server.submit(samples[i], model_version=v1 if i % 2 else v2)
                        for i in range(6)
                    )
                )

        decisions = asyncio.run(run())
        assert [d.model_version for d in decisions] == [v2, v1, v2, v1, v2, v1]
        # both groups executed from the same drained batch
        assert all(d.batch_size == 3 for d in decisions)


class TestAdmission:
    def test_shed_when_queue_full(self, published):
        samples = make_samples(8)

        async def run():
            async with make_server(
                published, queue_depth=1, policy="shed"
            ) as server:
                return await server.submit_many(samples)

        decisions = asyncio.run(run())
        statuses = [d.status for d in decisions]
        assert statuses.count("ok") >= 1
        assert statuses.count("shed") >= 1
        assert all(
            d.score is None and not d.selected
            for d in decisions
            if d.status == "shed"
        )

    def test_block_never_sheds(self, published):
        samples = make_samples(8)

        async def run():
            async with make_server(
                published, queue_depth=1, policy="block"
            ) as server:
                return await server.submit_many(samples)

        decisions = asyncio.run(run())
        assert all(d.status == "ok" for d in decisions)

    def test_degrade_serves_cached_then_fails_open(self, published):
        samples = make_samples(3)

        async def run():
            async with make_server(
                published, queue_depth=1, policy="degrade"
            ) as server:
                # sequential submissions never find the queue full:
                # the cold pass populates the cache with real scores
                cold = [await server.submit(s) for s in samples]
                degraded = await server.submit_many(samples)
                return cold, degraded

        cold, degraded = asyncio.run(run())
        assert all(d.status == "ok" for d in cold)
        served = [d for d in degraded if d.status == "degraded"]
        assert served, "expected overload to trigger degraded decisions"
        by_hit = {d.cache_hit for d in served}
        for d in served:
            if d.cache_hit:  # cached fallback reproduces the real score
                match = next(c for c in cold if c.score == d.score)
                assert match.selected == d.selected
            else:  # fail-open
                assert d.score is None and d.selected
        assert by_hit <= {True, False}

    def test_expired_requests_are_rejected(self, published):
        sample = make_samples(1)[0]

        async def run():
            async with make_server(published, policy="block") as server:
                return await server.submit(sample, deadline_ms=1e-6)

        decision = asyncio.run(run())
        assert decision.status == "expired"
        assert decision.score is None and not decision.selected

    def test_stop_drains_admitted_requests(self, published):
        samples = make_samples(5)

        async def run():
            server = make_server(published)
            await server.start()
            futures = [
                asyncio.ensure_future(server.submit(s, device_id="d"))
                for s in samples
            ]
            await asyncio.sleep(0)  # let the submissions enqueue
            await server.stop()
            return await asyncio.gather(*futures)

        decisions = asyncio.run(run())
        assert len(decisions) == 5
        assert all(d.status == "ok" for d in decisions)


class TestRobustness:
    """The batcher must outlive bad requests, races, and scorer faults."""

    def test_mixed_shapes_in_one_batch_all_answered(self, published):
        # Two valid CHW samples with different shapes fused into one
        # micro-batch must not kill the batcher (sub-grouped by shape).
        small, big = make_samples(1, size=8)[0], make_samples(1, size=16)[0]

        async def run():
            async with make_server(published, max_batch=8, cache=None) as server:
                first = await asyncio.gather(
                    server.submit(small), server.submit(big)
                )
                later = await server.submit(small)  # batcher still alive
                return first, later

        (a, b), later = asyncio.run(run())
        assert a.status == b.status == later.status == "ok"
        assert later.score == a.score

    def test_scorer_fault_fails_request_not_server(self, published):
        samples = make_samples(2)

        async def run():
            # stats()["errors"] is process-cumulative by design (it
            # survives server re-creation), so measure the delta.
            before = make_server(published).stats()["errors"]
            async with make_server(published, cache=None) as server:
                original = server.scorer.score
                server.scorer.score = lambda batch: (_ for _ in ()).throw(
                    RuntimeError("boom")
                )
                try:
                    with pytest.raises(RuntimeError, match="boom"):
                        await server.submit(samples[0])
                finally:
                    server.scorer.score = original
                decision = await server.submit(samples[1])
                return decision, server.stats()["errors"] - before

        decision, new_errors = asyncio.run(run())
        assert decision.status == "ok"
        assert new_errors == 1

    def test_error_count_survives_server_recreation(self, published):
        # The old instance attribute silently reset to 0 whenever the
        # server (and its batcher) was rebuilt; the registry-backed
        # counter is process-wide, so a fresh server still reports the
        # errors its predecessors saw.
        sample = make_samples(1)[0]

        async def run():
            before = make_server(published).stats()["errors"]
            async with make_server(published, cache=None) as server:
                server.scorer.score = lambda batch: (_ for _ in ()).throw(
                    RuntimeError("boom")
                )
                with pytest.raises(RuntimeError, match="boom"):
                    await server.submit(sample)
            fresh = make_server(published)
            assert fresh.stats()["errors"] == before + 1
            # ... while per-instance counters start clean.
            assert fresh.metrics.value("serve.errors") is None

        asyncio.run(run())

    def test_pruned_version_re_resolves_instead_of_crashing(self, published):
        config, _, _ = published
        session = Session(config)
        session.run(stop_after=1)
        models = ModelRegistry(keep=1)
        models.publish_session(session)
        comp = build_components(config)
        server = ScoringServer(comp.scorer, models, max_batch=4, max_wait_ms=0.5)
        sample = make_samples(1)[0]

        async def run():
            async with server:
                # Admit at v1, then let a publish prune v1 before the
                # batch executes: the request re-resolves to current.
                request = server._admit(sample, "dev", None, None)
                models.publish_session(session)  # keep=1 prunes v1
                server._execute([request])
                return await request.future

        decision = asyncio.run(run())
        assert decision.status == "ok"
        assert decision.model_version == 2

    def test_requests_behind_stop_sentinel_fail_fast(self, published):
        from repro.serve.server import _SENTINEL

        sample = make_samples(1)[0]

        async def run():
            server = make_server(published)
            await server.start()
            request = server._admit(sample, "dev", None, None)
            server._queue.put_nowait(_SENTINEL)
            server._queue.put_nowait(request)  # raced in behind the sentinel
            await server._batcher
            with pytest.raises(RuntimeError, match="server stopped"):
                await request.future
            await server.stop()

        asyncio.run(run())

    def test_submit_after_stop_initiated_fails_fast(self, published):
        sample = make_samples(1)[0]

        async def run():
            server = make_server(published)
            await server.start()
            server._closed = True  # what stop() sets before the sentinel
            with pytest.raises(RuntimeError, match="stopping"):
                await server.submit(sample)
            server._closed = False
            await server.stop()

        asyncio.run(run())


class TestClientsAndTcp:
    def test_inproc_client_stream_and_sequential_agree(self, published):
        samples = make_samples(6)

        async def run():
            async with make_server(published) as server:
                client = InprocClient(server, "dev-0")
                streamed = await client.score_stream(samples)
                sequential = await client.score_sequential(samples)
                single = await client.score(samples[0])
                return streamed, sequential, single

        streamed, sequential, single = asyncio.run(run())
        for s, q in zip(streamed, sequential):
            assert s.score == q.score  # cache makes repeats bitwise equal
            assert q.cache_hit
        assert single.score == streamed[0].score

    def test_tcp_roundtrip_matches_inproc(self, published):
        samples = make_samples(4)

        async def run():
            async with make_server(published) as server:
                inproc = await server.submit_many(samples, device_id="d0")
                tcp = await serve_tcp(server)
                port = tcp.sockets[0].getsockname()[1]
                client = await TcpClient.connect("127.0.0.1", port)
                try:
                    assert await client.ping()
                    streamed = await client.score_stream(samples, device_id="d0")
                    one = await client.score(samples[0], device_id="d0")
                    stats = await client.stats()
                finally:
                    await client.close()
                    tcp.close()
                    await tcp.wait_closed()
                return inproc, streamed, one, stats

        inproc, streamed, one, stats = asyncio.run(run())
        for a, b in zip(inproc, streamed):
            assert b.cache_hit and a.score == b.score and a.selected == b.selected
        assert one.score == inproc[0].score
        assert stats["decisions"]["ok"] >= 9

    def test_tcp_errors_come_back_on_the_wire(self, published):
        async def run():
            async with make_server(published) as server:
                tcp = await serve_tcp(server)
                port = tcp.sockets[0].getsockname()[1]
                client = await TcpClient.connect("127.0.0.1", port)
                try:
                    with pytest.raises(RuntimeError, match="unknown op"):
                        await client._roundtrip({"op": "explode"})
                    with pytest.raises(RuntimeError, match="not retained"):
                        await client.score(
                            make_samples(1)[0], model_version=1234
                        )
                    assert await client.ping()  # connection survives errors
                finally:
                    await client.close()
                    tcp.close()
                    await tcp.wait_closed()

        asyncio.run(run())

    def test_tcp_non_object_line_closes_connection(self, published):
        # Valid JSON that is not an object is malformed framing: the
        # server closes the connection instead of wedging it open.
        async def run():
            async with make_server(published) as server:
                tcp = await serve_tcp(server)
                port = tcp.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                try:
                    writer.write(b"5\n")
                    await writer.drain()
                    assert await reader.readline() == b""  # EOF, not a hang
                finally:
                    writer.close()
                    tcp.close()
                    await tcp.wait_closed()

        asyncio.run(run())

    def test_tcp_bad_payload_answers_error_and_survives(self, published):
        # A dict message with a non-dict sample raises TypeError inside
        # the handler; it must come back as an error line, not kill the
        # responder or leak the connection.
        async def run():
            async with make_server(published) as server:
                tcp = await serve_tcp(server)
                port = tcp.sockets[0].getsockname()[1]
                client = await TcpClient.connect("127.0.0.1", port)
                try:
                    with pytest.raises(RuntimeError, match="server error"):
                        await client._roundtrip({"op": "score", "sample": 42})
                    assert await client.ping()  # connection survives
                finally:
                    await client.close()
                    tcp.close()
                    await tcp.wait_closed()

        asyncio.run(run())


class TestStats:
    def test_stats_shape(self, published):
        samples = make_samples(3)

        async def run():
            async with make_server(published) as server:
                await server.submit_many(samples)
                return server.stats()

        stats = asyncio.run(run())
        assert stats["policy"] == "block"
        assert stats["forwarded"] == 3
        assert stats["mean_batch"] > 0
        assert stats["queued"] == 0
        assert stats["loaded_version"] == stats["current_version"]
        assert set(stats["decisions"]) == {"ok", "shed", "degraded", "expired"}
        assert stats["cache"]["size"] == 3
