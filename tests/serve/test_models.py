"""ModelRegistry: publishing, pinning, pruning, fleet attachment."""

import numpy as np
import pytest

from repro.experiments.config import StreamExperimentConfig
from repro.fleet import DeviceSpec, FleetConfig, FleetCoordinator
from repro.serve import EmbeddingCache, ModelRegistry
from repro.session import Session


def model_state(value=0.0):
    return {
        "encoder/w": np.full((2, 2), value, dtype=np.float64),
        "projector/w": np.full((3,), value, dtype=np.float64),
    }


def tiny_config(**overrides):
    base = dict(
        dataset="cifar10",
        image_size=8,
        stc=8,
        total_samples=32,
        buffer_size=8,
        encoder_widths=(8, 16),
        projection_dim=8,
        probe_train_per_class=2,
        probe_test_per_class=2,
        probe_epochs=2,
        seed=0,
    )
    base.update(overrides)
    return StreamExperimentConfig(**base)


class TestPublish:
    def test_versions_are_monotonic_and_current_advances(self):
        models = ModelRegistry()
        assert models.current_version is None
        v1 = models.publish(model_state(1.0), source="a")
        v2 = models.publish(model_state(2.0), source="b")
        assert (v1, v2) == (1, 2)
        assert models.current_version == 2
        assert models.versions() == [1, 2]
        assert models.source(1) == "a" and models.source(2) == "b"
        assert len(models) == 2

    def test_empty_state_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ModelRegistry().publish({})

    def test_non_model_keys_rejected(self):
        with pytest.raises(ValueError, match="prefixes"):
            ModelRegistry().publish({"optimizer/m": np.zeros(2)})

    def test_keep_validated(self):
        with pytest.raises(ValueError, match="keep"):
            ModelRegistry(keep=0)

    def test_snapshots_are_defensive_copies(self):
        models = ModelRegistry()
        state = model_state(1.0)
        models.publish(state)
        state["encoder/w"][:] = 99.0  # publisher mutates afterwards
        served = models.get(1)
        assert float(served["encoder/w"][0, 0]) == 1.0
        served["encoder/w"][:] = -1.0  # consumer mutates the copy
        assert float(models.get(1)["encoder/w"][0, 0]) == 1.0

    def test_require_and_get_unknown_version(self):
        models = ModelRegistry()
        models.publish(model_state())
        with pytest.raises(KeyError, match="not retained"):
            models.require(7)
        with pytest.raises(KeyError):
            models.get(7)

    def test_on_publish_sees_post_prune_roster(self):
        models = ModelRegistry(keep=1)
        seen = []
        models.on_publish(lambda v, m: seen.append((v, m.versions())))
        models.publish(model_state(1.0))
        models.publish(model_state(2.0))
        assert seen == [(1, [1]), (2, [2])]


class TestPruning:
    def test_oldest_unprotected_versions_pruned(self):
        models = ModelRegistry(keep=2)
        for value in (1.0, 2.0, 3.0):
            models.publish(model_state(value))
        assert models.versions() == [2, 3]

    def test_pinned_versions_survive_pruning(self):
        models = ModelRegistry(keep=1)
        v1 = models.publish(model_state(1.0))
        models.pin("canary", v1)
        models.publish(model_state(2.0))
        models.publish(model_state(3.0))
        assert v1 in models.versions()
        assert models.resolve("canary") == v1


class TestPinning:
    def test_resolve_prefers_pin_then_current(self):
        models = ModelRegistry()
        v1 = models.publish(model_state(1.0))
        v2 = models.publish(model_state(2.0))
        models.pin("dev-a", v1)
        assert models.resolve("dev-a") == v1
        assert models.resolve("dev-b") == v2
        models.unpin("dev-a")
        assert models.resolve("dev-a") == v2
        models.unpin("dev-a")  # idempotent

    def test_pin_requires_retained_version(self):
        models = ModelRegistry()
        models.publish(model_state())
        with pytest.raises(KeyError, match="not retained"):
            models.pin("dev", 9)

    def test_resolve_before_any_publish_raises(self):
        with pytest.raises(RuntimeError, match="publish"):
            ModelRegistry().resolve("dev")

    def test_pins_returns_copy(self):
        models = ModelRegistry()
        v1 = models.publish(model_state())
        models.pin("dev", v1)
        pins = models.pins()
        pins["dev"] = 999
        assert models.pins() == {"dev": v1}


class TestSessionAndFleet:
    def test_publish_session_filters_to_model_slice(self):
        config = tiny_config()
        session = Session(config)
        session.run(stop_after=1)
        models = ModelRegistry()
        version = models.publish_session(session)
        state = models.get(version)
        assert state, "expected a non-empty model slice"
        assert all(
            key.startswith(("encoder/", "projector/")) for key in state
        )
        # the learner holds more than the model slice (optimizer etc.)
        learner = session.state_dict()["learner"]
        assert len(state) < len(learner)

    def test_attach_publishes_every_synchronizing_broadcast(self):
        config = tiny_config().with_(
            fleet=FleetConfig(
                devices=(DeviceSpec(), DeviceSpec()), rounds=2
            ),
            aggregator="fedavg",
        )
        coordinator = FleetCoordinator(config)
        models = ModelRegistry()
        cache = EmbeddingCache()
        cache.put("pre-broadcast-bare-key", 0.5)
        models.on_publish(
            lambda v, m: cache.invalidate_stale(m.versions())
        )
        models.attach(coordinator)
        coordinator.run()
        # two synchronizing rounds -> two published versions
        assert models.versions() == [1, 2]
        assert models.source(2) == "fleet-broadcast"
        assert models.current_version == 2
        # the broadcast-driven publish invalidated the stale entry
        assert "pre-broadcast-bare-key" not in cache
        # the published arrays match the coordinator's global model
        global_state = coordinator.global_model_state
        served = models.get(2)
        assert set(served) == set(global_state)
        for key in served:
            np.testing.assert_array_equal(served[key], global_state[key])

    def test_local_only_rounds_do_not_publish(self):
        config = tiny_config().with_(
            fleet=FleetConfig(
                devices=(DeviceSpec(), DeviceSpec()), rounds=1
            ),
            aggregator="local-only",
        )
        coordinator = FleetCoordinator(config)
        models = ModelRegistry()
        models.attach(coordinator)
        coordinator.run()
        assert models.versions() == []

    def test_attach_tracks_population_fleet_broadcasts(self):
        """attach() is duck-typed on on_broadcast, so a sampled /
        chaos-injected fleet publishes exactly one version per
        *synchronizing* round — dropped rounds publish nothing."""
        from repro.fleet.faults import DeviceFaults, FaultPlan

        config = tiny_config().with_(
            fleet=FleetConfig(
                devices=tuple(DeviceSpec() for _ in range(4)),
                rounds=3,
                participants=2,
                sampler="round-robin",
                fault_plan=FaultPlan(
                    seed=5, overrides=((1, DeviceFaults(dropout_prob=1.0)),)
                ),
            ),
            aggregator="fedavg-async",
        )
        coordinator = FleetCoordinator(config)
        models = ModelRegistry()
        models.attach(coordinator)
        coordinator.run()
        synchronized = sum(
            1 for stats in coordinator.result().rounds if stats.synchronized
        )
        assert len(models.versions()) == synchronized
        if synchronized:
            assert models.source(models.current_version) == "fleet-broadcast"
            served = models.get(models.current_version)
            global_state = coordinator.global_model_state
            assert set(served) == set(global_state)
            for key in served:
                np.testing.assert_array_equal(served[key], global_state[key])
