"""Tests for the stage-2 linear probe."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset
from repro.nn.resnet import resnet_micro
from repro.train.classifier import LinearProbe, evaluate_encoder


@pytest.fixture
def rng():
    return np.random.default_rng(71)


@pytest.fixture
def dataset():
    return SyntheticImageDataset(
        SyntheticConfig("probe", num_classes=3, image_size=8, shift_fraction=0.05)
    )


@pytest.fixture
def encoder():
    return resnet_micro(rng=np.random.default_rng(2))


class TestLinearProbe:
    def test_validation(self, encoder, rng):
        with pytest.raises(ValueError):
            LinearProbe(encoder, 1, rng)
        with pytest.raises(ValueError):
            LinearProbe(encoder, 3, rng, epochs=0)

    def test_encoder_without_feature_dim_rejected(self, rng):
        class Bare:
            pass

        with pytest.raises(ValueError):
            LinearProbe(Bare(), 3, rng)

    def test_extract_features_shape(self, encoder, dataset, rng):
        probe = LinearProbe(encoder, 3, rng, epochs=2)
        x, _ = dataset.make_split(4, rng)
        feats = probe.extract_features(x)
        assert feats.shape == (12, encoder.feature_dim)

    def test_fit_on_separable_features(self, encoder, rng):
        """The head must learn a linearly separable toy problem."""
        probe = LinearProbe(encoder, 3, rng, epochs=60, lr=1e-2)
        n = 90
        labels = np.arange(n) % 3
        feats = np.zeros((n, encoder.feature_dim), dtype=np.float32)
        feats[np.arange(n), labels] = 1.0
        feats += rng.normal(0, 0.05, feats.shape).astype(np.float32)
        train_acc = probe.fit(feats, labels)
        assert train_acc > 0.95

    def test_mismatched_inputs_raise(self, encoder, rng):
        probe = LinearProbe(encoder, 3, rng, epochs=1)
        with pytest.raises(ValueError):
            probe.fit(np.zeros((4, encoder.feature_dim)), np.zeros(3, dtype=int))

    def test_predict_shape(self, encoder, dataset, rng):
        probe = LinearProbe(encoder, 3, rng, epochs=1)
        x, y = dataset.make_split(2, rng)
        feats = probe.extract_features(x)
        probe.fit(feats, y)
        preds = probe.predict(x)
        assert preds.shape == y.shape
        assert set(np.unique(preds)).issubset({0, 1, 2})

    def test_probe_does_not_change_encoder(self, encoder, dataset, rng):
        before = encoder.stem_conv.weight.data.copy()
        probe = LinearProbe(encoder, 3, rng, epochs=3)
        x, y = dataset.make_split(4, rng)
        probe.fit(probe.extract_features(x), y)
        np.testing.assert_array_equal(encoder.stem_conv.weight.data, before)


class TestEvaluateEncoder:
    def test_full_protocol(self, encoder, dataset, rng):
        train_x, train_y = dataset.make_split(10, rng)
        test_x, test_y = dataset.make_split(5, rng)
        result = evaluate_encoder(
            encoder, train_x, train_y, test_x, test_y, 3, rng, epochs=10
        )
        assert 0.0 <= result.accuracy <= 1.0
        assert result.num_labeled == 30
        assert result.label_fraction == 1.0

    def test_label_fraction_respected(self, encoder, dataset, rng):
        train_x, train_y = dataset.make_split(20, rng)
        test_x, test_y = dataset.make_split(5, rng)
        result = evaluate_encoder(
            encoder,
            train_x,
            train_y,
            test_x,
            test_y,
            3,
            rng,
            label_fraction=0.1,
            epochs=5,
        )
        assert result.num_labeled == 6  # 2 per class

    def test_more_labels_help_on_trained_encoder(self, dataset, rng):
        """Sanity: accuracy with 100% labels >= accuracy with tiny labels
        (on average; deterministic given the seeds used here)."""
        encoder = resnet_micro(rng=np.random.default_rng(4))
        train_x, train_y = dataset.make_split(30, rng)
        test_x, test_y = dataset.make_split(10, rng)
        full = evaluate_encoder(
            encoder, train_x, train_y, test_x, test_y, 3,
            np.random.default_rng(0), label_fraction=1.0, epochs=20,
        )
        tiny = evaluate_encoder(
            encoder, train_x, train_y, test_x, test_y, 3,
            np.random.default_rng(0), label_fraction=0.05, epochs=20,
        )
        assert full.accuracy >= tiny.accuracy - 0.05
