"""Tests for the supervised baseline (§IV-B reference)."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset
from repro.nn.resnet import resnet_micro
from repro.train.supervised import SupervisedBaseline


@pytest.fixture
def rng():
    return np.random.default_rng(81)


@pytest.fixture
def dataset():
    return SyntheticImageDataset(
        SyntheticConfig(
            "sup", num_classes=3, image_size=8, shift_fraction=0.05, noise_std=0.03
        )
    )


class TestSupervisedBaseline:
    def test_validation(self, rng):
        encoder = resnet_micro(rng=rng)
        with pytest.raises(ValueError):
            SupervisedBaseline(encoder, 1, rng)

    def test_encoder_without_feature_dim(self, rng):
        class Bare:
            pass

        with pytest.raises(ValueError):
            SupervisedBaseline(Bare(), 3, rng)

    def test_fit_learns_easy_data(self, dataset, rng):
        encoder = resnet_micro(rng=np.random.default_rng(1))
        baseline = SupervisedBaseline(
            encoder, 3, rng, lr=2e-3, epochs=20, batch_size=16
        )
        x, y = dataset.make_split(16, rng)
        train_acc = baseline.fit(x, y)
        assert train_acc > 0.6  # far above 1/3 chance

    def test_fit_rejects_mismatch(self, dataset, rng):
        baseline = SupervisedBaseline(resnet_micro(rng=rng), 3, rng, epochs=1)
        x, _ = dataset.make_split(2, rng)
        with pytest.raises(ValueError):
            baseline.fit(x, np.zeros(3, dtype=int))

    def test_fit_rejects_too_few(self, dataset, rng):
        baseline = SupervisedBaseline(resnet_micro(rng=rng), 3, rng, epochs=1)
        x, y = dataset.make_split(1, rng)
        with pytest.raises(ValueError):
            baseline.fit(x[:1], y[:1])

    def test_predict_and_score(self, dataset, rng):
        encoder = resnet_micro(rng=np.random.default_rng(1))
        baseline = SupervisedBaseline(encoder, 3, rng, epochs=3, batch_size=8)
        x, y = dataset.make_split(6, rng)
        baseline.fit(x, y)
        preds = baseline.predict(x)
        assert preds.shape == y.shape
        assert 0.0 <= baseline.score(x, y) <= 1.0

    def test_generalizes_to_test_data(self, dataset, rng):
        encoder = resnet_micro(rng=np.random.default_rng(1))
        baseline = SupervisedBaseline(
            encoder, 3, rng, lr=2e-3, epochs=25, batch_size=16
        )
        train_x, train_y = dataset.make_split(20, rng)
        test_x, test_y = dataset.make_split(8, rng)
        baseline.fit(train_x, train_y)
        assert baseline.score(test_x, test_y) > 0.5
