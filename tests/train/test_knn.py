"""Tests for the kNN readout."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset
from repro.nn.resnet import resnet_micro
from repro.train.knn import KnnProbe, knn_predict


@pytest.fixture
def rng():
    return np.random.default_rng(15)


class TestKnnPredict:
    def test_memorizes_bank_with_k1(self, rng):
        feats = rng.normal(size=(20, 8))
        labels = rng.integers(0, 4, size=20)
        preds = knn_predict(feats, labels, feats, k=1)
        np.testing.assert_array_equal(preds, labels)

    def test_separable_clusters(self, rng):
        centers = np.eye(3) * 10
        bank = np.concatenate([c + rng.normal(0, 0.1, (10, 3)) for c in centers])
        bank_labels = np.repeat(np.arange(3), 10)
        queries = np.concatenate([c + rng.normal(0, 0.1, (5, 3)) for c in centers])
        query_labels = np.repeat(np.arange(3), 5)
        preds = knn_predict(bank, bank_labels, queries, k=5)
        np.testing.assert_array_equal(preds, query_labels)

    def test_k_clamped_to_bank_size(self, rng):
        feats = rng.normal(size=(3, 4))
        labels = np.array([0, 1, 2])
        preds = knn_predict(feats, labels, feats, k=100)
        assert preds.shape == (3,)

    def test_majority_vote(self):
        bank = np.array([[1.0, 0.0], [0.9, 0.1], [0.0, 1.0]])
        labels = np.array([0, 0, 1])
        query = np.array([[1.0, 0.05]])
        assert knn_predict(bank, labels, query, k=3)[0] == 0

    def test_cosine_not_euclidean(self):
        """Scaled copies of a bank vector are perfect matches."""
        bank = np.array([[1.0, 0.0], [0.0, 1.0]])
        labels = np.array([0, 1])
        query = np.array([[100.0, 1.0]])
        assert knn_predict(bank, labels, query, k=1)[0] == 0

    def test_validation(self, rng):
        feats = rng.normal(size=(4, 3))
        labels = np.zeros(4, dtype=int)
        with pytest.raises(ValueError):
            knn_predict(feats, labels[:2], feats, k=1)
        with pytest.raises(ValueError):
            knn_predict(feats, labels, feats, k=0)
        with pytest.raises(ValueError):
            knn_predict(np.zeros((0, 3)), np.zeros(0, dtype=int), feats, k=1)
        with pytest.raises(ValueError):
            knn_predict(rng.normal(size=(4,)), labels, feats, k=1)

    def test_num_classes_override(self, rng):
        feats = rng.normal(size=(4, 3))
        labels = np.array([0, 0, 1, 1])
        preds = knn_predict(feats, labels, feats, k=1, num_classes=10)
        assert preds.max() <= 1


class TestKnnProbe:
    def test_score_range_and_better_than_chance_on_easy_data(self, rng):
        dataset = SyntheticImageDataset(
            SyntheticConfig("knn", 3, 8, shift_fraction=0.05, noise_std=0.03)
        )
        encoder = resnet_micro(rng=np.random.default_rng(2))
        probe = KnnProbe(encoder, k=5)
        train_x, train_y = dataset.make_split(15, rng)
        test_x, test_y = dataset.make_split(6, rng)
        acc = probe.score(train_x, train_y, test_x, test_y, num_classes=3)
        assert 0.0 <= acc <= 1.0
        # even an untrained encoder preserves some pixel structure
        assert acc > 1.0 / 3 - 0.1

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError):
            KnnProbe(resnet_micro(rng=rng), k=0)
