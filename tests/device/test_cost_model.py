"""Tests for the on-device storage/energy/compute cost model."""

import numpy as np
import pytest

from repro.device.cost_model import (
    JETSON_CLASS,
    MCU_CLASS,
    DeviceProfile,
    iteration_compute_cost,
    storage_cost,
)
from repro.nn.projection import ProjectionHead
from repro.nn.resnet import resnet_micro


@pytest.fixture
def rng():
    return np.random.default_rng(9)


@pytest.fixture
def model(rng):
    encoder = resnet_micro(rng=rng)
    projector = ProjectionHead(encoder.feature_dim, out_dim=8, rng=rng)
    return encoder, projector


class TestDeviceProfile:
    def test_presets_valid(self):
        assert JETSON_CLASS.flash_capacity_bytes > MCU_CLASS.flash_capacity_bytes
        assert MCU_CLASS.flash_write_nj_per_byte > JETSON_CLASS.flash_write_nj_per_byte

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            DeviceProfile("bad", 0.0, 1.0, 1.0, 1.0, 1.0)


class TestStorageCost:
    def test_store_all_scales_with_stream(self):
        small = storage_cost(JETSON_CLASS, 1_000, (3, 12, 12), 32)
        large = storage_cost(JETSON_CLASS, 100_000, (3, 12, 12), 32)
        assert large.store_all_bytes == 100 * small.store_all_bytes
        assert large.buffer_bytes == small.buffer_bytes

    def test_bytes_per_sample(self):
        report = storage_cost(JETSON_CLASS, 10, (3, 12, 12), 4)
        assert report.bytes_per_sample == 3 * 12 * 12 * 4

    def test_buffer_needs_no_flash_energy(self):
        report = storage_cost(JETSON_CLASS, 10_000, (3, 12, 12), 32)
        assert report.buffer_energy_mj == 0.0
        assert report.store_all_energy_mj > 0.0

    def test_mcu_flash_exceeded_quickly(self):
        """The paper's 'prohibitive in practice' claim: an MCU's Flash
        cannot hold a day of streaming images."""
        report = storage_cost(MCU_CLASS, 100_000, (3, 12, 12), 32)
        assert report.exceeds_flash

    def test_jetson_holds_short_streams(self):
        report = storage_cost(JETSON_CLASS, 10_000, (3, 12, 12), 32)
        assert not report.exceeds_flash

    def test_storage_ratio(self):
        report = storage_cost(JETSON_CLASS, 6400, (3, 12, 12), 32)
        assert report.storage_ratio == pytest.approx(200.0)

    def test_epochs_increase_read_energy(self):
        once = storage_cost(JETSON_CLASS, 1000, (3, 12, 12), 32, epochs_over_store=1)
        many = storage_cost(JETSON_CLASS, 1000, (3, 12, 12), 32, epochs_over_store=100)
        assert many.store_all_energy_mj > once.store_all_energy_mj

    def test_validation(self):
        with pytest.raises(ValueError):
            storage_cost(JETSON_CLASS, 0, (3, 12, 12), 32)
        with pytest.raises(ValueError):
            storage_cost(JETSON_CLASS, 10, (3, 12, 12), 32, epochs_over_store=0)


class TestComputeCost:
    def test_eager_scoring_overhead_positive(self, model):
        encoder, projector = model
        report = iteration_compute_cost(JETSON_CLASS, encoder, projector, 8, 16)
        assert report.scoring_flops > 0
        assert report.relative_batch_flops > 1.0

    def test_lazy_reduces_scoring_flops(self, model):
        encoder, projector = model
        eager = iteration_compute_cost(JETSON_CLASS, encoder, projector, 8, 16)
        lazy = iteration_compute_cost(
            JETSON_CLASS, encoder, projector, 8, 16, lazy_interval=10
        )
        assert lazy.scoring_flops_lazy < eager.scoring_flops
        assert lazy.relative_batch_flops_lazy < eager.relative_batch_flops

    def test_lazy_limit_is_segment_only(self, model):
        """As T -> inf, scoring cost approaches segment-only scoring."""
        encoder, projector = model
        report = iteration_compute_cost(
            JETSON_CLASS, encoder, projector, 8, 16, lazy_interval=10_000
        )
        # segment has 16 samples of the 32-candidate pool
        assert report.scoring_flops_lazy == pytest.approx(
            report.scoring_flops / 2, rel=0.01
        )

    def test_table1_shape_monotone_in_interval(self, model):
        """Analytic Table I: relative cost decreases with the interval."""
        encoder, projector = model
        costs = [
            iteration_compute_cost(
                JETSON_CLASS, encoder, projector, 8, 16, lazy_interval=t
            ).relative_batch_flops_lazy
            for t in (4, 20, 50, 100, 200)
        ]
        assert all(a >= b for a, b in zip(costs, costs[1:]))

    def test_energy_proportional_to_flops(self, model):
        encoder, projector = model
        report = iteration_compute_cost(MCU_CLASS, encoder, projector, 8, 16)
        ratio = report.energy_scoring_mj / report.energy_train_mj
        assert ratio == pytest.approx(report.scoring_flops / report.train_flops)

    def test_validation(self, model):
        encoder, projector = model
        with pytest.raises(ValueError):
            iteration_compute_cost(JETSON_CLASS, encoder, projector, 8, 0)
        with pytest.raises(ValueError):
            iteration_compute_cost(
                JETSON_CLASS, encoder, projector, 8, 16, lazy_interval=0
            )
