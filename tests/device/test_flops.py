"""Tests for FLOP counting."""

import numpy as np
import pytest

from repro.device.flops import count_forward_flops, training_step_flops
from repro.nn.layers import BatchNorm2d, Conv2d, Linear, ReLU, Sequential
from repro.nn.projection import ProjectionHead
from repro.nn.resnet import BasicBlock, ResNetEncoder, resnet_micro


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestPrimitiveCounts:
    def test_linear_flops(self, rng):
        layer = Linear(10, 4, rng=rng)
        # 2 * 10 * 4 MAC-FLOPs + 4 bias adds
        assert count_forward_flops(layer, 0) == 84

    def test_linear_no_bias(self, rng):
        layer = Linear(10, 4, bias=False, rng=rng)
        assert count_forward_flops(layer, 0) == 80

    def test_conv_flops_hand_computed(self, rng):
        # 3x3 conv, 2->4 channels, 8x8 input, stride 1, pad 1 -> 8x8 out
        layer = Conv2d(2, 4, 3, stride=1, padding=1, rng=rng)
        expected = 2 * (4 * 8 * 8 * 2 * 3 * 3)
        assert count_forward_flops(layer, 8) == expected

    def test_conv_with_stride(self, rng):
        layer = Conv2d(1, 1, 3, stride=2, padding=1, rng=rng)
        # 8x8 -> 4x4 output
        expected = 2 * (1 * 4 * 4 * 1 * 3 * 3)
        assert count_forward_flops(layer, 8) == expected

    def test_conv_bias_counted(self, rng):
        no_bias = count_forward_flops(Conv2d(1, 2, 3, padding=1, rng=rng), 4)
        with_bias = count_forward_flops(
            Conv2d(1, 2, 3, padding=1, bias=True, rng=rng), 4
        )
        assert with_bias - no_bias == 2 * 4 * 4

    def test_batchnorm_flops(self):
        assert count_forward_flops(BatchNorm2d(4), 8) == 4 * 8 * 8

    def test_relu_free(self):
        assert count_forward_flops(ReLU(), 8) == 0.0

    def test_batch_scaling_linear(self, rng):
        layer = Conv2d(2, 4, 3, padding=1, rng=rng)
        one = count_forward_flops(layer, 8, batch_size=1)
        eight = count_forward_flops(layer, 8, batch_size=8)
        assert eight == 8 * one

    def test_unknown_module_raises(self):
        class Strange:
            pass

        with pytest.raises(TypeError):
            count_forward_flops(Strange(), 8)


class TestCompositeCounts:
    def test_projection_head(self, rng):
        head = ProjectionHead(16, hidden_dim=16, out_dim=8, rng=rng)
        expected = (2 * 16 * 16 + 16) + (2 * 16 * 8 + 8) + 16 + 3 * 8
        assert count_forward_flops(head, 0) == expected

    def test_basic_block_positive(self, rng):
        block = BasicBlock(8, 8, rng=rng)
        assert count_forward_flops(block, 8) > 0

    def test_projection_block_costs_more(self, rng):
        plain = count_forward_flops(BasicBlock(8, 8, stride=1, rng=rng), 8)
        projected = count_forward_flops(BasicBlock(8, 16, stride=1, rng=rng), 8)
        assert projected > plain

    def test_encoder_flops_scale_with_resolution(self, rng):
        enc = resnet_micro(rng=rng)
        small = count_forward_flops(enc, 8)
        large = count_forward_flops(enc, 16)
        # conv cost is quadratic in resolution
        assert 3.0 < large / small < 5.0

    def test_wider_encoder_costs_more(self, rng):
        narrow = ResNetEncoder(3, widths=(8, 16), blocks_per_stage=1, rng=rng)
        wide = ResNetEncoder(3, widths=(16, 32), blocks_per_stage=1, rng=rng)
        assert count_forward_flops(wide, 8) > count_forward_flops(narrow, 8)

    def test_sequential_sums_members(self, rng):
        seq = Sequential(BatchNorm2d(4), ReLU())
        assert count_forward_flops(seq, 8) == count_forward_flops(BatchNorm2d(4), 8)


class TestTrainingStep:
    def test_three_times_two_forwards(self, rng):
        enc = resnet_micro(rng=rng)
        head = ProjectionHead(enc.feature_dim, out_dim=8, rng=rng)
        forward = count_forward_flops(enc, 8, 4) + count_forward_flops(head, 8, 4)
        step = training_step_flops(enc, head, 8, 4)
        assert step == pytest.approx(6 * forward)
