"""Tests for bilinear resampling primitives."""

import numpy as np
import pytest

from repro.data.resize import bilinear_resize, crop_resize_batch, grid_sample_bilinear


@pytest.fixture
def rng():
    return np.random.default_rng(21)


class TestGridSample:
    def test_integer_grid_is_identity(self, rng):
        x = rng.normal(size=(2, 3, 5, 5)).astype(np.float32)
        ys = np.broadcast_to(np.arange(5.0)[:, None], (5, 5))
        xs = np.broadcast_to(np.arange(5.0)[None, :], (5, 5))
        ys = np.broadcast_to(ys[None], (2, 5, 5))
        xs = np.broadcast_to(xs[None], (2, 5, 5))
        out = grid_sample_bilinear(x, ys, xs)
        np.testing.assert_allclose(out, x, rtol=1e-6)

    def test_midpoint_interpolation(self):
        x = np.zeros((1, 1, 1, 2), dtype=np.float32)
        x[0, 0, 0] = [0.0, 1.0]
        ys = np.zeros((1, 1, 1))
        xs = np.full((1, 1, 1), 0.5)
        out = grid_sample_bilinear(x, ys, xs)
        assert out[0, 0, 0, 0] == pytest.approx(0.5)

    def test_out_of_range_clamped(self, rng):
        x = rng.normal(size=(1, 1, 4, 4)).astype(np.float32)
        ys = np.full((1, 1, 1), 10.0)
        xs = np.full((1, 1, 1), -5.0)
        out = grid_sample_bilinear(x, ys, xs)
        assert out[0, 0, 0, 0] == pytest.approx(x[0, 0, 3, 0])

    def test_bad_batch_raises(self, rng):
        with pytest.raises(ValueError):
            grid_sample_bilinear(rng.normal(size=(3, 4, 4)), np.zeros((1, 2, 2)), np.zeros((1, 2, 2)))

    def test_coord_shape_mismatch_raises(self, rng):
        x = rng.normal(size=(2, 1, 4, 4))
        with pytest.raises(ValueError):
            grid_sample_bilinear(x, np.zeros((1, 2, 2)), np.zeros((1, 2, 2)))


class TestBilinearResize:
    def test_same_size_identity(self, rng):
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        np.testing.assert_allclose(bilinear_resize(x, 6, 6), x, rtol=1e-5)

    def test_upsample_shape(self, rng):
        x = rng.normal(size=(1, 2, 4, 4)).astype(np.float32)
        assert bilinear_resize(x, 8, 10).shape == (1, 2, 8, 10)

    def test_constant_image_preserved(self):
        x = np.full((1, 1, 3, 3), 0.7, dtype=np.float32)
        out = bilinear_resize(x, 9, 9)
        np.testing.assert_allclose(out, 0.7, rtol=1e-6)

    def test_downsample_range_bounded(self, rng):
        x = rng.uniform(0, 1, size=(2, 3, 8, 8)).astype(np.float32)
        out = bilinear_resize(x, 4, 4)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_corners_preserved(self, rng):
        x = rng.normal(size=(1, 1, 4, 4)).astype(np.float32)
        out = bilinear_resize(x, 7, 7)
        assert out[0, 0, 0, 0] == pytest.approx(x[0, 0, 0, 0], rel=1e-5)
        assert out[0, 0, -1, -1] == pytest.approx(x[0, 0, -1, -1], rel=1e-5)


class TestCropResize:
    def test_full_crop_is_identity(self, rng):
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        n = 2
        out = crop_resize_batch(
            x,
            tops=np.zeros(n),
            lefts=np.zeros(n),
            heights=np.full(n, 6.0),
            widths=np.full(n, 6.0),
        )
        np.testing.assert_allclose(out, x, rtol=1e-5)

    def test_quadrant_crop(self):
        x = np.zeros((1, 1, 4, 4), dtype=np.float32)
        x[0, 0, :2, :2] = 1.0  # top-left quadrant all ones
        out = crop_resize_batch(
            x, np.zeros(1), np.zeros(1), np.full(1, 2.0), np.full(1, 2.0)
        )
        np.testing.assert_allclose(out, 1.0, rtol=1e-6)

    def test_wrong_param_shape_raises(self, rng):
        x = rng.normal(size=(2, 1, 4, 4))
        with pytest.raises(ValueError):
            crop_resize_batch(x, np.zeros(3), np.zeros(2), np.ones(2), np.ones(2))
