"""Tests for label-fraction splits."""

import numpy as np
import pytest

from repro.data.splits import labeled_subset, train_test_split


@pytest.fixture
def rng():
    return np.random.default_rng(8)


class TestLabeledSubset:
    def test_full_fraction_returns_all(self, rng):
        labels = np.array([0, 1, 2, 0, 1, 2])
        idx = labeled_subset(labels, 1.0, rng)
        assert sorted(idx) == list(range(6))

    def test_fraction_size(self, rng):
        labels = np.repeat(np.arange(10), 100)
        idx = labeled_subset(labels, 0.1, rng)
        assert len(idx) == 100

    def test_stratified(self, rng):
        labels = np.repeat(np.arange(5), 50)
        idx = labeled_subset(labels, 0.2, rng)
        picked = labels[idx]
        counts = np.bincount(picked, minlength=5)
        np.testing.assert_array_equal(counts, [10] * 5)

    def test_at_least_one_per_class(self, rng):
        labels = np.repeat(np.arange(20), 5)
        idx = labeled_subset(labels, 0.01, rng)
        assert set(labels[idx]) == set(range(20))

    def test_no_duplicates(self, rng):
        labels = np.repeat(np.arange(4), 25)
        idx = labeled_subset(labels, 0.5, rng)
        assert len(idx) == len(set(idx.tolist()))

    def test_invalid_fraction_raises(self, rng):
        labels = np.zeros(10, dtype=int)
        with pytest.raises(ValueError):
            labeled_subset(labels, 0.0, rng)
        with pytest.raises(ValueError):
            labeled_subset(labels, 1.5, rng)

    def test_empty_labels_raises(self, rng):
        with pytest.raises(ValueError):
            labeled_subset(np.array([]), 0.5, rng)

    def test_unbalanced_classes(self, rng):
        labels = np.concatenate([np.zeros(90, dtype=int), np.ones(10, dtype=int)])
        idx = labeled_subset(labels, 0.1, rng)
        picked = labels[idx]
        assert (picked == 0).sum() == 9
        assert (picked == 1).sum() == 1


class TestTrainTestSplit:
    def test_sizes(self, rng):
        images = np.zeros((100, 1, 2, 2))
        labels = np.arange(100) % 4
        x_tr, y_tr, x_te, y_te = train_test_split(images, labels, 0.25, rng)
        assert len(x_te) == 25
        assert len(x_tr) == 75
        assert len(y_tr) == 75 and len(y_te) == 25

    def test_disjoint_and_complete(self, rng):
        images = np.arange(20).reshape(20, 1, 1, 1).astype(float)
        labels = np.arange(20) % 2
        x_tr, _, x_te, _ = train_test_split(images, labels, 0.3, rng)
        values = np.concatenate([x_tr.reshape(-1), x_te.reshape(-1)])
        assert sorted(values.tolist()) == list(range(20))

    def test_mismatched_lengths_raise(self, rng):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 1, 1, 1)), np.zeros(4), 0.2, rng)

    def test_invalid_fraction_raises(self, rng):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 1, 1, 1)), np.zeros(5), 1.0, rng)


class TestDatasetRegistry:
    def test_all_names_present(self):
        from repro.data.datasets import dataset_names

        assert dataset_names() == [
            "cifar10",
            "cifar100",
            "imagenet100",
            "imagenet20",
            "imagenet50",
            "svhn",
        ]

    def test_class_counts_match_paper(self):
        from repro.data.datasets import get_dataset_config

        expected = {
            "cifar10": 10,
            "cifar100": 100,
            "svhn": 10,
            "imagenet20": 20,
            "imagenet50": 50,
            "imagenet100": 100,
        }
        for name, classes in expected.items():
            assert get_dataset_config(name).num_classes == classes

    def test_unknown_name_raises(self):
        from repro.data.datasets import get_dataset_config

        with pytest.raises(KeyError):
            get_dataset_config("mnist")

    def test_image_size_override(self):
        from repro.data.datasets import get_dataset_config, make_dataset

        cfg = get_dataset_config("cifar10", image_size=8)
        assert cfg.image_size == 8
        ds = make_dataset("cifar10", image_size=8)
        assert ds.image_shape == (3, 8, 8)

    def test_imagenet_higher_resolution_than_cifar(self):
        from repro.data.datasets import get_dataset_config

        assert (
            get_dataset_config("imagenet20").image_size
            > get_dataset_config("cifar10").image_size
        )
