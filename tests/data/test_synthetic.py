"""Tests for the procedural dataset generator."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset


@pytest.fixture
def config():
    return SyntheticConfig(name="test", num_classes=5, image_size=12)


@pytest.fixture
def dataset(config):
    return SyntheticImageDataset(config)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestConfigValidation:
    def test_too_few_classes(self):
        with pytest.raises(ValueError):
            SyntheticConfig(name="x", num_classes=1, image_size=12)

    def test_too_small_image(self):
        with pytest.raises(ValueError):
            SyntheticConfig(name="x", num_classes=2, image_size=2)

    def test_bad_shift_fraction(self):
        with pytest.raises(ValueError):
            SyntheticConfig(name="x", num_classes=2, image_size=8, shift_fraction=0.9)

    def test_negative_noise(self):
        with pytest.raises(ValueError):
            SyntheticConfig(name="x", num_classes=2, image_size=8, noise_std=-0.1)

    def test_with_image_size(self, config):
        resized = config.with_image_size(24)
        assert resized.image_size == 24
        assert resized.num_classes == config.num_classes


class TestPrototypes:
    def test_shape(self, dataset, config):
        assert dataset.prototypes.shape == (5, 3, 12, 12)

    def test_range(self, dataset):
        assert dataset.prototypes.min() >= 0.0
        assert dataset.prototypes.max() <= 1.0

    def test_classes_are_distinct(self, dataset):
        protos = dataset.prototypes.reshape(5, -1)
        for i in range(5):
            for j in range(i + 1, 5):
                dist = np.abs(protos[i] - protos[j]).mean()
                assert dist > 0.01, f"classes {i} and {j} are nearly identical"

    def test_channel_means_near_half(self, dataset):
        """Zero-centered prototypes remove the mean-color shortcut."""
        means = dataset.prototypes.mean(axis=(2, 3))
        np.testing.assert_allclose(means, 0.5, atol=0.06)

    def test_content_depends_only_on_name_and_seed(self):
        a = SyntheticImageDataset(SyntheticConfig("x", 3, 8, content_seed=7))
        b = SyntheticImageDataset(SyntheticConfig("x", 3, 8, content_seed=7))
        c = SyntheticImageDataset(SyntheticConfig("y", 3, 8, content_seed=7))
        np.testing.assert_array_equal(a.prototypes, b.prototypes)
        assert np.abs(a.prototypes - c.prototypes).max() > 0.01


class TestSampling:
    def test_shape_dtype_range(self, dataset, rng):
        imgs = dataset.sample(np.array([0, 1, 2, 0]), rng)
        assert imgs.shape == (4, 3, 12, 12)
        assert imgs.dtype == np.float32
        assert imgs.min() >= 0.0 and imgs.max() <= 1.0

    def test_out_of_range_class_raises(self, dataset, rng):
        with pytest.raises(ValueError):
            dataset.sample(np.array([5]), rng)

    def test_non_1d_raises(self, dataset, rng):
        with pytest.raises(ValueError):
            dataset.sample(np.zeros((2, 2), dtype=int), rng)

    def test_same_class_samples_differ(self, dataset, rng):
        imgs = dataset.sample(np.array([1, 1]), rng)
        assert np.abs(imgs[0] - imgs[1]).max() > 1e-3

    def test_samples_closer_to_own_prototype_without_shift(self, rng):
        """With geometric shift off, samples sit nearest their own prototype."""
        cfg = SyntheticConfig(
            "noshift", num_classes=5, image_size=12, shift_fraction=0.0
        )
        ds = SyntheticImageDataset(cfg)
        n = 40
        labels = np.repeat(np.arange(5), n // 5)
        imgs = ds.sample(labels, rng)
        correct = 0
        for img, label in zip(imgs, labels):
            dists = [np.abs(img - p).mean() for p in ds.prototypes]
            correct += int(np.argmin(dists) == label)
        assert correct / n > 0.9

    def test_shifted_samples_match_prototype_under_alignment(self, dataset, rng):
        """Shifted samples match their prototype under the best circular shift."""
        labels = np.repeat(np.arange(5), 4)
        imgs = dataset.sample(labels, rng)

        def aligned_dist(img, proto):
            best = np.inf
            for dy in range(proto.shape[1]):
                for dx in range(proto.shape[2]):
                    rolled = np.roll(proto, (dy, dx), axis=(1, 2))
                    best = min(best, float(np.abs(img - rolled).mean()))
            return best

        correct = 0
        for img, label in zip(imgs, labels):
            dists = [aligned_dist(img, p) for p in dataset.prototypes]
            correct += int(np.argmin(dists) == label)
        assert correct / len(labels) > 0.8

    def test_reproducible_given_rng(self, dataset):
        a = dataset.sample(np.array([0, 1]), np.random.default_rng(5))
        b = dataset.sample(np.array([0, 1]), np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_empty_request(self, dataset, rng):
        imgs = dataset.sample(np.array([], dtype=int), rng)
        assert imgs.shape == (0, 3, 12, 12)


class TestSplit:
    def test_balanced_split(self, dataset, rng):
        images, labels = dataset.make_split(4, rng)
        assert images.shape == (20, 3, 12, 12)
        counts = np.bincount(labels, minlength=5)
        np.testing.assert_array_equal(counts, [4] * 5)

    def test_shuffled_by_default(self, dataset, rng):
        _, labels = dataset.make_split(10, rng)
        assert not (labels == np.repeat(np.arange(5), 10)).all()

    def test_unshuffled_order(self, dataset, rng):
        _, labels = dataset.make_split(2, rng, shuffle=False)
        np.testing.assert_array_equal(labels, np.repeat(np.arange(5), 2))

    def test_invalid_count_raises(self, dataset, rng):
        with pytest.raises(ValueError):
            dataset.make_split(0, rng)

    def test_properties(self, dataset):
        assert dataset.num_classes == 5
        assert dataset.image_shape == (3, 12, 12)
