"""Tests for the environment-drift stream."""

import numpy as np
import pytest

from repro.data.drift import DriftStream, growing_phases
from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset


@pytest.fixture
def dataset():
    return SyntheticImageDataset(SyntheticConfig("drift", num_classes=8, image_size=8))


@pytest.fixture
def rng():
    return np.random.default_rng(19)


class TestGrowingPhases:
    def test_cumulative_unlock(self):
        phases = growing_phases(8, 4)
        assert phases == [[0, 1], [0, 1, 2, 3], [0, 1, 2, 3, 4, 5], list(range(8))]

    def test_single_phase_all_classes(self):
        assert growing_phases(5, 1) == [list(range(5))]

    def test_validation(self):
        with pytest.raises(ValueError):
            growing_phases(3, 0)
        with pytest.raises(ValueError):
            growing_phases(2, 5)


class TestDriftStream:
    def test_validation(self, dataset, rng):
        with pytest.raises(ValueError):
            DriftStream(dataset, 0, rng, [[0]], 10)
        with pytest.raises(ValueError):
            DriftStream(dataset, 2, rng, [], 10)
        with pytest.raises(ValueError):
            DriftStream(dataset, 2, rng, [[]], 10)
        with pytest.raises(ValueError):
            DriftStream(dataset, 2, rng, [[99]], 10)
        with pytest.raises(ValueError):
            DriftStream(dataset, 2, rng, [[0]], 0)

    def test_phase_respected(self, dataset, rng):
        stream = DriftStream(
            dataset, stc=3, rng=rng, phases=[[0, 1], [2, 3]], phase_length=30
        )
        first = stream.next_labels(30)
        second = stream.next_labels(30)
        assert set(first.tolist()) <= {0, 1}
        assert set(second.tolist()) <= {2, 3}

    def test_last_phase_persists(self, dataset, rng):
        stream = DriftStream(
            dataset, stc=2, rng=rng, phases=[[0], [1]], phase_length=10
        )
        stream.next_labels(50)
        tail = stream.next_labels(20)
        assert set(tail.tolist()) == {1}

    def test_runs_within_phase(self, dataset, rng):
        stream = DriftStream(
            dataset, stc=5, rng=rng, phases=[list(range(8))], phase_length=10_000
        )
        labels = stream.next_labels(200)
        change_points = np.flatnonzero(labels[1:] != labels[:-1]) + 1
        runs = np.diff(np.concatenate([[0], change_points, [200]]))
        assert (runs[:-1] == 5).all()

    def test_run_truncated_at_phase_boundary(self, dataset, rng):
        """A run cannot leak a class into a phase that excludes it."""
        stream = DriftStream(
            dataset, stc=100, rng=rng, phases=[[0], [1]], phase_length=10
        )
        labels = stream.next_labels(20)
        assert (labels[:10] == 0).all()
        assert (labels[10:] == 1).all()

    def test_phase_index_and_active_classes(self, dataset, rng):
        stream = DriftStream(
            dataset, stc=2, rng=rng, phases=[[0, 1], [2]], phase_length=16
        )
        assert stream.phase_index(0) == 0
        assert stream.phase_index(16) == 1
        assert stream.phase_index(1000) == 1
        assert stream.active_classes(0) == [0, 1]
        assert stream.active_classes(20) == [2]

    def test_segments_protocol(self, dataset, rng):
        stream = DriftStream(
            dataset, stc=2, rng=rng, phases=[[0, 1]], phase_length=100
        )
        segments = list(stream.segments(8, 20))
        assert [len(s) for s in segments] == [8, 8, 4]
        assert stream.position == 20
        assert segments[0].images.shape == (8, 3, 8, 8)

    def test_reproducible(self, dataset):
        def labels(seed):
            stream = DriftStream(
                dataset,
                stc=3,
                rng=np.random.default_rng(seed),
                phases=growing_phases(8, 2),
                phase_length=40,
            )
            return stream.next_labels(80)

        np.testing.assert_array_equal(labels(5), labels(5))

    def test_single_class_phase_no_repeat_constraint(self, dataset, rng):
        stream = DriftStream(dataset, stc=2, rng=rng, phases=[[3]], phase_length=50)
        labels = stream.next_labels(10)
        assert (labels == 3).all()

    def test_works_with_framework(self, dataset, rng):
        """DriftStream satisfies the same protocol TemporalStream does."""
        from repro.core import ContrastScorer, ContrastScoringPolicy
        from repro.core.framework import OnDeviceContrastiveLearner
        from repro.nn.projection import ProjectionHead
        from repro.nn.resnet import resnet_micro

        encoder = resnet_micro(rng=np.random.default_rng(1))
        projector = ProjectionHead(encoder.feature_dim, out_dim=8, rng=rng)
        policy = ContrastScoringPolicy(ContrastScorer(encoder, projector), 4)
        learner = OnDeviceContrastiveLearner(
            encoder, projector, policy, 4, rng, lr=1e-3
        )
        stream = DriftStream(
            dataset, stc=4, rng=rng, phases=growing_phases(8, 2), phase_length=16
        )
        stats = learner.fit(stream.segments(4, 32))
        assert len(stats) == 8
