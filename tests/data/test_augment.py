"""Tests for the augmentation pipelines."""

import numpy as np
import pytest

from repro.data.augment import (
    SimCLRAugment,
    color_jitter,
    horizontal_flip,
    random_crop_resize,
    random_grayscale,
    random_horizontal_flip,
)


@pytest.fixture
def rng():
    return np.random.default_rng(31)


@pytest.fixture
def batch(rng):
    return rng.uniform(0, 1, size=(6, 3, 8, 8)).astype(np.float32)


class TestHorizontalFlip:
    def test_flip_reverses_columns(self, batch):
        out = horizontal_flip(batch)
        np.testing.assert_array_equal(out, batch[:, :, :, ::-1])

    def test_involution(self, batch):
        np.testing.assert_array_equal(horizontal_flip(horizontal_flip(batch)), batch)

    def test_deterministic(self, batch):
        np.testing.assert_array_equal(horizontal_flip(batch), horizontal_flip(batch))

    def test_contiguous_output(self, batch):
        assert horizontal_flip(batch).flags["C_CONTIGUOUS"]

    def test_rejects_non_batch(self, rng):
        with pytest.raises(ValueError):
            horizontal_flip(rng.uniform(size=(3, 8, 8)))


class TestRandomFlip:
    def test_p_zero_identity(self, batch, rng):
        np.testing.assert_array_equal(random_horizontal_flip(batch, rng, 0.0), batch)

    def test_p_one_flips_all(self, batch, rng):
        out = random_horizontal_flip(batch, rng, 1.0)
        np.testing.assert_array_equal(out, batch[:, :, :, ::-1])

    def test_does_not_mutate_input(self, batch, rng):
        original = batch.copy()
        random_horizontal_flip(batch, rng, 1.0)
        np.testing.assert_array_equal(batch, original)


class TestRandomCropResize:
    def test_shape_preserved(self, batch, rng):
        out = random_crop_resize(batch, rng, 0.5)
        assert out.shape == batch.shape

    def test_scale_one_near_identity(self, batch, rng):
        out = random_crop_resize(batch, rng, 1.0, 1.0)
        np.testing.assert_allclose(out, batch, atol=1e-5)

    def test_invalid_scale_raises(self, batch, rng):
        with pytest.raises(ValueError):
            random_crop_resize(batch, rng, 0.0)
        with pytest.raises(ValueError):
            random_crop_resize(batch, rng, 0.9, 0.5)

    def test_output_within_range(self, batch, rng):
        out = random_crop_resize(batch, rng, 0.3)
        assert out.min() >= 0.0 - 1e-6 and out.max() <= 1.0 + 1e-6

    def test_crops_differ_across_samples(self, rng):
        img = rng.uniform(0, 1, size=(1, 3, 8, 8)).astype(np.float32)
        batch = np.repeat(img, 8, axis=0)
        out = random_crop_resize(batch, rng, 0.4, 0.6)
        diffs = [np.abs(out[i] - out[0]).max() for i in range(1, 8)]
        assert max(diffs) > 1e-3


class TestColorJitter:
    def test_shape_and_range(self, batch, rng):
        out = color_jitter(batch, rng, 0.5)
        assert out.shape == batch.shape
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_zero_strength_identity(self, batch, rng):
        np.testing.assert_allclose(color_jitter(batch, rng, 0.0), batch, atol=1e-6)

    def test_negative_strength_raises(self, batch, rng):
        with pytest.raises(ValueError):
            color_jitter(batch, rng, -0.1)

    def test_changes_pixels(self, batch, rng):
        out = color_jitter(batch, rng, 0.5)
        assert np.abs(out - batch).max() > 0.01


class TestRandomGrayscale:
    def test_p_one_grays_everything(self, batch, rng):
        out = random_grayscale(batch, rng, 1.0)
        channel_spread = np.abs(out - out.mean(axis=1, keepdims=True)).max()
        assert channel_spread < 1e-6

    def test_p_zero_returns_input(self, batch, rng):
        assert random_grayscale(batch, rng, 0.0) is batch

    def test_does_not_mutate_input(self, batch, rng):
        original = batch.copy()
        random_grayscale(batch, rng, 1.0)
        np.testing.assert_array_equal(batch, original)


class TestSimCLRAugment:
    def test_two_views_differ(self, batch, rng):
        augment = SimCLRAugment()
        v1, v2 = augment(batch, rng)
        assert v1.shape == batch.shape
        assert v2.shape == batch.shape
        assert np.abs(v1 - v2).max() > 1e-3

    def test_views_are_stochastic_across_calls(self, batch):
        augment = SimCLRAugment()
        v1a, _ = augment(batch, np.random.default_rng(1))
        v1b, _ = augment(batch, np.random.default_rng(2))
        assert np.abs(v1a - v1b).max() > 1e-3

    def test_reproducible_with_same_rng_state(self, batch):
        augment = SimCLRAugment()
        a = augment(batch, np.random.default_rng(4))
        b = augment(batch, np.random.default_rng(4))
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_output_range(self, batch, rng):
        v1, v2 = SimCLRAugment()(batch, rng)
        for v in (v1, v2):
            assert v.min() >= -1e-6 and v.max() <= 1.0 + 1e-6
