"""Unit tests for the pure-syntax composition layer
(:mod:`repro.data.composition`): parsing, canonical formatting, and the
syntax-error contract.  Registry semantics (is this name a wrapper, do
the options exist) live one layer up and are tested with the algebra."""

import pytest

from repro.data.composition import (
    CompositionSyntaxError,
    ScenarioExpr,
    format_scenario,
    is_composition,
    parse_scenario,
)


class TestParse:
    def test_plain_name(self):
        expr = parse_scenario("temporal")
        assert expr == ScenarioExpr("temporal")
        assert expr.child is None
        assert expr.options == ()
        assert expr.depth == 0

    def test_nested_with_options(self):
        expr = parse_scenario("corrupted(bursty(imbalanced(imbalance=0.3)),noise_std=0.1)")
        assert expr.name == "corrupted"
        assert expr.option_dict == {"noise_std": 0.1}
        assert expr.child.name == "bursty"
        assert expr.child.child.option_dict == {"imbalance": 0.3}
        assert expr.depth == 2
        assert [node.name for node in expr.walk()] == [
            "corrupted",
            "bursty",
            "imbalanced",
        ]

    def test_options_after_child_belong_to_the_enclosing_node(self):
        # kwargs following a child expr configure the *wrapper*, not the
        # child — per-node options go inside that node's own parentheses
        expr = parse_scenario("bursty(imbalanced,burst_prob=0.5)")
        assert expr.option_dict == {"burst_prob": 0.5}
        assert expr.child.options == ()

    def test_options_only_parens(self):
        expr = parse_scenario("imbalanced(imbalance=0.05)")
        assert expr.child is None
        assert expr.option_dict == {"imbalance": 0.05}

    def test_value_literals(self):
        expr = parse_scenario(
            "corrupted(temporal,blur=false,levels=3,noise_std=0.25,tag=none,flag=true,mode=fast)"
        )
        assert expr.option_dict == {
            "blur": False,
            "levels": 3,
            "noise_std": 0.25,
            "tag": None,
            "flag": True,
            "mode": "fast",
        }
        assert isinstance(expr.option_dict["levels"], int)

    def test_whitespace_tolerated(self):
        spaced = parse_scenario(" corrupted( bursty , noise_std = 0.1 ) ")
        assert spaced == parse_scenario("corrupted(bursty,noise_std=0.1)")

    def test_kebab_names(self):
        expr = parse_scenario("label-shift(cyclic-drift)")
        assert expr.name == "label-shift"
        assert expr.child.name == "cyclic-drift"


class TestFormat:
    @pytest.mark.parametrize(
        "text",
        [
            "temporal",
            "corrupted(bursty(imbalanced))",
            "label-shift(adversarial(cyclic-drift,lookahead=2),shift=1.0)",
            "corrupted(temporal,noise_std=0.1,blur=false)",
        ],
    )
    def test_round_trip_fixed_point(self, text):
        assert format_scenario(parse_scenario(text)) == text
        # formatting is a fixed point: parse(format(e)) == e
        expr = parse_scenario(text)
        assert parse_scenario(format_scenario(expr)) == expr

    def test_canonical_spacing_and_literals(self):
        expr = parse_scenario(" corrupted( temporal , blur = false , noise_std = 0.50 ) ")
        assert format_scenario(expr) == "corrupted(temporal,blur=false,noise_std=0.5)"

    def test_str_is_format(self):
        expr = parse_scenario("bursty(drift,burst_prob=0.25)")
        assert str(expr) == format_scenario(expr)


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "text, fragment",
        [
            ("", "non-empty string"),
            ("corrupted(bursty(", "expected a scenario name"),
            ("corrupted(bursty))", "unexpected trailing input"),
            ("corrupted()", "empty parentheses"),
            ("corrupted(temporal,noise_std=0.1,noise_std=0.2)", "duplicate option"),
            ("Corrupted(temporal)", "expected a scenario name"),
            ("corrupted(temporal,=3)", "expected"),
            ("corrupted(temporal,noise_std=)", "expected a value"),
        ],
    )
    def test_malformed_rejected(self, text, fragment):
        with pytest.raises(CompositionSyntaxError, match=fragment):
            parse_scenario(text)

    def test_error_is_value_error_with_position(self):
        with pytest.raises(ValueError) as excinfo:
            parse_scenario("corrupted(bursty(")
        message = str(excinfo.value)
        assert "invalid scenario composition 'corrupted(bursty('" in message
        assert "at position 17" in message


class TestIsComposition:
    @pytest.mark.parametrize("text", ["temporal", "cyclic-drift", " bursty "])
    def test_plain_names(self, text):
        assert not is_composition(text)

    @pytest.mark.parametrize(
        "text",
        ["corrupted(bursty)", "imbalanced(imbalance=0.1)", "a,b", "x=1"],
    )
    def test_composition_syntax(self, text):
        assert is_composition(text)
