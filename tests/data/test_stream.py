"""Tests for the temporally correlated stream and STC measurement."""

import numpy as np
import pytest

from repro.data.stream import StreamSegment, TemporalStream, measure_stc
from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset


@pytest.fixture
def dataset():
    return SyntheticImageDataset(SyntheticConfig("test", num_classes=6, image_size=8))


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestTemporalStream:
    def test_invalid_stc_raises(self, dataset, rng):
        with pytest.raises(ValueError):
            TemporalStream(dataset, stc=0, rng=rng)

    def test_runs_have_exact_length(self, dataset, rng):
        stream = TemporalStream(dataset, stc=5, rng=rng)
        labels = stream.next_labels(200)
        # every run except possibly the last has length exactly 5
        change_points = np.flatnonzero(labels[1:] != labels[:-1]) + 1
        runs = np.diff(np.concatenate([[0], change_points, [200]]))
        assert (runs[:-1] == 5).all()

    def test_consecutive_runs_differ_in_class(self, dataset, rng):
        stream = TemporalStream(dataset, stc=4, rng=rng)
        labels = stream.next_labels(400)
        change_points = np.flatnonzero(labels[1:] != labels[:-1]) + 1
        boundaries = np.concatenate([[0], change_points])
        run_classes = labels[boundaries]
        assert (run_classes[1:] != run_classes[:-1]).all()

    def test_stc_one_is_iid_like(self, dataset, rng):
        stream = TemporalStream(dataset, stc=1, rng=rng)
        labels = stream.next_labels(3000)
        counts = np.bincount(labels, minlength=6)
        # roughly uniform across classes
        assert counts.min() > 300

    def test_runs_span_segment_boundaries(self, dataset, rng):
        stream = TemporalStream(dataset, stc=10, rng=rng)
        first = stream.next_labels(15)
        second = stream.next_labels(15)
        combined = np.concatenate([first, second])
        assert measure_stc(combined) == pytest.approx(10.0, rel=0.01)

    def test_all_classes_eventually_seen(self, dataset, rng):
        stream = TemporalStream(dataset, stc=8, rng=rng)
        labels = stream.next_labels(2000)
        assert set(np.unique(labels)) == set(range(6))

    def test_next_segment_contents(self, dataset, rng):
        stream = TemporalStream(dataset, stc=4, rng=rng)
        seg = stream.next_segment(12)
        assert isinstance(seg, StreamSegment)
        assert seg.images.shape == (12, 3, 8, 8)
        assert seg.labels.shape == (12,)
        assert seg.start_index == 0
        assert seg.end_index == 12
        assert len(seg) == 12
        seg2 = stream.next_segment(12)
        assert seg2.start_index == 12

    def test_segments_iterator_total(self, dataset, rng):
        stream = TemporalStream(dataset, stc=4, rng=rng)
        segments = list(stream.segments(8, 30))
        assert [len(s) for s in segments] == [8, 8, 8, 6]
        assert stream.position == 30

    def test_segments_invalid_args(self, dataset, rng):
        stream = TemporalStream(dataset, stc=4, rng=rng)
        with pytest.raises(ValueError):
            list(stream.segments(0, 10))
        with pytest.raises(ValueError):
            list(stream.segments(4, 0))

    def test_reproducible_with_seed(self, dataset):
        s1 = TemporalStream(dataset, stc=3, rng=np.random.default_rng(9))
        s2 = TemporalStream(dataset, stc=3, rng=np.random.default_rng(9))
        a = s1.next_segment(20)
        b = s2.next_segment(20)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.images, b.images)

    def test_allow_repeat_mode(self, dataset, rng):
        stream = TemporalStream(dataset, stc=3, rng=rng, forbid_repeat=False)
        labels = stream.next_labels(900)
        # With repeats allowed, measured STC can exceed nominal.
        assert measure_stc(labels) >= 3.0 - 0.2


class TestMeasureStc:
    def test_constant_sequence(self):
        assert measure_stc(np.zeros(10, dtype=int)) == 10.0

    def test_alternating_sequence(self):
        assert measure_stc(np.array([0, 1, 0, 1])) == 1.0

    def test_known_runs(self):
        labels = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2])
        assert measure_stc(labels) == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            measure_stc(np.array([]))

    def test_matches_stream_nominal_stc(self):
        dataset = SyntheticImageDataset(SyntheticConfig("t", 4, 8))
        stream = TemporalStream(dataset, stc=25, rng=np.random.default_rng(0))
        labels = stream.next_labels(1000)
        assert measure_stc(labels) == pytest.approx(25.0, rel=0.01)
