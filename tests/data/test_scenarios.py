"""Tests for the stream-scenario layer: registry semantics, the
StreamSource protocol, per-scenario generative behavior, label
isolation, eager validation, and state round trips."""

import numpy as np
import pytest

from repro.data.drift import DriftStream
from repro.data.scenarios import (
    BurstyStream,
    CorruptedStream,
    CyclicDriftStream,
    ImbalancedStream,
    StreamSource,
    create_scenario,
    disjoint_phases,
)
from repro.data.stream import TemporalStream, measure_stc
from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset
from repro.registry import SCENARIOS, register_scenario, scenario_names


@pytest.fixture
def dataset():
    return SyntheticImageDataset(
        SyntheticConfig("scenario-test", num_classes=8, image_size=8)
    )


def make(name, dataset, seed=0, stc=4, total=64, **options):
    return create_scenario(
        name,
        dataset=dataset,
        stc=stc,
        rng=np.random.default_rng(seed),
        total_samples=total,
        **options,
    )


class TestScenarioRegistry:
    def test_builtin_roster(self):
        names = scenario_names()
        assert set(names) >= {
            "temporal",
            "drift",
            "cyclic-drift",
            "bursty",
            "imbalanced",
            "corrupted",
        }
        assert len(names) >= 6

    def test_aliases_resolve(self):
        assert SCENARIOS.get("stationary").name == "temporal"
        assert SCENARIOS.get("cyclic").name == "cyclic-drift"
        assert SCENARIOS.get("recurring").name == "cyclic-drift"
        assert SCENARIOS.get("long-tail").name == "imbalanced"
        assert SCENARIOS.get("noisy").name == "corrupted"
        assert SCENARIOS.get("class-incremental").name == "drift"

    def test_unknown_name_suggests(self):
        with pytest.raises(KeyError, match="did you mean 'cyclic-drift'"):
            SCENARIOS.get("cyclic-drif")
        # UnknownComponentError doubles as ValueError (legacy contract)
        with pytest.raises(ValueError, match="unknown scenario"):
            SCENARIOS.get("not-a-scenario")

    def test_create_scenario_returns_stream_source(self, dataset):
        for name in scenario_names():
            source = make(name, dataset)
            assert isinstance(source, StreamSource), name

    def test_explicit_option_typo_rejected(self, dataset):
        with pytest.raises(TypeError, match="does not accept"):
            make("temporal", dataset, num_phasez=3)

    def test_scenario_specific_options_forwarded(self, dataset):
        source = make("cyclic-drift", dataset, num_environments=4, cycles=1)
        assert len(source.phases) == 4

    def test_non_stream_source_factory_rejected(self, dataset):
        @register_scenario("bad-scenario-test")
        def bad_factory(dataset, stc, rng):
            return object()

        try:
            with pytest.raises(TypeError, match="expected a StreamSource"):
                make("bad-scenario-test", dataset)
        finally:
            SCENARIOS.unregister("bad-scenario-test")

    def test_plugin_scenario_usable_by_name(self, dataset):
        @register_scenario("replay-test", aliases=("rp-test",))
        def replay(dataset, stc, rng):
            return TemporalStream(dataset, stc, rng)

        try:
            source = make("rp-test", dataset)
            assert isinstance(source, TemporalStream)
        finally:
            SCENARIOS.unregister("replay-test")


class TestLabelIsolation:
    """Every scenario's segments keep the evaluation-only label contract:
    labels stay in range, match the image count, and (for wrappers)
    pass through untouched."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS.names()))
    def test_segments_well_formed(self, dataset, name):
        source = make(name, dataset)
        position = 0
        for segment in source.segments(8, 24):
            assert segment.images.shape == (len(segment), 3, 8, 8)
            assert segment.images.dtype == np.float32
            assert float(segment.images.min()) >= 0.0
            assert float(segment.images.max()) <= 1.0
            assert segment.labels.shape == (len(segment),)
            assert segment.labels.dtype == np.int64
            assert segment.labels.min() >= 0
            assert segment.labels.max() < dataset.num_classes
            assert segment.start_index == position
            position = segment.end_index
        assert source.position == 24

    def test_corrupted_wrapper_passes_labels_through(self, dataset):
        """The wrapper transforms images only: every emitted label array
        is exactly what the wrapped base produced for that window."""
        rng = np.random.default_rng(3)
        base = TemporalStream(dataset, 4, rng)
        emitted = []
        original = base.next_segment

        def recording(segment_size):
            segment = original(segment_size)
            emitted.append(segment.labels.copy())
            return segment

        base.next_segment = recording
        wrapped = CorruptedStream(base, rng, phase_length=8, noise_std=0.3)
        outputs = [wrapped.next_segment(8).labels for _ in range(6)]
        assert len(emitted) == 6
        for got, want in zip(outputs, emitted):
            np.testing.assert_array_equal(got, want)

    def test_corrupted_clean_phase_passes_through_then_shifts(self, dataset):
        plain = make("temporal", dataset, seed=5)
        wrapped = make(
            "corrupted",
            dataset,
            seed=5,
            corruption_phase_length=8,
            corruption_levels=2,
            noise_std=0.3,
        )
        assert wrapped.corruption_level(0) == 0
        assert wrapped.corruption_level(8) == 1
        # level-0 phase: bitwise identical to the identically-seeded base
        clean_p, clean_w = plain.next_segment(8), wrapped.next_segment(8)
        np.testing.assert_array_equal(clean_p.images, clean_w.images)
        # level-1 phase: same labels, corrupted images
        shifted_p, shifted_w = plain.next_segment(8), wrapped.next_segment(8)
        np.testing.assert_array_equal(shifted_p.labels, shifted_w.labels)
        assert float(np.abs(shifted_p.images - shifted_w.images).max()) > 0.01
        assert float(shifted_w.images.min()) >= 0.0
        assert float(shifted_w.images.max()) <= 1.0


class TestScenarioProcesses:
    def test_cyclic_drift_environments_recur(self, dataset):
        source = make("cyclic-drift", dataset, total=64, num_environments=2)
        # phase length 64 // (2 * 2) = 16: A B A B
        labels = source.next_labels(64)
        env_a = set(labels[:16]) | set(labels[32:48])
        env_b = set(labels[16:32]) | set(labels[48:])
        assert env_a <= {0, 1, 2, 3}
        assert env_b <= {4, 5, 6, 7}

    def test_cyclic_drift_cycles_back_unlike_drift(self, dataset):
        cyclic = make("cyclic-drift", dataset, total=32, num_environments=2, cycles=1)
        assert isinstance(cyclic, CyclicDriftStream)
        # past the final phase, DriftStream clamps but cyclic recurs
        assert cyclic.phase_index(0) == 0
        assert cyclic.phase_index(16) == 1
        assert cyclic.phase_index(32) == 0
        plain = make("drift", dataset, total=32)
        assert isinstance(plain, DriftStream)
        assert plain.phase_index(10_000) == len(plain.phases) - 1

    def test_bursty_run_lengths_vary(self, dataset):
        source = make("bursty", dataset, stc=2, total=512, burst_stc=16)
        assert isinstance(source, BurstyStream)
        labels = source.next_labels(512)
        changes = np.flatnonzero(labels[1:] != labels[:-1]) + 1
        runs = np.diff(np.concatenate([[0], changes, [labels.size]]))
        assert 2 in runs[:-1] and 16 in runs[:-1]  # both regimes occur
        assert measure_stc(labels) > 2.0  # bursts raise the empirical STC

    def test_bursty_validation(self, dataset):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="burst_stc"):
            BurstyStream(dataset, 4, rng, burst_stc=0)
        with pytest.raises(ValueError, match="burst_prob"):
            BurstyStream(dataset, 4, rng, burst_prob=1.5)

    def test_imbalanced_head_dominates_tail(self, dataset):
        source = make("imbalanced", dataset, stc=1, total=4096, imbalance=0.05)
        assert isinstance(source, ImbalancedStream)
        labels = source.next_labels(4096)
        counts = np.bincount(labels, minlength=dataset.num_classes)
        assert counts[0] > 4 * counts[-1]
        assert counts.min() >= 0  # tail may be rare but never negative

    def test_imbalanced_probs_normalized(self, dataset):
        source = make("imbalanced", dataset, imbalance=0.1)
        assert source.class_probs.sum() == pytest.approx(1.0)
        assert (np.diff(source.class_probs) < 0).all()  # strictly decaying

    def test_imbalanced_validation(self, dataset):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="imbalance"):
            ImbalancedStream(dataset, 4, rng, imbalance=0.0)
        with pytest.raises(ValueError, match="imbalance"):
            ImbalancedStream(dataset, 4, rng, imbalance=2.0)

    def test_corrupted_cannot_wrap_itself(self, dataset):
        with pytest.raises(ValueError, match="cannot wrap itself"):
            make("corrupted", dataset, base="noisy")

    def test_corrupted_composes_over_drift(self, dataset):
        source = make("corrupted", dataset, base="drift", num_phases=2)
        assert isinstance(source, CorruptedStream)
        assert isinstance(source.base, DriftStream)
        labels = np.concatenate([s.labels for s in source.segments(8, 32)])
        # first drift phase only exposes the unlocked class slice
        assert set(labels[:16].tolist()) <= set(range(4))

    def test_corrupted_validation(self, dataset):
        base = make("temporal", dataset)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="phase_length"):
            CorruptedStream(base, rng, phase_length=0)
        with pytest.raises(ValueError, match="levels"):
            CorruptedStream(base, rng, phase_length=4, levels=1)
        with pytest.raises(ValueError, match="noise_std"):
            CorruptedStream(base, rng, phase_length=4, noise_std=-0.1)

    def test_disjoint_phases_partition(self):
        phases = disjoint_phases(8, 3)
        flat = [c for phase in phases for c in phase]
        assert sorted(flat) == list(range(8))
        assert len(phases) == 3
        with pytest.raises(ValueError, match="num_phases"):
            disjoint_phases(8, 0)
        with pytest.raises(ValueError, match="one class per phase"):
            disjoint_phases(2, 5)


class TestEagerValidation:
    """segments() must reject bad arguments at the call, not on first
    iteration (the old generator-function behavior)."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS.names()))
    def test_scenarios_validate_segments_eagerly(self, dataset, name):
        source = make(name, dataset)
        with pytest.raises(ValueError, match="segment_size must be >= 1, got 0"):
            source.segments(0, 16)
        with pytest.raises(ValueError, match="total_samples must be >= 1, got -3"):
            source.segments(4, -3)

    def test_temporal_stream_validates_eagerly(self, dataset):
        stream = TemporalStream(dataset, 4, np.random.default_rng(0))
        with pytest.raises(ValueError, match="segment_size must be >= 1, got 0"):
            stream.segments(0, 10)

    def test_drift_stream_validates_eagerly_with_field_messages(self, dataset):
        stream = DriftStream(
            dataset, 4, np.random.default_rng(0), phases=[[0, 1]], phase_length=8
        )
        with pytest.raises(ValueError, match="segment_size must be >= 1, got 0"):
            stream.segments(0, 10)
        with pytest.raises(ValueError, match="total_samples must be >= 1, got 0"):
            stream.segments(4, 0)


class TestStateRoundTrip:
    """state_dict + shared-RNG restore reproduces the label process for
    every scenario (the mechanism behind Session checkpoint/resume)."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS.names()))
    def test_state_dict_resumes_stream_process(self, dataset, name):
        # every scenario (including the corrupted wrapper, which shares
        # one generator with its base) exposes the driving rng as .rng
        source = make(name, dataset)
        source.next_segment(12)
        state = source.state_dict()
        rng_state = source.rng.bit_generator.state
        after = source.next_segment(16)

        clone = make(name, dataset)
        clone.load_state_dict(state)
        clone.rng.bit_generator.state = rng_state
        replay = clone.next_segment(16)
        np.testing.assert_array_equal(after.labels, replay.labels)
        np.testing.assert_array_equal(after.images, replay.images)
        assert after.start_index == replay.start_index

    def test_drift_state_dict_json_serializable(self, dataset):
        import json

        stream = DriftStream(
            dataset, 3, np.random.default_rng(1), phases=[[0, 1], [2]], phase_length=8
        )
        stream.next_labels(10)
        state = json.loads(json.dumps(stream.state_dict()))
        clone = DriftStream(
            dataset, 3, np.random.default_rng(1), phases=[[0, 1], [2]], phase_length=8
        )
        clone.load_state_dict(state)
        assert clone.position == stream.position
