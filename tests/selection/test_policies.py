"""Tests for the baseline replacement policies."""

import numpy as np
import pytest

from repro.core.buffer import DataBuffer
from repro.core.scoring import ContrastScorer
from repro.nn.projection import ProjectionHead
from repro.nn.resnet import resnet_micro
from repro.selection import (
    FIFOPolicy,
    KCenterPolicy,
    RandomReplacePolicy,
    SelectiveBPPolicy,
    greedy_k_center,
)


@pytest.fixture
def rng():
    return np.random.default_rng(61)


def images(rng, n, channels=3, size=8):
    return rng.uniform(0, 1, size=(n, channels, size, size)).astype(np.float32)


def filled_buffer(rng, capacity, iteration=0):
    buf = DataBuffer(capacity)
    buf.replace(images(rng, capacity), np.arange(capacity), None, iteration)
    return buf


@pytest.fixture
def scorer():
    model_rng = np.random.default_rng(9)
    encoder = resnet_micro(rng=model_rng)
    projector = ProjectionHead(encoder.feature_dim, out_dim=8, rng=model_rng)
    return ContrastScorer(encoder, projector)


class TestRandomReplace:
    def test_keeps_capacity_entries(self, rng):
        policy = RandomReplacePolicy(4, rng)
        buf = filled_buffer(rng, 4)
        result = policy.select(buf, images(rng, 4), 1)
        assert result.keep_indices.shape == (4,)
        assert len(set(result.keep_indices.tolist())) == 4
        assert result.num_scored == 0

    def test_uniform_over_pool(self, rng):
        """Across many draws, buffer and incoming are kept equally often."""
        policy = RandomReplacePolicy(4, rng)
        buf = filled_buffer(rng, 4)
        new = images(rng, 4)
        from_new = 0
        trials = 400
        for it in range(trials):
            keep = policy.select(buf, new, it).keep_indices
            from_new += (keep >= 4).sum()
        rate = from_new / (4 * trials)
        assert rate == pytest.approx(0.5, abs=0.05)

    def test_partial_pool(self, rng):
        policy = RandomReplacePolicy(4, rng)
        buf = DataBuffer(4)  # empty
        result = policy.select(buf, images(rng, 2), 0)
        assert sorted(result.keep_indices.tolist()) == [0, 1]

    def test_invalid_capacity(self, rng):
        with pytest.raises(ValueError):
            RandomReplacePolicy(0, rng)

    def test_seeded_determinism(self):
        rng_data = np.random.default_rng(0)
        buf = filled_buffer(rng_data, 4)
        new = images(rng_data, 4)
        a = RandomReplacePolicy(4, np.random.default_rng(3)).select(buf, new, 0)
        b = RandomReplacePolicy(4, np.random.default_rng(3)).select(buf, new, 0)
        np.testing.assert_array_equal(a.keep_indices, b.keep_indices)


class TestFIFO:
    def test_full_segment_replaces_buffer(self, rng):
        """size(I) == size(B): the buffer becomes the newest segment."""
        policy = FIFOPolicy(4)
        buf = filled_buffer(rng, 4)
        result = policy.select(buf, images(rng, 4), 1)
        np.testing.assert_array_equal(result.keep_indices, [4, 5, 6, 7])

    def test_small_segment_evicts_oldest(self, rng):
        policy = FIFOPolicy(4)
        buf = DataBuffer(4)
        first = images(rng, 2)
        r = policy.select(buf, first, 0)
        buf.replace(first, r.keep_indices, None, 0)
        second = images(rng, 2)
        pool = np.concatenate([buf.images, second])
        r = policy.select(buf, second, 1)
        buf.replace(pool, r.keep_indices, None, 1)
        assert buf.size == 4
        # now a 2-entry segment should evict the 2 oldest (inserted_at == 0)
        third = images(rng, 2)
        r = policy.select(buf, third, 2)
        kept_buffer = [i for i in r.keep_indices if i < 4]
        assert all(buf.inserted_at[i] == 1 for i in kept_buffer)
        assert {i for i in r.keep_indices if i >= 4} == {4, 5}

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FIFOPolicy(0)

    def test_no_scoring_work(self, rng):
        policy = FIFOPolicy(4)
        buf = filled_buffer(rng, 4)
        assert policy.select(buf, images(rng, 4), 0).num_scored == 0


class TestSelectiveBP:
    def test_keeps_capacity(self, rng, scorer):
        policy = SelectiveBPPolicy(scorer, 4)
        buf = filled_buffer(rng, 4)
        result = policy.select(buf, images(rng, 4), 0)
        assert result.keep_indices.shape == (4,)
        assert result.num_scored == 8
        assert result.pool_scores.shape == (8,)

    def test_selects_largest_losses(self, rng, scorer):
        policy = SelectiveBPPolicy(scorer, 2)
        buf = filled_buffer(rng, 2)
        result = policy.select(buf, images(rng, 2), 0)
        losses = result.pool_scores
        kept = set(result.keep_indices.tolist())
        top2 = set(np.argsort(-losses)[:2].tolist())
        assert kept == top2

    def test_single_candidate_pool(self, rng, scorer):
        policy = SelectiveBPPolicy(scorer, 4)
        buf = DataBuffer(4)
        result = policy.select(buf, images(rng, 1), 0)
        assert result.keep_indices.tolist() == [0]

    def test_invalid_capacity(self, scorer):
        with pytest.raises(ValueError):
            SelectiveBPPolicy(scorer, 0)


class TestGreedyKCenter:
    def test_selects_k_unique(self, rng):
        feats = rng.normal(size=(20, 4))
        centers = greedy_k_center(feats, 5)
        assert centers.shape == (5,)
        assert len(set(centers.tolist())) == 5

    def test_k_larger_than_n(self, rng):
        feats = rng.normal(size=(3, 2))
        assert greedy_k_center(feats, 10).shape == (3,)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            greedy_k_center(rng.normal(size=(4,)), 2)
        with pytest.raises(ValueError):
            greedy_k_center(rng.normal(size=(4, 2)), 0)

    def test_covers_clusters(self, rng):
        """With well-separated clusters and k = #clusters, k-center picks
        one point per cluster."""
        centers = np.array([[0.0, 0.0], [100.0, 0.0], [0.0, 100.0], [100.0, 100.0]])
        points = np.concatenate(
            [c + rng.normal(0, 0.5, size=(10, 2)) for c in centers]
        )
        chosen = greedy_k_center(points, 4)
        clusters = {int(idx) // 10 for idx in chosen}
        assert clusters == {0, 1, 2, 3}

    def test_deterministic(self, rng):
        feats = rng.normal(size=(15, 3))
        np.testing.assert_array_equal(
            greedy_k_center(feats, 5), greedy_k_center(feats, 5)
        )


class TestKCenterPolicy:
    def test_keeps_capacity(self, rng, scorer):
        policy = KCenterPolicy(scorer, 4)
        buf = filled_buffer(rng, 4)
        result = policy.select(buf, images(rng, 4), 0)
        assert result.keep_indices.shape == (4,)
        assert result.num_scored == 8

    def test_invalid_capacity(self, scorer):
        with pytest.raises(ValueError):
            KCenterPolicy(scorer, 0)


class TestSharedValidation:
    def test_shape_mismatch_raises(self, rng):
        policy = FIFOPolicy(4)
        buf = filled_buffer(rng, 4)
        with pytest.raises(ValueError):
            policy.select(buf, images(rng, 4, size=6), 0)

    def test_non_nchw_raises(self, rng):
        policy = FIFOPolicy(4)
        buf = DataBuffer(4)
        with pytest.raises(ValueError):
            policy.select(buf, rng.uniform(size=(4, 8, 8)).astype(np.float32), 0)
