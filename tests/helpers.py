"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor


def numeric_grad(
    fn: Callable[[], Tensor], wrt: Tensor, eps: float = 1e-5
) -> np.ndarray:
    """Central finite-difference gradient of a scalar-valued ``fn`` w.r.t. ``wrt``.

    ``fn`` must recompute the forward pass from ``wrt.data`` each call.
    """
    base = wrt.data
    grad = np.zeros_like(base, dtype=np.float64)
    flat = base.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn().data.sum())
        flat[i] = original - eps
        minus = float(fn().data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def assert_grad_close(
    fn: Callable[[], Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-6,
    rtol: float = 1e-4,
    eps: float = 1e-5,
) -> None:
    """Check autograd gradients of scalar ``fn`` against finite differences.

    ``inputs`` are the leaf tensors (must be float64 with requires_grad)
    whose gradients are verified.
    """
    for t in inputs:
        assert t.requires_grad, "gradcheck inputs must require grad"
        assert t.data.dtype == np.float64, "use float64 for gradcheck"
        t.zero_grad()
    out = fn()
    total = out.sum() if out.size > 1 else out
    total.backward()
    for idx, t in enumerate(inputs):
        expected = numeric_grad(fn, t, eps=eps)
        actual = t.grad
        assert actual is not None, f"input {idx} received no gradient"
        np.testing.assert_allclose(
            actual,
            expected,
            atol=atol,
            rtol=rtol,
            err_msg=f"gradient mismatch for input {idx}",
        )


def leaf(rng: np.random.Generator, *shape: int, scale: float = 1.0) -> Tensor:
    """A float64 leaf tensor with requires_grad for gradcheck tests."""
    return Tensor(
        rng.normal(0.0, scale, size=shape).astype(np.float64), requires_grad=True
    )
