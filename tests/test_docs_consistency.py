"""Tier-1 guard for the docs-consistency contract.

CI runs ``tools/check_docs.py`` as a separate step; these tests keep
the same check (and the checker's own failure modes) in the tier-1
suite so a registry/docs mismatch fails fast locally too.
"""

import importlib.util
import pathlib

import pytest

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools" / "check_docs.py"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_docs", TOOLS)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_registries_and_docs_agree(checker):
    assert checker.check() == []


def test_checker_detects_missing_name(checker, monkeypatch):
    """The checker must actually bite: an undocumented registration
    (and an unregistered documented name) both surface as problems."""
    from repro.registry import register_scenario, SCENARIOS
    from repro.data.stream import TemporalStream

    @register_scenario("undocumented-test")
    def undocumented(dataset, stc, rng):
        return TemporalStream(dataset, stc, rng)

    try:
        problems = checker.check()
    finally:
        SCENARIOS.unregister("undocumented-test")
    assert any("undocumented-test" in p for p in problems)
    # both directions: the API.md inventory and the SCENARIOS.md section
    assert any("inventory" in p for p in problems)
    assert any("SCENARIOS.md" in p for p in problems)


def test_checker_detects_missing_wrapper(checker):
    """A registered wrapper must appear in BOTH the scenarios and the
    scenario-wrappers inventories (and get a SCENARIOS.md section)."""
    from repro.registry import register_scenario, SCENARIOS
    from repro.data.stream import TemporalStream

    @register_scenario("undocumented-wrapper-test", kind="wrapper")
    def undocumented(dataset, stc, rng, base_source=None, wrapper_layer=0):
        return base_source or TemporalStream(dataset, stc, rng)

    try:
        problems = checker.check()
    finally:
        SCENARIOS.unregister("undocumented-wrapper-test")
    assert any(
        p.startswith("scenarios:") and "undocumented-wrapper-test" in p
        for p in problems
    )
    assert any(
        p.startswith("scenario-wrappers:") and "undocumented-wrapper-test" in p
        for p in problems
    )


def test_checker_detects_missing_aggregator(checker):
    """Both directions for the AGGREGATORS registry too: an
    undocumented aggregator surfaces in the docs/API.md inventory and
    as a missing docs/FLEET.md section."""
    from repro.registry import register_aggregator, AGGREGATORS
    from repro.fleet.aggregators import Aggregator

    @register_aggregator("undocumented-agg-test")
    class Undocumented(Aggregator):
        def aggregate(self, global_state, reports):
            return None

    try:
        problems = checker.check()
    finally:
        AGGREGATORS.unregister("undocumented-agg-test")
    assert any("undocumented-agg-test" in p for p in problems)
    assert any("inventory" in p and "undocumented-agg-test" in p for p in problems)
    assert any("FLEET.md" in p and "undocumented-agg-test" in p for p in problems)


def test_inventory_parser_reads_backticked_names(checker):
    inventories = checker.parse_inventories(
        "x <!-- inventory:backends -->`numpy` and `fused`<!-- /inventory --> y"
    )
    assert inventories == {"backends": {"numpy", "fused"}}
