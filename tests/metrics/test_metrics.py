"""Tests for accuracy metrics, learning curves, and timing."""

import numpy as np
import pytest

from repro.metrics.accuracy import confusion_matrix, per_class_accuracy, top1_accuracy
from repro.metrics.curves import LearningCurve, speedup_at_accuracy
from repro.metrics.timing import BatchTimeAccumulator, relative_batch_time


class TestAccuracy:
    def test_perfect(self):
        assert top1_accuracy(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0

    def test_partial(self):
        assert top1_accuracy(np.array([0, 1, 0]), np.array([0, 1, 2])) == pytest.approx(2 / 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.array([]), np.array([]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.array([0, 1]), np.array([0]))

    def test_per_class(self):
        preds = np.array([0, 0, 1, 1])
        labels = np.array([0, 1, 1, 1])
        out = per_class_accuracy(preds, labels, 3)
        assert out[0] == 1.0
        assert out[1] == pytest.approx(2 / 3)
        assert np.isnan(out[2])

    def test_confusion_matrix(self):
        preds = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        cm = confusion_matrix(preds, labels, 3)
        assert cm[0, 0] == 1
        assert cm[1, 1] == 1
        assert cm[2, 1] == 1
        assert cm[2, 2] == 1
        assert cm.sum() == 4


class TestLearningCurve:
    def test_add_and_final(self):
        curve = LearningCurve("m")
        curve.add(100, 0.4)
        curve.add(200, 0.6)
        assert len(curve) == 2
        assert curve.final_accuracy == 0.6
        assert curve.best_accuracy == 0.6
        assert curve.as_rows() == [(100, 0.4), (200, 0.6)]

    def test_non_monotone_seen_raises(self):
        curve = LearningCurve("m")
        curve.add(100, 0.4)
        with pytest.raises(ValueError):
            curve.add(50, 0.5)

    def test_empty_final_raises(self):
        with pytest.raises(ValueError):
            _ = LearningCurve("m").final_accuracy

    def test_inputs_to_reach_exact(self):
        curve = LearningCurve("m")
        curve.add(100, 0.3)
        curve.add(200, 0.5)
        curve.add(300, 0.7)
        assert curve.inputs_to_reach(0.5) == 200

    def test_inputs_to_reach_interpolated(self):
        curve = LearningCurve("m")
        curve.add(100, 0.2)
        curve.add(200, 0.6)
        assert curve.inputs_to_reach(0.4) == 150

    def test_inputs_to_reach_first_point(self):
        curve = LearningCurve("m")
        curve.add(100, 0.9)
        assert curve.inputs_to_reach(0.5) == 100

    def test_inputs_to_reach_never(self):
        curve = LearningCurve("m")
        curve.add(100, 0.2)
        assert curve.inputs_to_reach(0.9) is None

    def test_non_monotone_accuracy_uses_first_crossing(self):
        curve = LearningCurve("m")
        curve.add(100, 0.2)
        curve.add(200, 0.6)
        curve.add(300, 0.5)
        assert curve.inputs_to_reach(0.55) < 200


class TestSpeedup:
    def test_paper_style_speedup(self):
        """Fast reaches 0.76 at 3.74M; slow at 9.98M -> 2.67x."""
        fast = LearningCurve("cs")
        slow = LearningCurve("random")
        fast.add(1_000_000, 0.5)
        fast.add(3_740_000, 0.761)
        slow.add(1_000_000, 0.3)
        slow.add(9_980_000, 0.761)
        speedup = speedup_at_accuracy(fast, slow, 0.76)
        assert speedup == pytest.approx(2.67, rel=0.02)

    def test_unreachable_returns_none(self):
        fast = LearningCurve("a")
        slow = LearningCurve("b")
        fast.add(10, 0.9)
        slow.add(10, 0.2)
        assert speedup_at_accuracy(fast, slow, 0.8) is None


class TestTiming:
    def test_accumulate_and_means(self):
        acc = BatchTimeAccumulator()
        acc.record(0.1, 0.2)
        acc.record(0.3, 0.4)
        assert acc.steps == 2
        assert acc.mean_select() == pytest.approx(0.2)
        assert acc.mean_train() == pytest.approx(0.3)
        assert acc.mean_total() == pytest.approx(0.5)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            BatchTimeAccumulator().record(-0.1, 0.2)

    def test_relative_batch_time(self):
        acc = BatchTimeAccumulator()
        acc.record(0.05, 0.1)
        assert relative_batch_time(acc, 0.1) == pytest.approx(1.5)

    def test_relative_requires_positive_baseline(self):
        acc = BatchTimeAccumulator()
        acc.record(0.0, 0.1)
        with pytest.raises(ValueError):
            relative_batch_time(acc, 0.0)

    def test_empty_accumulator_means_zero(self):
        acc = BatchTimeAccumulator()
        assert acc.mean_total() == 0.0
