"""Tests for buffer-diversity metrics."""

import numpy as np
import pytest

from repro.metrics.diversity import (
    class_entropy,
    distinct_classes,
    effective_num_classes,
)


class TestClassEntropy:
    def test_single_class_zero(self):
        assert class_entropy(np.array([10, 0, 0])) == 0.0

    def test_uniform_log_k(self):
        assert class_entropy(np.array([5, 5, 5, 5])) == pytest.approx(np.log(4))

    def test_scale_invariant(self):
        a = class_entropy(np.array([1, 2, 3]))
        b = class_entropy(np.array([10, 20, 30]))
        assert a == pytest.approx(b)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            class_entropy(np.array([0, 0]))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            class_entropy(np.array([1, -1]))

    def test_non_1d_raises(self):
        with pytest.raises(ValueError):
            class_entropy(np.zeros((2, 2)))


class TestEffectiveClasses:
    def test_single_class_one(self):
        assert effective_num_classes(np.array([7, 0])) == pytest.approx(1.0)

    def test_uniform_equals_k(self):
        assert effective_num_classes(np.array([3, 3, 3])) == pytest.approx(3.0)

    def test_skewed_between_one_and_k(self):
        value = effective_num_classes(np.array([100, 1, 1]))
        assert 1.0 < value < 3.0


class TestDistinctClasses:
    def test_counts_nonzero(self):
        assert distinct_classes(np.array([0, 3, 0, 1])) == 2

    def test_all_zero(self):
        assert distinct_classes(np.array([0, 0])) == 0
