"""Tests for the §III-C gradient analysis (Eq. 5-6)."""

import numpy as np
import pytest

from repro.core.gradient_analysis import (
    autograd_grad_wrt_anchor,
    contrast_scores_from_projections,
    ntxent_grad_wrt_anchor,
    pair_probabilities,
    per_anchor_gradient_norms,
    score_gradient_relation,
)


@pytest.fixture
def rng():
    return np.random.default_rng(41)


def normalized(rng, n, d):
    z = rng.normal(size=(n, d))
    return z / np.linalg.norm(z, axis=1, keepdims=True)


class TestPairProbabilities:
    def test_sums_to_one_excluding_self(self, rng):
        z = normalized(rng, 8, 4)
        p = pair_probabilities(z, anchor=2, tau=0.5)
        assert p[2] == pytest.approx(0.0, abs=1e-12)
        assert p.sum() == pytest.approx(1.0, rel=1e-9)

    def test_aligned_positive_dominates(self, rng):
        z = normalized(rng, 6, 4)
        z[3] = z[0]  # z_3 identical to anchor 0
        p = pair_probabilities(z, anchor=0, tau=0.1)
        assert p.argmax() == 3


class TestClosedFormGradient:
    def test_matches_autograd(self, rng):
        z = normalized(rng, 8, 5)
        for anchor, positive in [(0, 4), (2, 6), (3, 7)]:
            closed = ntxent_grad_wrt_anchor(z, anchor, positive, tau=0.5)
            auto = autograd_grad_wrt_anchor(z, anchor, positive, tau=0.5)
            np.testing.assert_allclose(closed, auto, atol=1e-8)

    def test_matches_autograd_low_temperature(self, rng):
        z = normalized(rng, 6, 4)
        closed = ntxent_grad_wrt_anchor(z, 1, 4, tau=0.07)
        auto = autograd_grad_wrt_anchor(z, 1, 4, tau=0.07)
        np.testing.assert_allclose(closed, auto, atol=1e-7)

    def test_anchor_equals_positive_raises(self, rng):
        z = normalized(rng, 4, 3)
        with pytest.raises(ValueError):
            ntxent_grad_wrt_anchor(z, 1, 1, tau=0.5)

    def test_case1_aligned_pair_near_zero_gradient(self, rng):
        """Paper Case 1: small score => near-zero gradient."""
        z1 = normalized(rng, 6, 8)
        z2 = z1.copy()  # perfectly aligned views, scores = 0
        norms = per_anchor_gradient_norms(z1, z2, tau=0.1)
        assert norms.max() < 0.5  # tiny compared to the misaligned case

    def test_case2_misaligned_pair_large_gradient(self, rng):
        """Paper Case 2: high score => large gradient."""
        z1 = normalized(rng, 6, 8)
        aligned = per_anchor_gradient_norms(z1, z1.copy(), tau=0.1).mean()
        z2 = -z1  # maximally dissimilar views, scores = 2
        misaligned = per_anchor_gradient_norms(z1, z2, tau=0.1).mean()
        assert misaligned > 10 * aligned


class TestScores:
    def test_scores_match_eq2(self, rng):
        z1 = normalized(rng, 5, 4)
        z2 = normalized(rng, 5, 4)
        scores = contrast_scores_from_projections(z1, z2)
        np.testing.assert_allclose(scores, 1 - (z1 * z2).sum(axis=1), atol=1e-12)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            contrast_scores_from_projections(
                normalized(rng, 4, 3), normalized(rng, 5, 3)
            )
        with pytest.raises(ValueError):
            contrast_scores_from_projections(
                normalized(rng, 1, 3), normalized(rng, 1, 3)
            )


class TestScoreGradientRelation:
    def test_positive_rank_correlation(self, rng):
        """The paper's core claim: score and gradient magnitude co-vary."""
        n = 32
        z1 = normalized(rng, n, 8)
        # construct views with varying alignment: blend z1 with noise
        alphas = np.linspace(0.0, 1.0, n)[:, None]
        noise = normalized(rng, n, 8)
        z2 = alphas * z1 + (1 - alphas) * noise
        z2 /= np.linalg.norm(z2, axis=1, keepdims=True)
        relation = score_gradient_relation(z1, z2, tau=0.5)
        assert relation.spearman_correlation() > 0.8

    def test_constant_scores_zero_correlation(self, rng):
        z1 = normalized(rng, 8, 4)
        relation = score_gradient_relation(z1, z1.copy(), tau=0.5)
        # identical scores -> correlation defined as finite (ranks tie)
        assert np.isfinite(relation.spearman_correlation())

    def test_relation_shapes(self, rng):
        z1 = normalized(rng, 7, 4)
        z2 = normalized(rng, 7, 4)
        relation = score_gradient_relation(z1, z2, tau=0.5)
        assert relation.scores.shape == (7,)
        assert relation.grad_norms.shape == (7,)
