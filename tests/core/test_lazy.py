"""Tests for the lazy-scoring schedule (paper Eq. 7-8)."""

import numpy as np
import pytest

from repro.core.lazy import LazyScoringSchedule


class TestSchedule:
    def test_disabled_scores_everything(self):
        lazy = LazyScoringSchedule(None)
        assert not lazy.enabled
        mask = lazy.needs_scoring(np.array([0, 1, 2, 3]))
        assert mask.all()

    def test_interval_one_scores_everything(self):
        lazy = LazyScoringSchedule(1)
        assert not lazy.enabled
        assert lazy.needs_scoring(np.array([0, 1, 2])).all()

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            LazyScoringSchedule(0)

    def test_eq7_age_modulo(self):
        lazy = LazyScoringSchedule(4)
        ages = np.array([0, 1, 2, 3, 4, 5, 8, 12])
        expected = np.array([False, False, False, False, True, False, True, True])
        np.testing.assert_array_equal(lazy.needs_scoring(ages), expected)

    def test_age_zero_reuses_insertion_score(self):
        """Fresh entries were scored as incoming data; no redundant
        re-scoring at the first iteration after insertion."""
        lazy = LazyScoringSchedule(50)
        assert not lazy.needs_scoring(np.array([0]))[0]

    def test_fraction_of_rescoring_approx_one_over_t(self):
        """Over uniformly distributed ages, the mask rate is ~1/T."""
        lazy = LazyScoringSchedule(10)
        ages = np.arange(1, 1001)  # exclude 0 (insert-time scoring)
        rate = lazy.needs_scoring(ages).mean()
        assert rate == pytest.approx(0.1, abs=0.01)


class TestStatistics:
    def test_record_and_fraction(self):
        lazy = LazyScoringSchedule(4)
        lazy.record(2, 8)
        lazy.record(0, 8)
        assert lazy.rescoring_fraction == pytest.approx(2 / 16)
        assert lazy.steps == 2

    def test_empty_stats(self):
        assert LazyScoringSchedule(4).rescoring_fraction == 0.0

    def test_invalid_record_raises(self):
        lazy = LazyScoringSchedule(4)
        with pytest.raises(ValueError):
            lazy.record(5, 4)
        with pytest.raises(ValueError):
            lazy.record(-1, 4)

    def test_reset_stats(self):
        lazy = LazyScoringSchedule(4)
        lazy.record(4, 8)
        lazy.reset_stats()
        assert lazy.rescoring_fraction == 0.0
        assert lazy.steps == 0

    def test_repr_mentions_interval(self):
        assert "4" in repr(LazyScoringSchedule(4))
        assert "disabled" in repr(LazyScoringSchedule(None))
