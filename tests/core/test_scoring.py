"""Tests for the contrast scorer (paper Eq. 2-3)."""

import numpy as np
import pytest

from repro.core.scoring import ContrastScorer
from repro.data.augment import horizontal_flip
from repro.nn.projection import ProjectionHead
from repro.nn.resnet import resnet_micro
from repro.nn.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(77)


@pytest.fixture
def scorer(rng):
    encoder = resnet_micro(rng=rng)
    projector = ProjectionHead(encoder.feature_dim, out_dim=8, rng=rng)
    # establish non-trivial BN running stats
    encoder(Tensor(rng.normal(0.5, 0.2, size=(16, 3, 8, 8)).astype(np.float32)))
    return ContrastScorer(encoder, projector)


@pytest.fixture
def images(rng):
    return rng.uniform(0, 1, size=(10, 3, 8, 8)).astype(np.float32)


class TestScoreProperties:
    def test_scores_in_range(self, scorer, images):
        scores = scorer.score(images)
        assert scores.shape == (10,)
        assert (scores >= 0).all() and (scores <= 2).all()

    def test_deterministic_across_calls(self, scorer, images):
        """The paper's design principle: S(x) must be reproducible."""
        np.testing.assert_array_equal(scorer.score(images), scorer.score(images))

    def test_score_independent_of_batch_composition(self, scorer, images):
        """Eval-mode BN: a sample's score must not depend on batch-mates."""
        full = scorer.score(images)
        alone = scorer.score(images[:1])
        assert full[0] == pytest.approx(alone[0], abs=1e-6)

    def test_symmetric_image_scores_near_zero(self, scorer, rng):
        """A horizontally symmetric image equals its flip view: S ~ 0."""
        half = rng.uniform(0, 1, size=(3, 3, 8, 4)).astype(np.float32)
        symmetric = np.concatenate([half, half[:, :, :, ::-1]], axis=3)
        scores = scorer.score(symmetric)
        np.testing.assert_allclose(scores, 0.0, atol=1e-5)

    def test_empty_batch(self, scorer):
        scores = scorer.score(np.zeros((0, 3, 8, 8), dtype=np.float32))
        assert scores.shape == (0,)

    def test_rejects_non_nchw(self, scorer, rng):
        with pytest.raises(ValueError):
            scorer.score(rng.uniform(size=(3, 8, 8)).astype(np.float32))

    def test_respects_max_batch(self, rng, images):
        encoder = resnet_micro(rng=np.random.default_rng(7))
        projector = ProjectionHead(encoder.feature_dim, out_dim=8, rng=rng)
        small = ContrastScorer(encoder, projector, max_batch=3)
        large = ContrastScorer(encoder, projector, max_batch=100)
        np.testing.assert_allclose(small.score(images), large.score(images), atol=1e-6)

    def test_invalid_max_batch_raises(self, rng):
        encoder = resnet_micro(rng=rng)
        projector = ProjectionHead(encoder.feature_dim, out_dim=8, rng=rng)
        with pytest.raises(ValueError):
            ContrastScorer(encoder, projector, max_batch=0)


class TestModelStateHandling:
    def test_restores_training_mode(self, scorer, images):
        scorer.encoder.train()
        scorer.projector.train()
        scorer.score(images)
        assert scorer.encoder.training
        assert scorer.projector.training

    def test_restores_eval_mode(self, scorer, images):
        scorer.encoder.eval()
        scorer.score(images)
        assert not scorer.encoder.training

    def test_no_gradients_created(self, scorer, images):
        scorer.score(images)
        for p in scorer.encoder.parameters():
            assert p.grad is None

    def test_running_stats_not_perturbed(self, scorer, images):
        bn = scorer.encoder.stem_bn
        before = bn.get_buffer("running_mean").copy()
        scorer.score(images)
        np.testing.assert_array_equal(bn.get_buffer("running_mean"), before)


class TestProjectAndFeatures:
    def test_projections_unit_norm(self, scorer, images):
        z = scorer.project(images)
        np.testing.assert_allclose(
            np.linalg.norm(z, axis=1), np.ones(len(images)), rtol=1e-5
        )

    def test_features_shape(self, scorer, images):
        h = scorer.features(images)
        assert h.shape == (10, scorer.encoder.feature_dim)

    def test_features_rejects_non_nchw(self, scorer, rng):
        with pytest.raises(ValueError):
            scorer.features(rng.uniform(size=(8, 8)).astype(np.float32))

    def test_score_matches_manual_computation(self, scorer, images):
        z = scorer.project(images)
        zf = scorer.project(horizontal_flip(images))
        manual = 1.0 - (z * zf).sum(axis=1)
        np.testing.assert_allclose(scorer.score(images), manual, atol=1e-7)


class TestScoreTracksLearning:
    def test_unlearned_data_scores_higher_than_learned(self):
        """The selection mechanism: after contrastive training on class-A
        data, unseen classes score markedly higher than the trained class
        (so the policy retains them)."""
        from repro.data.augment import SimCLRAugment
        from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset
        from repro.nn.losses import nt_xent_loss
        from repro.nn.optim import Adam

        data_rng = np.random.default_rng(7)
        dataset = SyntheticImageDataset(SyntheticConfig("s", 4, 8))
        encoder = resnet_micro(rng=np.random.default_rng(3))
        projector = ProjectionHead(
            encoder.feature_dim, out_dim=8, rng=np.random.default_rng(3)
        )
        scorer = ContrastScorer(encoder, projector)
        trained = dataset.sample(np.zeros(8, dtype=int), data_rng)
        unseen = dataset.sample(np.array([1] * 8 + [2] * 8), data_rng)

        augment = SimCLRAugment(jitter_strength=0.2)
        optimizer = Adam(
            [*encoder.parameters(), *projector.parameters()], lr=2e-3
        )
        aug_rng = np.random.default_rng(5)
        encoder.train()
        projector.train()
        for _ in range(60):
            v1, v2 = augment(trained, aug_rng)
            z1 = projector(encoder(Tensor(v1)))
            z2 = projector(encoder(Tensor(v2)))
            loss = nt_xent_loss(z1, z2, 0.5)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()

        trained_score = scorer.score(trained).mean()
        unseen_score = scorer.score(unseen).mean()
        assert unseen_score > 3 * trained_score


class TestVectorizedScorerRegression:
    """The batched scorer must match the per-sample reference spec."""

    def test_batched_matches_loop_on_random_batches(self, scorer, rng):
        for trial in range(3):
            images = rng.uniform(0, 1, size=(9 + trial, 3, 8, 8)).astype(np.float32)
            np.testing.assert_allclose(
                scorer.score(images), scorer.score_loop(images), atol=1e-6
            )

    def test_loop_empty_batch(self, scorer):
        assert scorer.score_loop(np.zeros((0, 3, 8, 8), dtype=np.float32)).shape == (0,)

    def test_score_many_matches_separate_calls(self, scorer, rng):
        a = rng.uniform(0, 1, size=(5, 3, 8, 8)).astype(np.float32)
        b = rng.uniform(0, 1, size=(7, 3, 8, 8)).astype(np.float32)
        fused_a, fused_b = scorer.score_many([a, b])
        np.testing.assert_allclose(fused_a, scorer.score(a), atol=1e-6)
        np.testing.assert_allclose(fused_b, scorer.score(b), atol=1e-6)

    def test_score_many_empty_batches(self, scorer, rng):
        a = rng.uniform(0, 1, size=(4, 3, 8, 8)).astype(np.float32)
        empty = a[:0]
        e1, scores, e2 = scorer.score_many([empty, a, empty])
        assert e1.shape == (0,) and e2.shape == (0,)
        np.testing.assert_allclose(scores, scorer.score(a), atol=1e-6)

    def test_score_many_all_empty(self, scorer):
        empty = np.zeros((0, 3, 8, 8), dtype=np.float32)
        out = scorer.score_many([empty, empty])
        assert [s.shape for s in out] == [(0,), (0,)]


class TestScoreBatchesFallback:
    def test_duck_typed_scorer_without_score_many(self):
        from repro.core.scoring import score_batches

        class Stub:
            calls = 0

            def score(self, images):
                self.calls += 1
                return np.full(images.shape[0], 0.5)

        stub = Stub()
        empty = np.zeros((0, 3, 4, 4), dtype=np.float32)
        batch = np.zeros((3, 3, 4, 4), dtype=np.float32)
        out_empty, out_batch = score_batches(stub, [empty, batch])
        assert out_empty.shape == (0,)
        np.testing.assert_array_equal(out_batch, np.full(3, 0.5))
        assert stub.calls == 1  # the empty batch never reaches the stub

    def test_real_scorer_uses_fused_path(self, scorer, rng):
        from repro.core.scoring import score_batches

        images = rng.uniform(0, 1, size=(6, 3, 8, 8)).astype(np.float32)
        (fused,) = score_batches(scorer, [images])
        np.testing.assert_allclose(fused, scorer.score(images), atol=1e-6)


class TestScoreBatchesFusedFallback:
    """Satellite fix: duck-typed scorers without score_many get a single
    concatenated forward when the batch shapes match."""

    class CountingStub:
        def __init__(self):
            self.calls = []

        def score(self, images):
            self.calls.append(images.shape[0])
            return images.mean(axis=(1, 2, 3)).astype(np.float64)

    def test_matching_shapes_fuse_into_one_forward(self):
        from repro.core.scoring import score_batches

        stub = self.CountingStub()
        rng = np.random.default_rng(3)
        batches = [
            rng.random((4, 3, 4, 4), dtype=np.float32),
            rng.random((2, 3, 4, 4), dtype=np.float32),
            rng.random((3, 3, 4, 4), dtype=np.float32),
        ]
        out = score_batches(stub, batches)
        assert stub.calls == [9]  # one concatenated forward
        assert [o.shape for o in out] == [(4,), (2,), (3,)]
        for images, scores in zip(batches, out):
            np.testing.assert_allclose(
                scores, images.mean(axis=(1, 2, 3)), rtol=1e-6
            )

    def test_mixed_shapes_fall_back_per_batch(self):
        from repro.core.scoring import score_batches

        stub = self.CountingStub()
        rng = np.random.default_rng(4)
        batches = [
            rng.random((4, 3, 4, 4), dtype=np.float32),
            rng.random((2, 3, 8, 8), dtype=np.float32),  # different HW
        ]
        out = score_batches(stub, batches)
        assert stub.calls == [4, 2]
        assert [o.shape for o in out] == [(4,), (2,)]

    def test_empty_batches_interleaved(self):
        from repro.core.scoring import score_batches

        stub = self.CountingStub()
        empty = np.zeros((0, 3, 4, 4), dtype=np.float32)
        batch = np.ones((2, 3, 4, 4), dtype=np.float32)
        out = score_batches(stub, [empty, batch, empty])
        assert [o.shape for o in out] == [(0,), (2,), (0,)]
        assert stub.calls == [2]

    def test_all_empty(self):
        from repro.core.scoring import score_batches

        stub = self.CountingStub()
        empty = np.zeros((0, 3, 4, 4), dtype=np.float32)
        out = score_batches(stub, [empty, empty])
        assert [o.shape for o in out] == [(0,), (0,)]
        assert stub.calls == []


class TestContentHash:
    def test_chw_and_nchw_agree(self, images):
        from repro.core.scoring import content_hash

        assert content_hash(images[0]) == [content_hash(images)[0]]

    def test_distinct_content_distinct_digest(self, images):
        from repro.core.scoring import content_hash

        digests = content_hash(images)
        assert len(set(digests)) == len(digests)

    def test_equal_content_equal_digest(self, images):
        from repro.core.scoring import content_hash

        twice = np.concatenate([images[:1], images[:1].copy()])
        d = content_hash(twice)
        assert d[0] == d[1]

    def test_dtype_and_shape_are_part_of_the_key(self):
        from repro.core.scoring import content_hash

        zeros32 = np.zeros((1, 3, 4, 4), dtype=np.float32)
        zeros64 = np.zeros((1, 3, 4, 4), dtype=np.float64)
        zeros_big = np.zeros((1, 3, 8, 8), dtype=np.float32)
        assert content_hash(zeros32) != content_hash(zeros64)
        assert content_hash(zeros32) != content_hash(zeros_big)

    def test_non_contiguous_input(self, images):
        from repro.core.scoring import content_hash

        flipped = images[:, :, :, ::-1]  # a view, not contiguous
        assert content_hash(flipped) == content_hash(
            np.ascontiguousarray(flipped)
        )


class TestScorerCacheHook:
    def test_cache_hit_is_bitwise_identical_to_miss(self, scorer, images):
        from repro.serve import EmbeddingCache

        cache = EmbeddingCache()
        scorer.with_score_cache(cache)
        cold = scorer.score(images)
        warm = scorer.score(images)
        assert cold.tobytes() == warm.tobytes()  # bitwise, not approx
        assert cache.hits == len(images)

    def test_cached_matches_uncached_exactly(self, scorer, images):
        from repro.serve import EmbeddingCache

        plain = scorer.score(images)
        scorer.with_score_cache(EmbeddingCache())
        cached = scorer.score(images)
        assert plain.tobytes() == cached.tobytes()

    def test_duplicate_rows_forward_once(self, scorer, images):
        from repro.serve import EmbeddingCache

        cache = EmbeddingCache()
        scorer.with_score_cache(cache)
        batch = np.concatenate([images[:2], images[:2].copy()])
        scores = scorer.score(batch)
        np.testing.assert_array_equal(scores[:2], scores[2:])
        assert len(cache) == 2

    def test_with_score_cache_returns_scorer(self, scorer):
        from repro.serve import EmbeddingCache

        assert scorer.with_score_cache(EmbeddingCache()) is scorer
