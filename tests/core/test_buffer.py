"""Tests for the on-device data buffer."""

import numpy as np
import pytest

from repro.core.buffer import DataBuffer


@pytest.fixture
def rng():
    return np.random.default_rng(55)


def images(rng, n):
    return rng.uniform(0, 1, size=(n, 1, 2, 2)).astype(np.float32)


class TestConstruction:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DataBuffer(0)

    def test_starts_empty(self):
        buf = DataBuffer(4)
        assert buf.size == 0
        assert len(buf) == 0
        assert not buf.is_full

    def test_as_batch_empty_raises(self):
        with pytest.raises(ValueError):
            DataBuffer(4).as_batch()


class TestReplace:
    def test_initial_fill(self, rng):
        buf = DataBuffer(3)
        pool = images(rng, 3)
        kept_old, new_uids = buf.replace(pool, np.arange(3), None, iteration=0)
        assert buf.size == 3
        assert buf.is_full
        assert kept_old.size == 0
        assert new_uids.tolist() == [0, 1, 2]
        np.testing.assert_array_equal(buf.ages, [0, 0, 0])
        np.testing.assert_array_equal(buf.inserted_at, [0, 0, 0])

    def test_survivors_age_and_keep_uid(self, rng):
        buf = DataBuffer(2)
        buf.replace(images(rng, 2), np.arange(2), None, iteration=0)
        pool = np.concatenate([buf.images, images(rng, 2)], axis=0)
        # keep buffer entry 1 and new entry at pool index 2
        buf.replace(pool, np.array([1, 2]), None, iteration=1)
        assert buf.uids[0] == 1  # survivor kept uid
        assert buf.ages[0] == 1  # survivor aged
        assert buf.ages[1] == 0  # fresh entry
        assert buf.inserted_at[1] == 1

    def test_scores_stored_from_pool(self, rng):
        buf = DataBuffer(2)
        pool = images(rng, 4)
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        buf.replace(pool, np.array([1, 3]), scores, iteration=0)
        np.testing.assert_allclose(buf.scores, [0.9, 0.7])

    def test_scores_nan_when_not_provided(self, rng):
        buf = DataBuffer(2)
        buf.replace(images(rng, 2), np.arange(2), None, iteration=0)
        assert np.isnan(buf.scores).all()

    def test_duplicate_indices_raise(self, rng):
        buf = DataBuffer(3)
        with pytest.raises(ValueError):
            buf.replace(images(rng, 3), np.array([0, 0, 1]), None, 0)

    def test_out_of_range_indices_raise(self, rng):
        buf = DataBuffer(3)
        with pytest.raises(ValueError):
            buf.replace(images(rng, 2), np.array([0, 5]), None, 0)

    def test_over_capacity_raises(self, rng):
        buf = DataBuffer(2)
        with pytest.raises(ValueError):
            buf.replace(images(rng, 4), np.arange(3), None, 0)

    def test_score_length_mismatch_raises(self, rng):
        buf = DataBuffer(2)
        with pytest.raises(ValueError):
            buf.replace(images(rng, 2), np.arange(2), np.zeros(3), 0)

    def test_images_are_copies(self, rng):
        buf = DataBuffer(2)
        pool = images(rng, 2)
        buf.replace(pool, np.arange(2), None, 0)
        pool[:] = 0.0
        assert buf.images.any()

    def test_uids_unique_over_time(self, rng):
        buf = DataBuffer(2)
        seen = set()
        buf.replace(images(rng, 2), np.arange(2), None, 0)
        seen.update(buf.uids.tolist())
        for it in range(1, 6):
            pool = np.concatenate([buf.images, images(rng, 2)], axis=0)
            buf.replace(pool, np.array([2, 3]), None, it)  # all fresh
            assert not seen.intersection(buf.uids.tolist())
            seen.update(buf.uids.tolist())


class TestSetScores:
    def test_set_scores(self, rng):
        buf = DataBuffer(3)
        buf.replace(images(rng, 3), np.arange(3), np.zeros(3), 0)
        buf.set_scores(np.array([1]), np.array([0.5]))
        np.testing.assert_allclose(buf.scores, [0.0, 0.5, 0.0])

    def test_set_scores_out_of_range(self, rng):
        buf = DataBuffer(2)
        buf.replace(images(rng, 2), np.arange(2), None, 0)
        with pytest.raises(ValueError):
            buf.set_scores(np.array([5]), np.array([0.5]))
