"""Tests for the contrast-scoring replacement policy (paper Eq. 4)."""

import numpy as np
import pytest

from repro.core.buffer import DataBuffer
from repro.core.lazy import LazyScoringSchedule
from repro.core.replacement import ContrastScoringPolicy
from repro.core.scoring import ContrastScorer
from repro.nn.projection import ProjectionHead
from repro.nn.resnet import resnet_micro


class StubScorer:
    """Deterministic scorer substitute: score = mean pixel value."""

    def __init__(self):
        self.calls = []

    def score(self, images):
        self.calls.append(images.shape[0])
        return images.mean(axis=(1, 2, 3)).astype(np.float64)


@pytest.fixture
def rng():
    return np.random.default_rng(12)


def const_images(values):
    """Batch where image i is constant value values[i] (score = value)."""
    values = np.asarray(values, dtype=np.float32)
    return np.broadcast_to(
        values[:, None, None, None], (len(values), 1, 2, 2)
    ).copy()


class TestTopN:
    def test_selects_highest(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        keep = ContrastScoringPolicy._top_n(scores, 2)
        assert sorted(keep.tolist()) == [1, 3]

    def test_ties_prefer_lower_index(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        keep = ContrastScoringPolicy._top_n(scores, 2)
        assert keep.tolist() == [0, 1]

    def test_n_larger_than_pool(self):
        keep = ContrastScoringPolicy._top_n(np.array([0.3, 0.1]), 5)
        assert sorted(keep.tolist()) == [0, 1]


class TestSelection:
    def test_keeps_top_scorers_eq4(self):
        policy = ContrastScoringPolicy(StubScorer(), capacity=2)
        buf = DataBuffer(2)
        # fill buffer with low-value images
        incoming0 = const_images([0.1, 0.2])
        result = policy.select(buf, incoming0, 0)
        buf.replace(incoming0, result.keep_indices, result.pool_scores, 0)

        # incoming with one high and one low score
        incoming1 = const_images([0.9, 0.05])
        result = policy.select(buf, incoming1, 1)
        # pool scores: [0.1, 0.2, 0.9, 0.05] -> keep {2, 1}
        assert sorted(result.keep_indices.tolist()) == [1, 2]

    def test_pool_scores_complete(self):
        policy = ContrastScoringPolicy(StubScorer(), capacity=2)
        buf = DataBuffer(2)
        incoming = const_images([0.3, 0.6])
        result = policy.select(buf, incoming, 0)
        np.testing.assert_allclose(result.pool_scores, [0.3, 0.6], atol=1e-6)

    def test_num_scored_counts_buffer_and_incoming(self):
        scorer = StubScorer()
        policy = ContrastScoringPolicy(scorer, capacity=2)
        buf = DataBuffer(2)
        inc = const_images([0.5, 0.6])
        r = policy.select(buf, inc, 0)
        buf.replace(inc, r.keep_indices, r.pool_scores, 0)
        r2 = policy.select(buf, const_images([0.7, 0.1]), 1)
        assert r2.num_scored == 4  # 2 buffered + 2 incoming

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ContrastScoringPolicy(StubScorer(), capacity=0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            ContrastScoringPolicy(StubScorer(), capacity=2, score_momentum=1.0)


class TestLazyIntegration:
    def test_lazy_skips_fresh_buffer_entries(self):
        scorer = StubScorer()
        lazy = LazyScoringSchedule(10)
        policy = ContrastScoringPolicy(scorer, capacity=2, lazy=lazy)
        buf = DataBuffer(2)
        inc0 = const_images([0.8, 0.9])
        r = policy.select(buf, inc0, 0)
        buf.replace(inc0, r.keep_indices, r.pool_scores, 0)
        scorer.calls.clear()

        # ages 0: insertion scores are fresh, no re-scoring; only the
        # incoming segment is scored.
        inc1 = const_images([0.01, 0.02])
        r1 = policy.select(buf, inc1, 1)
        assert scorer.calls == [2]
        assert r1.num_scored == 2
        buf.replace(
            np.concatenate([buf.images, inc1]), r1.keep_indices, r1.pool_scores, 1
        )
        scorer.calls.clear()
        inc2 = const_images([0.03, 0.04])
        r2 = policy.select(buf, inc2, 2)
        # buffer entries now age 1: still skipped under T=10
        assert scorer.calls == [2]
        assert r2.num_scored == 2

    def test_lazy_rescores_at_exact_interval(self):
        """Survivors are re-scored exactly when age hits T (Eq. 7)."""
        scorer = StubScorer()
        lazy = LazyScoringSchedule(3)
        policy = ContrastScoringPolicy(scorer, capacity=2, lazy=lazy)
        buf = DataBuffer(2)
        strong = const_images([0.8, 0.9])
        r = policy.select(buf, strong, 0)
        buf.replace(strong, r.keep_indices, r.pool_scores, 0)
        # iterations 1..3: weak newcomers always lose; survivors age 1,2,3
        rescored_at = []
        for it in range(1, 5):
            weak = const_images([0.01, 0.02])
            scorer.calls.clear()
            r = policy.select(buf, weak, it)
            # score_batches pools same-shape segments into one score call:
            # [4] = buffer re-scored with the incoming, [2] = incoming only.
            if scorer.calls == [4]:
                rescored_at.append(it)
            pool = np.concatenate([buf.images, weak])
            buf.replace(pool, r.keep_indices, r.pool_scores, it)
        # ages at select time: it=1 -> 0, it=2 -> 1, it=3 -> 2, it=4 -> 3
        assert rescored_at == [4]

    def test_lazy_reuses_stale_scores_eq8(self):
        """Stored scores drive selection when entries are not re-scored."""
        scorer = StubScorer()
        lazy = LazyScoringSchedule(100)
        policy = ContrastScoringPolicy(scorer, capacity=1, lazy=lazy)
        buf = DataBuffer(1)
        inc0 = const_images([0.5])
        r = policy.select(buf, inc0, 0)
        buf.replace(inc0, r.keep_indices, r.pool_scores, 0)
        # survivor has stored score 0.5; never re-scored under T=100.
        # bump age to 1 via a losing newcomer
        r1 = policy.select(buf, const_images([0.1]), 1)
        pool = np.concatenate([buf.images, const_images([0.1])])
        buf.replace(pool, r1.keep_indices, r1.pool_scores, 1)
        assert buf.ages[0] == 1
        # now a newcomer with score between stale (0.5) and nothing else
        r2 = policy.select(buf, const_images([0.4]), 2)
        assert r2.keep_indices.tolist() == [0]  # stale 0.5 beats fresh 0.4
        r3 = policy.select(buf, const_images([0.6]), 2)
        assert r3.keep_indices.tolist() == [1]  # fresh 0.6 beats stale 0.5

    def test_rescoring_fraction_tracked(self):
        scorer = StubScorer()
        lazy = LazyScoringSchedule(2)
        policy = ContrastScoringPolicy(scorer, capacity=2, lazy=lazy)
        buf = DataBuffer(2)
        inc = const_images([0.9, 0.8])
        r = policy.select(buf, inc, 0)
        buf.replace(inc, r.keep_indices, r.pool_scores, 0)
        for it in range(1, 5):
            weak = const_images([0.01, 0.02])
            r = policy.select(buf, weak, it)
            pool = np.concatenate([buf.images, weak])
            buf.replace(pool, r.keep_indices, r.pool_scores, it)
        assert 0.0 < policy.lazy.rescoring_fraction < 1.0

    def test_nan_scores_always_rescored(self):
        """Entries inserted by a non-scoring path must be scored."""
        scorer = StubScorer()
        policy = ContrastScoringPolicy(scorer, capacity=2, lazy=LazyScoringSchedule(100))
        buf = DataBuffer(2)
        inc = const_images([0.5, 0.6])
        buf.replace(inc, np.arange(2), None, 0)  # scores = NaN
        r = policy.select(buf, const_images([0.1]), 1)
        assert not np.isnan(r.pool_scores[:2]).any()


class TestMomentumScores:
    def test_momentum_blends_old_and_new(self):
        scorer = StubScorer()
        policy = ContrastScoringPolicy(
            scorer, capacity=1, score_momentum=0.5
        )
        buf = DataBuffer(1)
        inc = const_images([0.8])
        r = policy.select(buf, inc, 0)
        buf.replace(inc, r.keep_indices, r.pool_scores, 0)
        assert buf.scores[0] == pytest.approx(0.8, abs=1e-6)
        # survivor is re-scored: fresh score still 0.8 (image unchanged),
        # so blend stays 0.8; now mutate the stored score and re-select.
        buf.set_scores(np.array([0]), np.array([0.4]))
        r2 = policy.select(buf, const_images([0.0]), 1)
        # blended survivor score = 0.5*0.4 + 0.5*0.8 = 0.6
        assert r2.pool_scores[0] == pytest.approx(0.6, abs=1e-6)


class TestWithRealScorer:
    def test_end_to_end_with_real_model(self, rng):
        encoder = resnet_micro(rng=rng)
        projector = ProjectionHead(encoder.feature_dim, out_dim=8, rng=rng)
        scorer = ContrastScorer(encoder, projector)
        policy = ContrastScoringPolicy(scorer, capacity=4)
        buf = DataBuffer(4)
        incoming = rng.uniform(0, 1, size=(4, 3, 8, 8)).astype(np.float32)
        result = policy.select(buf, incoming, 0)
        assert result.keep_indices.shape == (4,)
        assert result.pool_scores.shape == (4,)
        assert (result.pool_scores >= 0).all()
