"""Tests for the stage-1 on-device learning framework."""

import numpy as np
import pytest

from repro.core.framework import OnDeviceContrastiveLearner, StepStats
from repro.core.replacement import ContrastScoringPolicy
from repro.core.scoring import ContrastScorer
from repro.data.stream import StreamSegment, TemporalStream
from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset
from repro.nn.projection import ProjectionHead
from repro.nn.resnet import resnet_micro
from repro.selection import FIFOPolicy, RandomReplacePolicy


@pytest.fixture
def dataset():
    return SyntheticImageDataset(SyntheticConfig("fw", num_classes=4, image_size=8))


@pytest.fixture
def rng():
    return np.random.default_rng(23)


def make_learner(policy_kind, rng, buffer_size=4, dataset=None):
    model_rng = np.random.default_rng(1)
    encoder = resnet_micro(rng=model_rng)
    projector = ProjectionHead(encoder.feature_dim, out_dim=8, rng=model_rng)
    scorer = ContrastScorer(encoder, projector)
    if policy_kind == "cs":
        policy = ContrastScoringPolicy(scorer, buffer_size)
    elif policy_kind == "random":
        policy = RandomReplacePolicy(buffer_size, np.random.default_rng(2))
    else:
        policy = FIFOPolicy(buffer_size)
    return OnDeviceContrastiveLearner(
        encoder, projector, policy, buffer_size, rng, lr=1e-3
    )


class TestConstruction:
    def test_buffer_size_too_small(self, rng):
        with pytest.raises(ValueError):
            make_learner("cs", rng, buffer_size=1)


class TestProcessSegment:
    def test_single_segment_fills_buffer_and_trains(self, dataset, rng):
        learner = make_learner("cs", rng)
        segment = StreamSegment(
            dataset.sample(np.array([0, 1, 2, 3]), rng),
            np.array([0, 1, 2, 3]),
            0,
        )
        stats = learner.process_segment(segment)
        assert isinstance(stats, StepStats)
        assert learner.buffer.size == 4
        assert learner.seen_inputs == 4
        assert learner.iteration == 1
        assert np.isfinite(stats.loss)
        assert stats.select_seconds >= 0
        assert stats.train_seconds > 0

    def test_rejects_empty_segment(self, dataset, rng):
        learner = make_learner("cs", rng)
        empty = StreamSegment(
            np.zeros((0, 3, 8, 8), dtype=np.float32), np.zeros(0, dtype=np.int64), 0
        )
        with pytest.raises(ValueError):
            learner.process_segment(empty)

    def test_training_changes_weights(self, dataset, rng):
        learner = make_learner("cs", rng)
        before = learner.encoder.stem_conv.weight.data.copy()
        segment = StreamSegment(
            dataset.sample(np.array([0, 1, 2, 3]), rng), np.array([0, 1, 2, 3]), 0
        )
        learner.process_segment(segment)
        assert np.abs(learner.encoder.stem_conv.weight.data - before).max() > 0

    def test_loss_generally_decreases(self, dataset, rng):
        learner = make_learner("random", rng)
        stream = TemporalStream(dataset, stc=4, rng=rng)
        losses = [
            learner.process_segment(seg).loss
            for seg in stream.segments(4, 160)
        ]
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_history_accumulates(self, dataset, rng):
        learner = make_learner("fifo", rng)
        stream = TemporalStream(dataset, stc=2, rng=rng)
        for seg in stream.segments(4, 20):
            learner.process_segment(seg)
        assert len(learner.history) == 5
        assert learner.history[-1].seen_inputs == 20


class TestLabelTracking:
    def test_buffer_labels_track_contents_fifo(self, dataset, rng):
        """FIFO with segment == buffer: labels equal the last segment's."""
        learner = make_learner("fifo", rng)
        stream = TemporalStream(dataset, stc=2, rng=rng)
        last = None
        for seg in stream.segments(4, 40):
            learner.process_segment(seg)
            last = seg
        np.testing.assert_array_equal(learner.buffer_labels(), last.labels)

    def test_class_histogram_sums_to_buffer_size(self, dataset, rng):
        learner = make_learner("cs", rng)
        stream = TemporalStream(dataset, stc=3, rng=rng)
        for seg in stream.segments(4, 24):
            learner.process_segment(seg)
        hist = learner.buffer_class_histogram(dataset.num_classes)
        assert hist.sum() == learner.buffer.size

    def test_labels_consistent_with_scoring_selection(self, dataset, rng):
        """Cross-check: labels follow the same keep_indices as images."""
        learner = make_learner("cs", rng)
        stream = TemporalStream(dataset, stc=2, rng=rng)
        for seg in stream.segments(4, 32):
            learner.process_segment(seg)
        # every buffered image should be sampled from its recorded class:
        # verify by nearest aligned prototype (classes are well separated)
        labels = learner.buffer_labels()
        protos = dataset.prototypes
        for img, label in zip(learner.buffer.images, labels):
            best = None
            best_dist = np.inf
            for cls in range(dataset.num_classes):
                for dy in range(8):
                    for dx in range(8):
                        rolled = np.roll(protos[cls], (dy, dx), axis=(1, 2))
                        d = float(np.abs(img - rolled).mean())
                        if d < best_dist:
                            best_dist = d
                            best = cls
            assert best == label


class TestFit:
    def test_fit_with_callback(self, dataset, rng):
        learner = make_learner("random", rng)
        stream = TemporalStream(dataset, stc=2, rng=rng)
        seen = []
        learner.fit(
            stream.segments(4, 20),
            callback=lambda ln, st: seen.append(st.iteration),
        )
        assert seen == [0, 1, 2, 3, 4]

    def test_fit_returns_stats(self, dataset, rng):
        learner = make_learner("random", rng)
        stream = TemporalStream(dataset, stc=2, rng=rng)
        stats = learner.fit(stream.segments(4, 12))
        assert len(stats) == 3

    def test_timing_accessors(self, dataset, rng):
        learner = make_learner("cs", rng)
        assert learner.mean_select_seconds() == 0.0
        assert learner.mean_train_seconds() == 0.0
        stream = TemporalStream(dataset, stc=2, rng=rng)
        for seg in stream.segments(4, 12):
            learner.process_segment(seg)
        assert learner.mean_select_seconds() > 0.0
        assert learner.mean_train_seconds() > 0.0
