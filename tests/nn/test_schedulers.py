"""Tests for learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optim import SGD
from repro.nn.schedulers import (
    ConstantLR,
    CosineDecayLR,
    StepDecayLR,
    WarmupCosineLR,
)


@pytest.fixture
def optimizer():
    return SGD([Parameter(np.zeros(2))], lr=0.1)


class TestConstant:
    def test_lr_never_changes(self, optimizer):
        sched = ConstantLR(optimizer)
        for _ in range(10):
            assert sched.step() == pytest.approx(0.1)
        assert optimizer.lr == pytest.approx(0.1)


class TestStepDecay:
    def test_decays_at_period(self, optimizer):
        sched = StepDecayLR(optimizer, period=3, gamma=0.5)
        lrs = [sched.step() for _ in range(7)]
        assert lrs[0] == pytest.approx(0.1)
        assert lrs[2] == pytest.approx(0.1)
        assert lrs[3] == pytest.approx(0.05)
        assert lrs[6] == pytest.approx(0.025)

    def test_validation(self, optimizer):
        with pytest.raises(ValueError):
            StepDecayLR(optimizer, period=0)
        with pytest.raises(ValueError):
            StepDecayLR(optimizer, period=2, gamma=0.0)


class TestCosine:
    def test_starts_at_base_ends_at_min(self, optimizer):
        sched = CosineDecayLR(optimizer, total_steps=10, min_lr=1e-4)
        first = sched.step()
        assert first == pytest.approx(0.1)
        for _ in range(10):
            last = sched.step()
        assert last == pytest.approx(1e-4, rel=1e-6)

    def test_monotone_decreasing(self, optimizer):
        sched = CosineDecayLR(optimizer, total_steps=20, min_lr=1e-5)
        lrs = [sched.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_clamps_beyond_total(self, optimizer):
        sched = CosineDecayLR(optimizer, total_steps=5, min_lr=1e-4)
        for _ in range(10):
            lr = sched.step()
        assert lr == pytest.approx(1e-4, rel=1e-6)

    def test_validation(self, optimizer):
        with pytest.raises(ValueError):
            CosineDecayLR(optimizer, total_steps=0)
        with pytest.raises(ValueError):
            CosineDecayLR(optimizer, total_steps=5, min_lr=1.0)


class TestWarmupCosine:
    def test_warmup_ramps_linearly(self, optimizer):
        sched = WarmupCosineLR(optimizer, total_steps=20, warmup_steps=4)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [0.025, 0.05, 0.075, 0.1], rtol=1e-6)

    def test_peak_at_end_of_warmup(self, optimizer):
        sched = WarmupCosineLR(optimizer, total_steps=20, warmup_steps=5)
        lrs = [sched.step() for _ in range(20)]
        assert max(lrs) == pytest.approx(0.1)
        assert lrs.index(max(lrs)) == 4

    def test_zero_warmup_is_pure_cosine(self, optimizer):
        a = WarmupCosineLR(optimizer, total_steps=10, warmup_steps=0, min_lr=1e-4)
        first = a.step()
        assert first == pytest.approx(0.1)

    def test_validation(self, optimizer):
        with pytest.raises(ValueError):
            WarmupCosineLR(optimizer, total_steps=5, warmup_steps=5)
        with pytest.raises(ValueError):
            WarmupCosineLR(optimizer, total_steps=0, warmup_steps=0)

    def test_scheduler_actually_drives_optimizer(self, optimizer):
        sched = WarmupCosineLR(optimizer, total_steps=10, warmup_steps=2)
        sched.step()
        assert optimizer.lr == pytest.approx(0.05)
