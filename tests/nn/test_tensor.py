"""Unit tests for the autograd Tensor: op semantics and gradients."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, no_grad, unbroadcast

from tests.helpers import assert_grad_close, leaf


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


class TestConstruction:
    def test_default_dtype_is_float32(self):
        t = Tensor([1.0, 2.0])
        assert t.dtype == np.float32

    def test_float64_array_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_int_input_cast_to_float32(self):
        t = Tensor(np.arange(3))
        assert t.dtype == np.float32

    def test_wrapping_tensor_raises(self):
        with pytest.raises(TypeError):
            Tensor(Tensor([1.0]))

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_item_scalar(self):
        assert Tensor(np.array(3.5)).item() == pytest.approx(3.5)

    def test_item_non_scalar_raises(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros(3)).item()

    def test_zeros_ones_constructors(self):
        z = Tensor.zeros(2, 3)
        o = Tensor.ones(4)
        assert z.shape == (2, 3) and not z.data.any()
        assert o.shape == (4,) and (o.data == 1).all()

    def test_detach_shares_data_but_no_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_copy_is_independent(self):
        t = Tensor(np.ones(3))
        c = t.copy()
        c.data[0] = 5.0
        assert t.data[0] == 1.0


class TestForwardSemantics:
    def test_add_broadcast(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=(4,)))
        np.testing.assert_allclose((a + b).data, a.data + b.data, rtol=1e-6)

    def test_radd_scalar(self):
        t = 2.0 + Tensor([1.0])
        assert t.data[0] == pytest.approx(3.0)

    def test_sub_and_rsub(self):
        t = Tensor([5.0])
        assert (t - 2.0).data[0] == pytest.approx(3.0)
        assert (10.0 - t).data[0] == pytest.approx(5.0)

    def test_mul_div(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(2, 3)) + 5.0)
        np.testing.assert_allclose((a * b).data, a.data * b.data, rtol=1e-6)
        np.testing.assert_allclose((a / b).data, a.data / b.data, rtol=1e-6)

    def test_rtruediv(self):
        t = Tensor([4.0])
        assert (8.0 / t).data[0] == pytest.approx(2.0)

    def test_pow(self):
        t = Tensor([2.0, 3.0])
        np.testing.assert_allclose((t**2).data, [4.0, 9.0], rtol=1e-6)

    def test_pow_tensor_exponent_raises(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=(4, 5)))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data, rtol=1e-5)

    def test_relu(self):
        t = Tensor([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(t.relu().data, [0.0, 0.0, 2.0])

    def test_exp_log_sqrt(self, rng):
        x = np.abs(rng.normal(size=5)) + 0.5
        t = Tensor(x)
        np.testing.assert_allclose(t.exp().data, np.exp(x).astype(np.float32), rtol=1e-6)
        np.testing.assert_allclose(t.log().data, np.log(x).astype(np.float32), rtol=1e-6)
        np.testing.assert_allclose(t.sqrt().data, np.sqrt(x).astype(np.float32), rtol=1e-6)

    def test_tanh_sigmoid(self, rng):
        x = rng.normal(size=5)
        t = Tensor(x)
        np.testing.assert_allclose(t.tanh().data, np.tanh(x).astype(np.float32), rtol=1e-5)
        np.testing.assert_allclose(
            t.sigmoid().data, (1 / (1 + np.exp(-x))).astype(np.float32), rtol=1e-5
        )

    def test_abs(self):
        t = Tensor([-2.0, 3.0])
        np.testing.assert_array_equal(t.abs().data, [2.0, 3.0])

    def test_maximum(self):
        a = Tensor([1.0, 5.0])
        b = Tensor([3.0, 2.0])
        np.testing.assert_array_equal(a.maximum(b).data, [3.0, 5.0])

    def test_clip(self):
        t = Tensor([-2.0, 0.5, 2.0])
        np.testing.assert_array_equal(t.clip(-1.0, 1.0).data, [-1.0, 0.5, 1.0])

    def test_sum_axis_keepdims(self, rng):
        x = rng.normal(size=(2, 3, 4))
        t = Tensor(x)
        np.testing.assert_allclose(
            t.sum(axis=1, keepdims=True).data,
            x.sum(axis=1, keepdims=True).astype(np.float32),
            rtol=1e-5,
        )

    def test_mean_all(self, rng):
        x = rng.normal(size=(4, 5))
        assert Tensor(x).mean().item() == pytest.approx(x.mean(), rel=1e-5)

    def test_max_axis(self, rng):
        x = rng.normal(size=(3, 6))
        np.testing.assert_allclose(
            Tensor(x).max(axis=1).data, x.max(axis=1).astype(np.float32), rtol=1e-6
        )

    def test_reshape_and_flatten(self, rng):
        t = Tensor(rng.normal(size=(2, 3, 4)))
        assert t.reshape(6, 4).shape == (6, 4)
        assert t.reshape((4, 6)).shape == (4, 6)
        assert t.flatten().shape == (2, 12)

    def test_transpose_default_and_axes(self, rng):
        t = Tensor(rng.normal(size=(2, 3, 4)))
        assert t.transpose().shape == (4, 3, 2)
        assert t.transpose(1, 0, 2).shape == (3, 2, 4)
        assert t.T.shape == (4, 3, 2)

    def test_getitem_slice_and_fancy(self, rng):
        x = rng.normal(size=(4, 5)).astype(np.float32)
        t = Tensor(x)
        np.testing.assert_array_equal(t[1:3].data, x[1:3])
        idx = np.array([0, 2])
        np.testing.assert_array_equal(t[idx].data, x[idx])

    def test_concat(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(4, 3)))
        assert Tensor.concat([a, b], axis=0).shape == (6, 3)

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            Tensor.concat([])

    def test_stack(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(2, 3)))
        assert Tensor.stack([a, b]).shape == (2, 2, 3)

    def test_comparison_returns_numpy(self):
        t = Tensor([1.0, 3.0])
        mask = t > 2.0
        assert isinstance(mask, np.ndarray)
        np.testing.assert_array_equal(mask, [False, True])


class TestBackward:
    def test_backward_requires_grad_flag(self):
        t = Tensor([1.0])
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_non_scalar_needs_seed(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_seed_shape_mismatch(self):
        t = Tensor(np.ones(3), requires_grad=True)
        out = t * 2
        with pytest.raises(ValueError):
            out.backward(np.ones(4))

    def test_grad_accumulates_across_backward_calls(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t.sum()).backward()
        (t.sum()).backward()
        np.testing.assert_array_equal(t.grad, [2.0, 2.0])

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        t.sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = x*x + x  =>  dy/dx = 2x + 1
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x + x
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_shared_subexpression(self):
        x = Tensor(np.array([2.0], dtype=np.float64), requires_grad=True)
        s = x * 3.0
        y = s * s  # y = 9x^2, dy/dx = 18x
        y.backward()
        np.testing.assert_allclose(x.grad, [36.0])

    def test_no_grad_context(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._backward is None

    def test_no_grad_nesting_restores(self):
        from repro.nn.tensor import is_grad_enabled

        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestGradCheck:
    """Finite-difference verification of every differentiable op."""

    def test_add_broadcast(self, rng):
        a = leaf(rng, 3, 4)
        b = leaf(rng, 4)
        assert_grad_close(lambda: (a + b).sum(), [a, b])

    def test_mul_broadcast(self, rng):
        a = leaf(rng, 2, 3)
        b = leaf(rng, 1, 3)
        assert_grad_close(lambda: (a * b).sum(), [a, b])

    def test_div(self, rng):
        a = leaf(rng, 4)
        b = Tensor(rng.normal(size=4) + 3.0, requires_grad=True)
        assert_grad_close(lambda: (a / b).sum(), [a, b])

    def test_pow(self, rng):
        a = Tensor(np.abs(rng.normal(size=5)) + 0.5, requires_grad=True)
        assert_grad_close(lambda: (a**3).sum(), [a])

    def test_matmul(self, rng):
        a = leaf(rng, 3, 4)
        b = leaf(rng, 4, 2)
        assert_grad_close(lambda: (a @ b).sum(), [a, b])

    def test_matmul_vec(self, rng):
        a = leaf(rng, 3, 4)
        b = leaf(rng, 4)
        assert_grad_close(lambda: (a @ b).sum(), [a, b])

    def test_exp_log(self, rng):
        a = Tensor(np.abs(rng.normal(size=4)) + 0.5, requires_grad=True)
        assert_grad_close(lambda: (a.exp() + a.log()).sum(), [a])

    def test_sqrt(self, rng):
        a = Tensor(np.abs(rng.normal(size=4)) + 1.0, requires_grad=True)
        assert_grad_close(lambda: a.sqrt().sum(), [a])

    def test_tanh_sigmoid(self, rng):
        a = leaf(rng, 5)
        assert_grad_close(lambda: (a.tanh() + a.sigmoid()).sum(), [a])

    def test_relu(self, rng):
        a = Tensor(rng.normal(size=8) + 0.05, requires_grad=True)
        assert_grad_close(lambda: a.relu().sum(), [a])

    def test_abs(self, rng):
        a = Tensor(rng.normal(size=6) + 0.3, requires_grad=True)
        assert_grad_close(lambda: a.abs().sum(), [a])

    def test_maximum(self, rng):
        a = leaf(rng, 5)
        b = leaf(rng, 5)
        assert_grad_close(lambda: a.maximum(b).sum(), [a, b])

    def test_clip(self, rng):
        a = Tensor(rng.normal(size=8) * 2, requires_grad=True)
        assert_grad_close(lambda: a.clip(-1.0, 1.0).sum(), [a])

    def test_sum_axis(self, rng):
        a = leaf(rng, 3, 4)
        assert_grad_close(lambda: (a.sum(axis=0) ** 2).sum(), [a])

    def test_mean_axis_keepdims(self, rng):
        a = leaf(rng, 2, 3, 4)
        assert_grad_close(lambda: (a.mean(axis=(1, 2), keepdims=True) ** 2).sum(), [a])

    def test_max_reduction(self, rng):
        a = leaf(rng, 3, 5)
        assert_grad_close(lambda: a.max(axis=1).sum(), [a])

    def test_reshape_transpose(self, rng):
        a = leaf(rng, 2, 6)
        assert_grad_close(lambda: (a.reshape(3, 4).transpose() ** 2).sum(), [a])

    def test_getitem(self, rng):
        a = leaf(rng, 5, 3)
        assert_grad_close(lambda: (a[1:4] ** 2).sum(), [a])

    def test_getitem_fancy_repeated_index(self, rng):
        a = leaf(rng, 4)
        idx = np.array([0, 0, 2])
        assert_grad_close(lambda: (a[idx]).sum(), [a])

    def test_concat(self, rng):
        a = leaf(rng, 2, 3)
        b = leaf(rng, 3, 3)
        assert_grad_close(lambda: (Tensor.concat([a, b], axis=0) ** 2).sum(), [a, b])

    def test_stack(self, rng):
        a = leaf(rng, 2, 3)
        b = leaf(rng, 2, 3)
        assert_grad_close(lambda: (Tensor.stack([a, b], axis=1) ** 2).sum(), [a, b])


class TestUnbroadcast:
    def test_no_op_when_shapes_match(self, rng):
        g = rng.normal(size=(3, 4))
        assert unbroadcast(g, (3, 4)) is g

    def test_sums_leading_axes(self, rng):
        g = rng.normal(size=(5, 3, 4))
        out = unbroadcast(g, (3, 4))
        np.testing.assert_allclose(out, g.sum(axis=0))

    def test_sums_expanded_axes(self, rng):
        g = rng.normal(size=(3, 4))
        out = unbroadcast(g, (3, 1))
        np.testing.assert_allclose(out, g.sum(axis=1, keepdims=True))

    def test_scalar_target(self, rng):
        g = rng.normal(size=(2, 2))
        out = unbroadcast(g, ())
        assert out.shape == ()
        np.testing.assert_allclose(out, g.sum())
