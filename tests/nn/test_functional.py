"""Gradient and semantics tests for repro.nn.functional."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.helpers import assert_grad_close, leaf


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestConv2d:
    def test_output_shape(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        w = Tensor(rng.normal(size=(5, 3, 3, 3)).astype(np.float32))
        out = F.conv2d(x, w, stride=1, padding=1)
        assert out.shape == (2, 5, 8, 8)

    def test_stride_2_shape(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 8, 8)).astype(np.float32))
        w = Tensor(rng.normal(size=(4, 2, 3, 3)).astype(np.float32))
        assert F.conv2d(x, w, stride=2, padding=1).shape == (1, 4, 4, 4)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 8, 8)))
        w = Tensor(rng.normal(size=(4, 2, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_non_4d_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(rng.normal(size=(3, 8, 8))), Tensor(rng.normal(size=(4, 3, 3, 3))))

    def test_identity_kernel(self):
        """A 1x1 kernel of ones with one in/out channel copies the input."""
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        w = Tensor(np.ones((1, 1, 1, 1), dtype=np.float32))
        np.testing.assert_allclose(F.conv2d(x, w).data, x.data)

    def test_grad_x_w_b(self, rng):
        x = leaf(rng, 2, 2, 5, 5)
        w = leaf(rng, 3, 2, 3, 3)
        b = leaf(rng, 3)
        assert_grad_close(
            lambda: (F.conv2d(x, w, b, stride=1, padding=1) ** 2).sum(),
            [x, w, b],
            atol=1e-5,
            rtol=1e-3,
        )

    def test_grad_stride_2_no_pad(self, rng):
        x = leaf(rng, 1, 2, 6, 6)
        w = leaf(rng, 2, 2, 2, 2)
        assert_grad_close(
            lambda: (F.conv2d(x, w, stride=2, padding=0) ** 2).sum(),
            [x, w],
            atol=1e-5,
            rtol=1e-3,
        )


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        np.testing.assert_array_equal(out.data[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            F.max_pool2d(Tensor(rng.normal(size=(1, 1, 5, 5))), 2)

    def test_overlapping_stride_unsupported(self, rng):
        with pytest.raises(NotImplementedError):
            F.max_pool2d(Tensor(rng.normal(size=(1, 1, 4, 4))), 2, stride=1)

    def test_max_pool_grad(self, rng):
        x = leaf(rng, 2, 3, 4, 4)
        assert_grad_close(lambda: (F.max_pool2d(x, 2) ** 2).sum(), [x])

    def test_avg_pool_grad(self, rng):
        x = leaf(rng, 2, 3, 4, 4)
        assert_grad_close(lambda: (F.avg_pool2d(x, 2) ** 2).sum(), [x])

    def test_global_avg_pool(self, rng):
        x = Tensor(rng.normal(size=(2, 5, 3, 3)).astype(np.float32))
        out = F.global_avg_pool2d(x)
        assert out.shape == (2, 5)
        np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)), rtol=1e-5)


class TestSoftmaxFamily:
    def test_softmax_sums_to_one(self, rng):
        x = Tensor(rng.normal(size=(4, 7)))
        s = F.softmax(x, axis=1)
        np.testing.assert_allclose(s.data.sum(axis=1), np.ones(4), rtol=1e-5)

    def test_softmax_stability_large_values(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        s = F.softmax(x, axis=1)
        np.testing.assert_allclose(s.data, [[0.5, 0.5]], rtol=1e-5)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        np.testing.assert_allclose(
            F.log_softmax(x, axis=1).data,
            np.log(F.softmax(x, axis=1).data),
            rtol=1e-5,
            atol=1e-6,
        )

    def test_logsumexp_matches_scipy(self, rng):
        from scipy.special import logsumexp as scipy_lse

        x = rng.normal(size=(4, 6))
        out = F.logsumexp(Tensor(x), axis=1)
        np.testing.assert_allclose(out.data, scipy_lse(x, axis=1).astype(np.float32), rtol=1e-5)

    def test_logsumexp_keepdims(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        assert F.logsumexp(x, axis=1, keepdims=True).shape == (4, 1)

    def test_softmax_grad(self, rng):
        x = leaf(rng, 3, 5)
        w = Tensor(rng.normal(size=(3, 5)).astype(np.float64))
        assert_grad_close(lambda: (F.softmax(x, axis=1) * w).sum(), [x])

    def test_log_softmax_grad(self, rng):
        x = leaf(rng, 3, 5)
        w = Tensor(rng.normal(size=(3, 5)).astype(np.float64))
        assert_grad_close(lambda: (F.log_softmax(x, axis=1) * w).sum(), [x])

    def test_logsumexp_grad(self, rng):
        x = leaf(rng, 4, 3)
        assert_grad_close(lambda: F.logsumexp(x, axis=1).sum(), [x])


class TestL2Normalize:
    def test_unit_norm(self, rng):
        x = Tensor(rng.normal(size=(6, 4)))
        z = F.l2_normalize(x, axis=1)
        np.testing.assert_allclose(
            np.linalg.norm(z.data, axis=1), np.ones(6), rtol=1e-5
        )

    def test_zero_vector_safe(self):
        x = Tensor(np.zeros((1, 3)))
        z = F.l2_normalize(x)
        assert np.isfinite(z.data).all()

    def test_grad(self, rng):
        x = Tensor(rng.normal(size=(3, 4)) + 0.1, requires_grad=True)
        w = Tensor(rng.normal(size=(3, 4)).astype(np.float64))
        assert_grad_close(lambda: (F.l2_normalize(x, axis=1) * w).sum(), [x])

    def test_grad_orthogonal_to_direction(self, rng):
        """d/dx ||x/||x|| has no component along x (norm is invariant)."""
        x = Tensor(rng.normal(size=(1, 5)).astype(np.float64), requires_grad=True)
        w = rng.normal(size=(1, 5))
        (F.l2_normalize(x, axis=1) * Tensor(w)).sum().backward()
        dot = float((x.grad * x.data).sum())
        assert dot == pytest.approx(0.0, abs=1e-10)


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        out = F.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_p_zero_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        assert F.dropout(x, 0.0, rng) is x

    def test_invalid_p_raises(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, rng)

    def test_expected_scale_preserved(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_grad_masks_match_forward(self, rng):
        x = Tensor(np.ones((10, 10), dtype=np.float64), requires_grad=True)
        out = F.dropout(x, 0.5, np.random.default_rng(0))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, out.data)


class TestOneHot:
    def test_basic(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_non_1d_raises(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)


class TestCosineSimilarity:
    def test_identical_rows(self, rng):
        a = rng.normal(size=(4, 8))
        np.testing.assert_allclose(F.cosine_similarity(a, a), np.ones(4), rtol=1e-9)

    def test_opposite_rows(self, rng):
        a = rng.normal(size=(4, 8))
        np.testing.assert_allclose(F.cosine_similarity(a, -a), -np.ones(4), rtol=1e-9)

    def test_orthogonal(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        assert F.cosine_similarity(a, b)[0] == pytest.approx(0.0)


class TestPadChannels:
    def test_shape_and_content(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4, 4)).astype(np.float32))
        out = F.pad_channels(x, 2)
        assert out.shape == (2, 5, 4, 4)
        np.testing.assert_array_equal(out.data[:, :3], x.data)
        assert not out.data[:, 3:].any()

    def test_zero_extra_identity(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 2, 2)))
        assert F.pad_channels(x, 0) is x

    def test_negative_raises(self, rng):
        with pytest.raises(ValueError):
            F.pad_channels(Tensor(rng.normal(size=(1, 2, 2, 2))), -1)

    def test_grad(self, rng):
        x = leaf(rng, 1, 2, 3, 3)
        assert_grad_close(lambda: (F.pad_channels(x, 3) ** 2).sum(), [x])
