"""Tests for NT-Xent (paper Eq. 1) and cross-entropy losses."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.losses import CrossEntropyLoss, NTXentLoss, cross_entropy, nt_xent_loss
from repro.nn.tensor import Tensor

from tests.helpers import assert_grad_close


@pytest.fixture
def rng():
    return np.random.default_rng(11)


def normalized(rng, n, d, dtype=np.float32):
    z = rng.normal(size=(n, d)).astype(dtype)
    return z / np.linalg.norm(z, axis=1, keepdims=True)


def naive_nt_xent(z1, z2, tau):
    """Direct transcription of paper Eq. 1, averaged over all 2N anchors."""
    z = np.concatenate([z1, z2], axis=0).astype(np.float64)
    n = z1.shape[0]
    losses = []
    for i in range(2 * n):
        pos = (i + n) % (2 * n)
        numer = np.exp(z[i] @ z[pos] / tau)
        denom = 0.0
        for j in range(2 * n):
            if j == i:
                continue
            denom += np.exp(z[i] @ z[j] / tau)
        losses.append(-np.log(numer / denom))
    return float(np.mean(losses))


class TestNTXent:
    def test_matches_naive_reference(self, rng):
        z1 = normalized(rng, 5, 8)
        z2 = normalized(rng, 5, 8)
        fast = nt_xent_loss(Tensor(z1), Tensor(z2), temperature=0.5).item()
        slow = naive_nt_xent(z1, z2, 0.5)
        assert fast == pytest.approx(slow, rel=1e-4)

    def test_matches_naive_low_temperature(self, rng):
        z1 = normalized(rng, 4, 6)
        z2 = normalized(rng, 4, 6)
        fast = nt_xent_loss(Tensor(z1), Tensor(z2), temperature=0.07).item()
        slow = naive_nt_xent(z1, z2, 0.07)
        assert fast == pytest.approx(slow, rel=1e-3)

    def test_perfect_alignment_lower_loss(self, rng):
        z1 = normalized(rng, 6, 8)
        noisy = normalized(rng, 6, 8)
        aligned = nt_xent_loss(Tensor(z1), Tensor(z1.copy()), 0.5).item()
        random_pairs = nt_xent_loss(Tensor(z1), Tensor(noisy), 0.5).item()
        assert aligned < random_pairs

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            nt_xent_loss(Tensor(normalized(rng, 4, 8)), Tensor(normalized(rng, 5, 8)))

    def test_single_pair_raises(self, rng):
        with pytest.raises(ValueError):
            nt_xent_loss(Tensor(normalized(rng, 1, 8)), Tensor(normalized(rng, 1, 8)))

    def test_bad_temperature_raises(self, rng):
        with pytest.raises(ValueError):
            nt_xent_loss(Tensor(normalized(rng, 4, 8)), Tensor(normalized(rng, 4, 8)), 0.0)

    def test_non_2d_raises(self, rng):
        z = Tensor(rng.normal(size=(2, 3, 4)))
        with pytest.raises(ValueError):
            nt_xent_loss(z, z)

    def test_gradient_vs_finite_difference(self, rng):
        z1 = Tensor(
            rng.normal(size=(3, 4)).astype(np.float64), requires_grad=True
        )
        z2 = Tensor(
            rng.normal(size=(3, 4)).astype(np.float64), requires_grad=True
        )
        assert_grad_close(
            lambda: nt_xent_loss(z1, z2, 0.5), [z1, z2], atol=1e-6, rtol=1e-3
        )

    def test_loss_decreases_under_gradient_descent(self, rng):
        """Directly optimizing raw projections should reduce the loss."""
        z1 = Tensor(rng.normal(size=(6, 8)).astype(np.float32), requires_grad=True)
        z2 = Tensor(rng.normal(size=(6, 8)).astype(np.float32), requires_grad=True)

        def loss_of():
            return nt_xent_loss(
                F.l2_normalize(z1, axis=1), F.l2_normalize(z2, axis=1), 0.5
            )

        first = loss_of().item()
        for _ in range(50):
            z1.zero_grad()
            z2.zero_grad()
            loss = loss_of()
            loss.backward()
            z1.data = z1.data - 0.5 * z1.grad
            z2.data = z2.data - 0.5 * z2.grad
        assert loss_of().item() < first

    def test_callable_wrapper(self, rng):
        z1, z2 = normalized(rng, 4, 8), normalized(rng, 4, 8)
        loss_fn = NTXentLoss(0.5)
        assert loss_fn(Tensor(z1), Tensor(z2)).item() == pytest.approx(
            nt_xent_loss(Tensor(z1), Tensor(z2), 0.5).item()
        )

    def test_wrapper_bad_temperature(self):
        with pytest.raises(ValueError):
            NTXentLoss(-1.0)


class TestPerSampleLoss:
    def test_matches_mean_loss(self, rng):
        """Mean of per-sample losses equals the scalar loss."""
        z1, z2 = normalized(rng, 5, 8), normalized(rng, 5, 8)
        loss_fn = NTXentLoss(0.5)
        per = loss_fn.per_sample(Tensor(z1), Tensor(z2))
        total = loss_fn(Tensor(z1), Tensor(z2)).item()
        assert per.mean() == pytest.approx(total, rel=1e-4)

    def test_aligned_pair_has_lowest_loss(self, rng):
        z1 = normalized(rng, 5, 8)
        z2 = normalized(rng, 5, 8)
        z2[0] = z1[0]  # pair 0 perfectly aligned
        per = NTXentLoss(0.5).per_sample(Tensor(z1), Tensor(z2))
        assert per.argmin() == 0

    def test_shape(self, rng):
        z1, z2 = normalized(rng, 7, 4), normalized(rng, 7, 4)
        assert NTXentLoss(0.5).per_sample(Tensor(z1), Tensor(z2)).shape == (7,)


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.normal(size=(4, 3)).astype(np.float32)
        labels = np.array([0, 2, 1, 1])
        loss = cross_entropy(Tensor(logits), labels).item()
        # manual
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(4), labels].mean()
        assert loss == pytest.approx(expected, rel=1e-5)

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -50.0, dtype=np.float32)
        logits[0, 1] = 50.0
        logits[1, 0] = 50.0
        loss = cross_entropy(Tensor(logits), np.array([1, 0])).item()
        assert loss == pytest.approx(0.0, abs=1e-5)

    def test_uniform_prediction_log_c(self):
        logits = np.zeros((5, 4), dtype=np.float32)
        loss = cross_entropy(Tensor(logits), np.zeros(5, dtype=int)).item()
        assert loss == pytest.approx(np.log(4), rel=1e-5)

    def test_batch_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.normal(size=(3, 2))), np.array([0, 1]))

    def test_non_2d_raises(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.normal(size=(3,))), np.array([0, 1, 0]))

    def test_gradient(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)).astype(np.float64), requires_grad=True)
        labels = np.array([0, 2, 1, 1])
        assert_grad_close(lambda: cross_entropy(logits, labels), [logits])

    def test_callable_wrapper(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)).astype(np.float32))
        labels = np.array([1, 0, 3])
        assert CrossEntropyLoss()(logits, labels).item() == pytest.approx(
            cross_entropy(logits, labels).item()
        )
