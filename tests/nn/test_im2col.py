"""Tests for im2col/col2im against naive sliding-window references."""

import numpy as np
import pytest

from repro.nn.im2col import col2im, conv_output_size, im2col


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def naive_im2col(x, kernel, stride, padding):
    kh, kw = kernel
    n, c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - kh) // stride + 1
    out_w = (x.shape[3] - kw) // stride + 1
    cols = np.zeros((n, out_h, out_w, c * kh * kw), dtype=x.dtype)
    for b in range(n):
        for i in range(out_h):
            for j in range(out_w):
                patch = x[b, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                cols[b, i, j] = patch.reshape(-1)
    return cols


class TestConvOutputSize:
    def test_basic(self):
        assert conv_output_size(8, 3, 1, 1) == 8
        assert conv_output_size(8, 3, 2, 1) == 4
        assert conv_output_size(5, 5, 1, 0) == 1

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestIm2col:
    @pytest.mark.parametrize(
        "shape,kernel,stride,padding",
        [
            ((2, 3, 8, 8), (3, 3), 1, 1),
            ((1, 1, 5, 5), (3, 3), 2, 0),
            ((2, 4, 6, 6), (1, 1), 1, 0),
            ((1, 2, 7, 9), (3, 3), 2, 1),
            ((3, 2, 4, 4), (2, 2), 2, 0),
        ],
    )
    def test_matches_naive(self, rng, shape, kernel, stride, padding):
        x = rng.normal(size=shape).astype(np.float32)
        fast = im2col(x, kernel, stride, padding)
        slow = naive_im2col(x, kernel, stride, padding)
        np.testing.assert_allclose(fast, slow, rtol=1e-6)

    def test_rejects_non_4d(self, rng):
        with pytest.raises(ValueError):
            im2col(rng.normal(size=(3, 8, 8)), (3, 3), 1, 1)

    def test_column_layout_matches_weight_flatten(self, rng):
        """cols @ w.reshape(F,-1).T must equal direct convolution."""
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float64)
        w = rng.normal(size=(3, 2, 3, 3)).astype(np.float64)
        cols = im2col(x, (3, 3), 1, 1)
        out = cols @ w.reshape(3, -1).T  # (1, 5, 5, 3)
        # naive convolution
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros((1, 5, 5, 3))
        for f in range(3):
            for i in range(5):
                for j in range(5):
                    ref[0, i, j, f] = (xp[0, :, i : i + 3, j : j + 3] * w[f]).sum()
        np.testing.assert_allclose(out, ref, rtol=1e-9)


class TestCol2im:
    @pytest.mark.parametrize(
        "shape,kernel,stride,padding",
        [
            ((2, 3, 8, 8), (3, 3), 1, 1),
            ((1, 1, 5, 5), (3, 3), 2, 0),
            ((2, 2, 6, 6), (2, 2), 2, 0),
            ((1, 2, 7, 9), (3, 3), 2, 1),
        ],
    )
    def test_adjoint_of_im2col(self, rng, shape, kernel, stride, padding):
        """col2im is the transpose of im2col: <im2col(x), c> == <x, col2im(c)>."""
        x = rng.normal(size=shape).astype(np.float64)
        cols_shape = naive_im2col(x, kernel, stride, padding).shape
        c = rng.normal(size=cols_shape).astype(np.float64)
        lhs = (im2col(x, kernel, stride, padding) * c).sum()
        rhs = (x * col2im(c, shape, kernel, stride, padding)).sum()
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_shape_mismatch_raises(self, rng):
        c = rng.normal(size=(1, 4, 4, 9))
        with pytest.raises(ValueError):
            col2im(c, (1, 1, 5, 5), (3, 3), 1, 1)

    def test_overlap_accumulates(self):
        """Stride 1 with a 2x2 kernel: interior pixels belong to 4 windows."""
        x_shape = (1, 1, 3, 3)
        cols = np.ones((1, 2, 2, 4))
        out = col2im(cols, x_shape, (2, 2), 1, 0)
        expected = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=float)
        np.testing.assert_allclose(out[0, 0], expected)


class TestIm2colWorkspace:
    """Workspace-backed unfolds must be value-identical to fresh ones."""

    @pytest.mark.parametrize(
        "shape,kernel,stride,padding",
        [
            ((2, 3, 8, 8), (3, 3), 1, 1),
            ((1, 1, 5, 5), (3, 3), 2, 0),
            ((2, 2, 6, 6), (2, 2), 2, 0),
            ((1, 2, 7, 9), (3, 3), 2, 1),
        ],
    )
    def test_matches_fresh_allocation(self, rng, shape, kernel, stride, padding):
        from repro.nn.im2col import Im2colWorkspace

        ws = Im2colWorkspace()
        x = rng.normal(size=shape).astype(np.float32)
        fresh = im2col(x, kernel, stride, padding)
        # run twice so the second call exercises the buffer-reuse path
        im2col(x, kernel, stride, padding, workspace=ws)
        cached = im2col(x, kernel, stride, padding, workspace=ws)
        np.testing.assert_array_equal(cached, fresh)
        assert ws.hits > 0

    def test_border_rezeroed_on_reuse(self, rng):
        """A reused padded buffer must not leak the previous call's data."""
        from repro.nn.im2col import Im2colWorkspace

        ws = Im2colWorkspace()
        a = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        b = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        im2col(a, (3, 3), 1, 2, workspace=ws)  # padding 2: border strips
        out = im2col(b, (3, 3), 1, 2, workspace=ws)
        np.testing.assert_array_equal(out, im2col(b, (3, 3), 1, 2))

    def test_stats_and_clear(self, rng):
        from repro.nn.im2col import Im2colWorkspace

        ws = Im2colWorkspace()
        x = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        im2col(x, (3, 3), 1, 1, workspace=ws)
        im2col(x, (3, 3), 1, 1, workspace=ws)
        stats = ws.stats()
        assert stats["misses"] == 2 and stats["hits"] == 2  # pad + cols buffers
        assert 0.0 < stats["hit_rate"] <= 1.0 and stats["bytes"] > 0
        ws.clear()
        assert ws.stats()["buffers"] == 0

    def test_mixed_dtypes_share_arenas(self, rng):
        from repro.nn.im2col import Im2colWorkspace

        ws = Im2colWorkspace()
        x32 = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        out64 = im2col(x32.astype(np.float64), (3, 3), 1, 1, workspace=ws)
        assert out64.dtype == np.float64
        out32 = im2col(x32, (3, 3), 1, 1, workspace=ws)
        assert out32.dtype == np.float32
        np.testing.assert_array_equal(out32, im2col(x32, (3, 3), 1, 1))

    def test_memory_bounded_across_distinct_shapes(self, rng):
        """Variable batch sizes (the fused scoring path) must not grow
        the arena count — one arena per role, sized to the max seen."""
        from repro.nn.im2col import Im2colWorkspace

        ws = Im2colWorkspace()
        for n in (1, 5, 3, 7, 2, 7):
            x = rng.normal(size=(n, 2, 6, 6)).astype(np.float32)
            out = im2col(x, (3, 3), 1, 1, workspace=ws)
            np.testing.assert_array_equal(out, im2col(x, (3, 3), 1, 1))
        stats = ws.stats()
        assert stats["buffers"] == 2  # pad + cols arenas, regardless of shapes
        # arenas only grow to the largest request (n=7), never per shape
        x7 = rng.normal(size=(7, 2, 6, 6)).astype(np.float32)
        expected = im2col(x7, (3, 3), 1, 1, workspace=None)
        assert stats["bytes"] <= 2 * max(expected.nbytes, 7 * 2 * 8 * 8 * 4)


class TestConv2dWorkspaceGating:
    """conv2d must only reuse the shared workspace on gradient-free passes."""

    def test_grad_forward_owns_its_columns(self, rng):
        from repro.nn import functional as F
        from repro.nn.im2col import default_workspace
        from repro.nn.tensor import Tensor

        x = Tensor(rng.normal(size=(2, 2, 6, 6)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 2, 3, 3)).astype(np.float32), requires_grad=True)
        ws = default_workspace()
        ws.clear()
        before = ws.stats()["misses"]
        F.conv2d(x, w, stride=1, padding=1).sum().backward()
        assert ws.stats()["misses"] == before  # workspace untouched
        assert w.grad is not None

    def test_nograd_forward_matches_grad_forward(self, rng):
        from repro.nn import functional as F
        from repro.nn.tensor import Tensor, no_grad

        x = Tensor(rng.normal(size=(2, 2, 6, 6)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 2, 3, 3)).astype(np.float32), requires_grad=True)
        with_grad = F.conv2d(x, w, stride=1, padding=1).data
        with no_grad():
            F.conv2d(x, w, stride=1, padding=1)  # warm the workspace
            without = F.conv2d(x, w, stride=1, padding=1).data
        np.testing.assert_array_equal(with_grad, without)

    def test_interleaved_grad_and_nograd_backward_correct(self, rng):
        """A no_grad forward between forward and backward must not corrupt
        the autograd convolution's retained columns."""
        from repro.nn import functional as F
        from repro.nn.tensor import Tensor, no_grad

        x = Tensor(rng.normal(size=(2, 2, 6, 6)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 2, 3, 3)).astype(np.float32), requires_grad=True)

        out = F.conv2d(x, w, stride=1, padding=1)
        with no_grad():
            F.conv2d(Tensor(rng.normal(size=(2, 2, 6, 6)).astype(np.float32)), w,
                     stride=1, padding=1)
        out.sum().backward()
        grad_interleaved = w.grad.copy()

        x2 = Tensor(x.data.copy(), requires_grad=True)
        w2 = Tensor(w.data.copy(), requires_grad=True)
        F.conv2d(x2, w2, stride=1, padding=1).sum().backward()
        np.testing.assert_array_equal(grad_interleaved, w2.grad)
