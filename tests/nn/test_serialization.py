"""Tests for checkpoint save/load."""

import numpy as np
import pytest

from repro.nn.resnet import resnet_micro
from repro.nn.serialization import load_module, load_state, save_module, save_state
from repro.nn.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(13)


class TestStateRoundtrip:
    def test_save_load_state(self, tmp_path, rng):
        state = {"a": rng.normal(size=(3, 3)), "b.c": rng.normal(size=(2,))}
        path = str(tmp_path / "ckpt.npz")
        save_state(state, path)
        loaded = load_state(path)
        assert set(loaded) == {"a", "b.c"}
        np.testing.assert_array_equal(loaded["a"], state["a"])

    def test_creates_parent_dirs(self, tmp_path, rng):
        path = str(tmp_path / "deep" / "nested" / "ckpt.npz")
        save_state({"x": np.ones(2)}, path)
        assert load_state(path)["x"].shape == (2,)


class TestModuleRoundtrip:
    def test_module_roundtrip_preserves_forward(self, tmp_path, rng):
        enc = resnet_micro(rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        enc(x)  # touch running stats so buffers are non-trivial
        enc.eval()
        expected = enc(x).data.copy()

        path = str(tmp_path / "enc.npz")
        save_module(enc, path)

        enc2 = resnet_micro(rng=np.random.default_rng(999))
        load_module(enc2, path)
        enc2.eval()
        np.testing.assert_allclose(enc2(x).data, expected, rtol=1e-6)

    def test_buffers_roundtrip(self, tmp_path, rng):
        enc = resnet_micro(rng=rng)
        enc(Tensor(rng.normal(size=(4, 3, 8, 8)).astype(np.float32)))
        path = str(tmp_path / "enc.npz")
        save_module(enc, path)
        enc2 = resnet_micro(rng=np.random.default_rng(1))
        load_module(enc2, path)
        for (name_a, buf_a), (name_b, buf_b) in zip(
            enc.named_buffers(), enc2.named_buffers()
        ):
            assert name_a == name_b
            np.testing.assert_array_equal(buf_a, buf_b)
