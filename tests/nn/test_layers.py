"""Tests for the Module system and built-in layers."""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
)
from repro.nn.tensor import Tensor

from tests.helpers import assert_grad_close


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TinyNet(Module):
    """Small composite model used to exercise traversal."""

    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=rng)
        self.blocks = ModuleList([Linear(8, 8, rng=rng), Linear(8, 8, rng=rng)])
        self.head = Linear(8, 2, rng=rng)

    def forward(self, x):
        x = self.fc1(x).relu()
        for block in self.blocks:
            x = block(x).relu()
        return self.head(x)


class TestModuleTraversal:
    def test_named_parameters_counts(self, rng):
        net = TinyNet(rng)
        names = [n for n, _ in net.named_parameters()]
        # 4 linears x (weight, bias)
        assert len(names) == 8
        assert "fc1.weight" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names
        assert "head.weight" in names

    def test_parameters_are_parameter_instances(self, rng):
        net = TinyNet(rng)
        assert all(isinstance(p, Parameter) for p in net.parameters())

    def test_num_parameters(self, rng):
        net = TinyNet(rng)
        expected = (4 * 8 + 8) + 2 * (8 * 8 + 8) + (8 * 2 + 2)
        assert net.num_parameters() == expected

    def test_train_eval_propagates(self, rng):
        net = TinyNet(rng)
        net.eval()
        assert not net.training
        assert not net.blocks[0].training
        net.train()
        assert net.blocks[1].training

    def test_zero_grad_clears_all(self, rng):
        net = TinyNet(rng)
        x = Tensor(rng.normal(size=(3, 4)).astype(np.float32))
        net(x).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_state_dict_roundtrip(self, rng):
        net = TinyNet(rng)
        state = net.state_dict()
        net2 = TinyNet(np.random.default_rng(7))
        net2.load_state_dict(state)
        for (_, p1), (_, p2) in zip(net.named_parameters(), net2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_state_dict_is_a_copy(self, rng):
        net = TinyNet(rng)
        state = net.state_dict()
        state["fc1.weight"][:] = 0
        assert net.fc1.weight.data.any()

    def test_load_state_dict_missing_key_raises(self, rng):
        net = TinyNet(rng)
        state = net.state_dict()
        del state["fc1.weight"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_unexpected_key_raises(self, rng):
        net = TinyNet(rng)
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_shape_mismatch_raises(self, rng):
        net = TinyNet(rng)
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestLinear:
    def test_forward_matches_manual(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(5, 3)).astype(np.float32)
        out = layer(Tensor(x))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_no_bias(self, rng):
        layer = Linear(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        names = [n for n, _ in layer.named_parameters()]
        assert names == ["weight"]

    def test_wrong_input_dim_raises(self, rng):
        layer = Linear(3, 2, rng=rng)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((1, 4))))

    def test_invalid_dims_raise(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 2, rng=rng)

    def test_deterministic_init_from_seeded_rng(self):
        a = Linear(4, 4, rng=np.random.default_rng(3))
        b = Linear(4, 4, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestConv2dLayer:
    def test_forward_shape(self, rng):
        layer = Conv2d(3, 8, 3, stride=1, padding=1, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 3, 6, 6)).astype(np.float32)))
        assert out.shape == (2, 8, 6, 6)

    def test_bias_toggle(self, rng):
        assert Conv2d(1, 1, 3, bias=True, rng=rng).bias is not None
        assert Conv2d(1, 1, 3, bias=False, rng=rng).bias is None


class TestBatchNorm2d:
    def test_train_mode_normalizes_batch(self, rng):
        bn = BatchNorm2d(4)
        x = Tensor(rng.normal(3.0, 2.0, size=(8, 4, 5, 5)).astype(np.float32))
        out = bn(x)
        mean = out.data.mean(axis=(0, 2, 3))
        std = out.data.std(axis=(0, 2, 3))
        np.testing.assert_allclose(mean, np.zeros(4), atol=1e-5)
        np.testing.assert_allclose(std, np.ones(4), atol=1e-3)

    def test_running_stats_update(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor(rng.normal(5.0, 1.0, size=(16, 2, 4, 4)).astype(np.float32))
        bn(x)
        running_mean = bn.get_buffer("running_mean")
        assert running_mean == pytest.approx(
            0.5 * x.data.mean(axis=(0, 2, 3)), abs=1e-4
        )

    def test_eval_mode_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.normal(size=(8, 2, 4, 4)).astype(np.float32))
        for _ in range(20):
            bn(x)
        bn.eval()
        single = Tensor(x.data[:1])
        out = bn(single)
        # eval output must not depend on other batch entries
        out_full = bn(x)
        np.testing.assert_allclose(out.data, out_full.data[:1], rtol=1e-5)

    def test_eval_deterministic(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(size=(4, 3, 4, 4)).astype(np.float32))
        bn(x)
        bn.eval()
        np.testing.assert_array_equal(bn(x).data, bn(x).data)

    def test_wrong_channels_raises(self, rng):
        bn = BatchNorm2d(3)
        with pytest.raises(ValueError):
            bn(Tensor(np.zeros((1, 4, 2, 2))))

    def test_train_grad_x_gamma_beta(self, rng):
        bn = BatchNorm2d(2)
        bn.gamma.data = rng.normal(1.0, 0.1, size=2).astype(np.float64)
        bn.beta.data = rng.normal(0.0, 0.1, size=2).astype(np.float64)
        x = Tensor(rng.normal(size=(4, 2, 3, 3)).astype(np.float64), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 2, 3, 3)).astype(np.float64))
        assert_grad_close(
            lambda: (bn(x) * w).sum(), [x, bn.gamma, bn.beta], atol=1e-5, rtol=1e-3
        )

    def test_eval_grad_x(self, rng):
        bn = BatchNorm2d(2)
        # establish non-trivial running stats
        bn(Tensor(rng.normal(2.0, 3.0, size=(16, 2, 4, 4)).astype(np.float32)))
        bn.eval()
        bn.gamma.data = bn.gamma.data.astype(np.float64)
        bn.beta.data = bn.beta.data.astype(np.float64)
        x = Tensor(rng.normal(size=(3, 2, 2, 2)).astype(np.float64), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 2, 2)).astype(np.float64))
        assert_grad_close(
            lambda: (bn(x) * w).sum(), [x, bn.gamma, bn.beta], atol=1e-5, rtol=1e-3
        )

    def test_buffers_in_state_dict(self, rng):
        bn = BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state
        assert "running_var" in state


class TestContainers:
    def test_sequential_applies_in_order(self, rng):
        seq = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        x = Tensor(rng.normal(size=(3, 4)).astype(np.float32))
        manual = seq[2](seq[1](seq[0](x)))
        np.testing.assert_array_equal(seq(x).data, manual.data)

    def test_sequential_len_getitem(self, rng):
        seq = Sequential(Linear(2, 2, rng=rng), ReLU())
        assert len(seq) == 2
        assert isinstance(seq[1], ReLU)

    def test_sequential_parameters_traversed(self, rng):
        seq = Sequential(Linear(2, 3, rng=rng), Linear(3, 2, rng=rng))
        assert len(seq.parameters()) == 4

    def test_modulelist_append_iter(self, rng):
        ml = ModuleList()
        ml.append(Identity())
        ml.append(ReLU())
        assert len(ml) == 2
        assert isinstance(list(ml)[1], ReLU)

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(2, 2)))
        assert Identity()(x) is x

    def test_flatten(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        assert Flatten()(x).shape == (2, 12)

    def test_global_avg_pool_module(self, rng):
        x = Tensor(rng.normal(size=(2, 5, 4, 4)))
        assert GlobalAvgPool2d()(x).shape == (2, 5)
