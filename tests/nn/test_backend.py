"""Tests for the pluggable array-backend execution layer."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.backend import (
    ArrayBackend,
    FusedBackend,
    NumpyBackend,
    default_backend_name,
    get_backend,
    set_backend,
    use_backend,
)
from repro.nn.im2col import im2col, im2col_nhwc
from repro.nn.layers import BatchNorm2d, Conv2d
from repro.nn.tensor import Tensor, no_grad
from repro.registry import BACKENDS, UnknownComponentError


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process-default backend untouched."""
    before = get_backend()
    yield
    set_backend(before)


class TestRegistry:
    def test_builtins_registered(self):
        assert "numpy" in BACKENDS
        assert "fused" in BACKENDS
        assert BACKENDS.get("np").name == "numpy"
        assert BACKENDS.get("fast").name == "fused"

    def test_unknown_backend_suggests(self):
        with pytest.raises(UnknownComponentError, match="did you mean 'fused'"):
            BACKENDS.get("fuse")

    def test_create_returns_fresh_instances(self):
        a = BACKENDS.create("fused")
        b = BACKENDS.create("fused")
        assert isinstance(a, FusedBackend)
        assert a is not b  # each holds its own workspace


class TestActiveState:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend_name() == "numpy"
        set_backend(None)  # re-resolve the env default
        assert get_backend().name == "numpy"

    def test_env_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fused")
        set_backend(None)
        assert get_backend().name == "fused"

    def test_set_backend_by_name_and_instance(self):
        assert set_backend("fused").name == "fused"
        instance = NumpyBackend()
        assert set_backend(instance) is instance

    def test_use_backend_restores_on_exit(self):
        set_backend("numpy")
        with use_backend("fused") as active:
            assert active.name == "fused"
            assert get_backend().name == "fused"
        assert get_backend().name == "numpy"

    def test_use_backend_restores_on_error(self):
        set_backend("numpy")
        with pytest.raises(RuntimeError):
            with use_backend("fused"):
                raise RuntimeError("boom")
        assert get_backend().name == "numpy"

    def test_use_backend_none_is_inherit(self):
        set_backend("fused")
        with use_backend(None) as active:
            assert active.name == "fused"
        assert get_backend().name == "fused"

    def test_use_backend_nests(self):
        set_backend("numpy")
        with use_backend("fused"):
            with use_backend("numpy"):
                assert get_backend().name == "numpy"
            assert get_backend().name == "fused"
        assert get_backend().name == "numpy"


class TestPrecisionPolicy:
    def test_reference_policy(self):
        b = NumpyBackend()
        assert b.compute_dtype == np.float32
        assert b.scoring_dtype == np.float64
        assert b.loss_reduction_dtype == np.float64
        assert not b.supports_fusion

    def test_fused_policy(self):
        b = FusedBackend()
        assert b.compute_dtype == np.float32
        assert b.scoring_dtype == np.float32  # float32 end-to-end scoring
        assert b.loss_reduction_dtype == np.float64  # wide loss reductions
        assert b.supports_fusion
        assert b.supports_nhwc_infer

    def test_per_sample_loss_follows_policy_but_returns_float64(self):
        from repro.nn.losses import NTXentLoss

        rng = np.random.default_rng(0)
        z1 = Tensor(rng.normal(size=(6, 8)).astype(np.float32))
        z2 = Tensor(rng.normal(size=(6, 8)).astype(np.float32))
        loss = NTXentLoss()
        for name in ("numpy", "fused"):
            with use_backend(name):
                out = loss.per_sample(z1, z2)
            assert out.dtype == np.float64  # the buffer-score contract

    def test_scores_always_float64(self):
        from repro.core.scoring import ContrastScorer
        from repro.nn.projection import ProjectionHead
        from repro.nn.resnet import resnet_micro

        enc = resnet_micro()
        scorer = ContrastScorer(enc, ProjectionHead(enc.feature_dim, out_dim=8))
        images = np.random.default_rng(0).normal(size=(4, 3, 8, 8)).astype(np.float32)
        for name in ("numpy", "fused"):
            with use_backend(name):
                assert scorer.score(images).dtype == np.float64


class TestNumpyBackendReference:
    def test_elementwise_matches_numpy(self):
        b = NumpyBackend()
        x = np.linspace(-2, 2, 11, dtype=np.float32)
        np.testing.assert_array_equal(b.exp(x), np.exp(x))
        np.testing.assert_array_equal(b.relu(x), np.where(x > 0, x, 0.0))
        np.testing.assert_array_equal(b.maximum(x, 0.5), np.maximum(x, 0.5))
        np.testing.assert_array_equal(b.clip(x, -1, 1), np.clip(x, -1, 1))

    def test_matmul_out(self):
        b = NumpyBackend()
        rng = np.random.default_rng(0)
        a = rng.normal(size=(4, 5)).astype(np.float32)
        c = rng.normal(size=(5, 3)).astype(np.float32)
        out = np.empty((4, 3), dtype=np.float32)
        res = b.matmul(a, c, out=out)
        assert res is out
        np.testing.assert_array_equal(out, a @ c)

    def test_conv_bn_infer_unsupported(self):
        b = NumpyBackend()
        assert b.conv_bn_infer(
            np.zeros((1, 1, 4, 4), np.float32),
            np.zeros((1, 1, 3, 3), np.float32),
            None,
            1,
            1,
            np.ones(1, np.float32),
            np.zeros(1, np.float32),
            True,
        ) is None

    def test_nhwc_chain_unsupported(self):
        with pytest.raises(NotImplementedError):
            NumpyBackend().to_nhwc(np.zeros((1, 1, 2, 2), np.float32))


class TestFusedOps:
    def test_im2col_nhwc_matches_nchw_reorder(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        for stride, padding, k in [(1, 1, 3), (2, 0, 1), (2, 1, 3)]:
            cols_nchw = im2col(x, (k, k), stride, padding)  # (..., C*kh*kw)
            cols_nhwc = im2col_nhwc(
                np.ascontiguousarray(x.transpose(0, 2, 3, 1)), (k, k), stride, padding
            )  # (..., kh*kw*C)
            n, oh, ow, _ = cols_nchw.shape
            a = cols_nchw.reshape(n, oh, ow, 3, k, k)
            bmat = cols_nhwc.reshape(n, oh, ow, k, k, 3)
            np.testing.assert_array_equal(a, bmat.transpose(0, 1, 2, 5, 3, 4))

    def test_conv_bn_infer_matches_unfused(self):
        rng = np.random.default_rng(2)
        conv = Conv2d(3, 5, 3, stride=1, padding=1, rng=rng)
        bn = BatchNorm2d(5)
        bn.set_buffer("running_mean", rng.normal(size=5).astype(np.float32))
        bn.set_buffer("running_var", rng.uniform(0.5, 2.0, size=5).astype(np.float32))
        bn.eval()
        conv.eval()
        x = Tensor(rng.normal(size=(4, 3, 8, 8)).astype(np.float32))
        with no_grad():
            with use_backend("numpy"):
                ref = F.conv_bn_relu(x, conv, bn).data
            fused = FusedBackend()
            scale, shift = F.bn_eval_affine(bn)
            out = fused.conv_bn_infer(
                x.data, conv.weight.data, None, 1, 1, scale, shift, True
            )
        np.testing.assert_allclose(out, ref, atol=1e-5)

    def test_conv_bn_nhwc_matches_unfused(self):
        rng = np.random.default_rng(3)
        conv = Conv2d(4, 6, 3, stride=2, padding=1, rng=rng)
        bn = BatchNorm2d(6)
        bn.set_buffer("running_mean", rng.normal(size=6).astype(np.float32))
        bn.set_buffer("running_var", rng.uniform(0.5, 2.0, size=6).astype(np.float32))
        bn.eval()
        conv.eval()
        x = Tensor(rng.normal(size=(2, 4, 8, 8)).astype(np.float32))
        with no_grad(), use_backend("numpy"):
            ref = F.conv_bn_relu(x, conv, bn, relu=False).data
        fused = FusedBackend()
        scale, shift = F.bn_eval_affine(bn)
        out_nhwc = fused.conv_bn_nhwc(
            fused.to_nhwc(x.data), conv.weight.data, None, 2, 1, scale, shift, False
        )
        np.testing.assert_allclose(out_nhwc.transpose(0, 3, 1, 2), ref, atol=1e-5)

    def test_returned_arrays_are_caller_owned(self):
        """Protocol invariant 2: successive fused calls never clobber
        previously returned outputs."""
        rng = np.random.default_rng(4)
        fused = FusedBackend()
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        x1 = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        x2 = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        out1 = fused.conv2d_infer(x1, w, None, 1, 1)
        snapshot = out1.copy()
        fused.conv2d_infer(x2, w, None, 1, 1)  # reuses the arenas
        np.testing.assert_array_equal(out1, snapshot)

    def test_add_relu_infer(self):
        fused = FusedBackend()
        a = np.array([[-1.0, 2.0]], dtype=np.float32)
        b = np.array([[0.5, -3.0]], dtype=np.float32)
        np.testing.assert_array_equal(
            fused.add_relu_infer(a.copy(), b), np.array([[0.0, 0.0]], np.float32)
        )

    def test_float64_inputs_keep_their_width(self):
        rng = np.random.default_rng(5)
        fused = FusedBackend()
        x = rng.normal(size=(1, 2, 5, 5))  # float64
        w = rng.normal(size=(3, 2, 3, 3))
        out = fused.conv2d_infer(x, w, None, 1, 1)
        assert out.dtype == np.float64


class TestFunctionalDispatch:
    def test_conv_bn_relu_training_mode_never_fuses(self):
        """Training-mode BN must use batch stats — the fused affine
        would silently use running stats instead."""
        rng = np.random.default_rng(6)
        conv = Conv2d(3, 4, 3, stride=1, padding=1, rng=rng)
        bn = BatchNorm2d(4)  # training mode, fresh running stats
        x = Tensor(rng.normal(size=(4, 3, 6, 6)).astype(np.float32))
        with no_grad():
            with use_backend("numpy"):
                ref = F.conv_bn_relu(x, conv, bn).data
            bn2 = BatchNorm2d(4)
            with use_backend("fused"):
                out = F.conv_bn_relu(x, conv, bn2).data
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-6)

    def test_autograd_path_identical_across_backends(self):
        """Invariant 1: graph-recorded forward + backward are bitwise
        equal on numpy and fused (fusion is no_grad-only)."""
        rng = np.random.default_rng(7)
        x_data = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)

        def run():
            conv = Conv2d(3, 4, 3, stride=1, padding=1, rng=np.random.default_rng(0))
            bn = BatchNorm2d(4)
            x = Tensor(x_data.copy(), requires_grad=True)
            out = F.conv_bn_relu(x, conv, bn)
            out.sum().backward()
            return out.data, x.grad, conv.weight.grad

        with use_backend("numpy"):
            out_n, gx_n, gw_n = run()
        with use_backend("fused"):
            out_f, gx_f, gw_f = run()
        np.testing.assert_array_equal(out_n, out_f)
        np.testing.assert_array_equal(gx_n, gx_f)
        np.testing.assert_array_equal(gw_n, gw_f)

    def test_encoder_nhwc_chain_matches_reference(self):
        from repro.nn.resnet import resnet_small

        rng = np.random.default_rng(8)
        enc = resnet_small(rng=rng)
        enc.eval()
        x = Tensor(rng.normal(size=(4, 3, 12, 12)).astype(np.float32))
        with no_grad():
            with use_backend("numpy"):
                ref = enc(x).data
            with use_backend("fused"):
                out = enc(x).data
        assert out.shape == ref.shape
        np.testing.assert_allclose(out, ref, atol=1e-4)
