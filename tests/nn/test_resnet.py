"""Tests for the ResNet encoder and projection head."""

import numpy as np
import pytest

from repro.nn.projection import ProjectionHead
from repro.nn.resnet import BasicBlock, ResNetEncoder, resnet_micro, resnet_mini
from repro.nn.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestBasicBlock:
    def test_identity_shortcut_shape(self, rng):
        block = BasicBlock(8, 8, stride=1, rng=rng)
        assert not block.needs_projection
        out = block(Tensor(rng.normal(size=(2, 8, 6, 6)).astype(np.float32)))
        assert out.shape == (2, 8, 6, 6)

    def test_projection_shortcut_on_stride(self, rng):
        block = BasicBlock(8, 16, stride=2, rng=rng)
        assert block.needs_projection
        out = block(Tensor(rng.normal(size=(2, 8, 6, 6)).astype(np.float32)))
        assert out.shape == (2, 16, 3, 3)

    def test_projection_shortcut_on_channel_change(self, rng):
        block = BasicBlock(4, 8, stride=1, rng=rng)
        assert block.needs_projection

    def test_output_nonnegative_after_relu(self, rng):
        block = BasicBlock(4, 4, rng=rng)
        out = block(Tensor(rng.normal(size=(2, 4, 4, 4)).astype(np.float32)))
        assert (out.data >= 0).all()


class TestResNetEncoder:
    def test_output_shape(self, rng):
        enc = ResNetEncoder(3, widths=(8, 16), blocks_per_stage=1, rng=rng)
        out = enc(Tensor(rng.normal(size=(4, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (4, 16)
        assert enc.feature_dim == 16

    def test_rejects_non_nchw(self, rng):
        enc = resnet_micro(rng=rng)
        with pytest.raises(ValueError):
            enc(Tensor(np.zeros((3, 8, 8))))

    def test_empty_widths_raises(self, rng):
        with pytest.raises(ValueError):
            ResNetEncoder(3, widths=(), rng=rng)

    def test_min_input_size(self, rng):
        assert resnet_mini(rng=rng).min_input_size() == 4
        assert resnet_micro(rng=rng).min_input_size() == 2

    def test_deterministic_construction(self):
        a = resnet_mini(rng=np.random.default_rng(1))
        b = resnet_mini(rng=np.random.default_rng(1))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_eval_forward_deterministic(self, rng):
        enc = resnet_micro(rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        enc(x)  # populate running stats
        enc.eval()
        np.testing.assert_array_equal(enc(x).data, enc(x).data)

    def test_gradients_flow_to_all_parameters(self, rng):
        enc = resnet_micro(rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        enc(x).sum().backward()
        missing = [n for n, p in enc.named_parameters() if p.grad is None]
        assert not missing, f"parameters with no gradient: {missing}"

    def test_param_count_mini(self, rng):
        enc = resnet_mini(rng=rng)
        # architecture should be stable; pin the parameter count
        assert enc.num_parameters() == 174_608


class TestProjectionHead:
    def test_output_normalized(self, rng):
        head = ProjectionHead(16, out_dim=8, rng=rng)
        z = head(Tensor(rng.normal(size=(6, 16)).astype(np.float32)))
        np.testing.assert_allclose(np.linalg.norm(z.data, axis=1), np.ones(6), rtol=1e-5)

    def test_unnormalized_option(self, rng):
        head = ProjectionHead(16, out_dim=8, normalize=False, rng=rng)
        z = head(Tensor(rng.normal(size=(6, 16)).astype(np.float32)))
        norms = np.linalg.norm(z.data, axis=1)
        assert not np.allclose(norms, np.ones(6))

    def test_hidden_dim_default(self, rng):
        head = ProjectionHead(16, out_dim=8, rng=rng)
        assert head.fc1.out_features == 16

    def test_output_dim(self, rng):
        head = ProjectionHead(16, hidden_dim=32, out_dim=4, rng=rng)
        z = head(Tensor(rng.normal(size=(3, 16)).astype(np.float32)))
        assert z.shape == (3, 4)
