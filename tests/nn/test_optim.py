"""Tests for SGD / Adam optimizers and the lr scaling rule."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optim import SGD, Adam, sqrt_batch_lr_scale
from repro.nn.tensor import Tensor


def quadratic_loss(p: Parameter) -> Tensor:
    """0.5 * ||p - 3||^2, minimized at p = 3."""
    diff = p - 3.0
    return (diff * diff).sum() * 0.5


class TestOptimizerBase:
    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(2))], lr=0.0)

    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        opt = SGD([p], lr=0.1)
        quadratic_loss(p).backward()
        assert p.grad is not None
        opt.zero_grad()
        assert p.grad is None

    def test_step_skips_params_without_grad(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        before = p.data.copy()
        opt.step()
        np.testing.assert_array_equal(p.data, before)


class TestSGD:
    def test_single_step_matches_formula(self):
        p = Parameter(np.array([1.0, 5.0]))
        opt = SGD([p], lr=0.1)
        quadratic_loss(p).backward()  # grad = p - 3
        opt.step()
        np.testing.assert_allclose(p.data, [1.2, 4.8], rtol=1e-6)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.3)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert p.data[0] == pytest.approx(3.0, abs=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.array([10.0]))
            opt = SGD([p], lr=0.05, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return abs(p.data[0] - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_invalid_momentum_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)


class TestAdam:
    def test_first_step_size_is_lr(self):
        """With bias correction, |Δp| of the first Adam step ≈ lr."""
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.01)
        quadratic_loss(p).backward()
        opt.step()
        assert abs(p.data[0] - 10.0) == pytest.approx(0.01, rel=1e-3)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.5)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert p.data[0] == pytest.approx(3.0, abs=1e-2)

    def test_invalid_betas_raise(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, betas=(1.0, 0.999))

    def test_weight_decay_applied(self):
        p = Parameter(np.array([2.0]))
        opt = Adam([p], lr=0.1, weight_decay=0.1)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 2.0

    def test_state_tracked_per_parameter(self):
        p1 = Parameter(np.array([1.0]))
        p2 = Parameter(np.array([1.0]))
        opt = Adam([p1, p2], lr=0.1)
        p1.grad = np.ones(1, dtype=np.float32)
        p2.grad = -np.ones(1, dtype=np.float32)
        opt.step()
        assert p1.data[0] < 1.0 < p2.data[0]


class TestLrScale:
    def test_identity_at_base_batch(self):
        assert sqrt_batch_lr_scale(1e-4, 256) == pytest.approx(1e-4)

    def test_sqrt_rule(self):
        assert sqrt_batch_lr_scale(1e-4, 64) == pytest.approx(5e-5)

    def test_paper_table2_ordering(self):
        """lr grows monotonically with buffer size as in Table II."""
        lrs = [sqrt_batch_lr_scale(1e-4, b) for b in (8, 32, 128, 256)]
        assert lrs == sorted(lrs)

    def test_invalid_batch_raises(self):
        with pytest.raises(ValueError):
            sqrt_batch_lr_scale(1e-4, 0)
