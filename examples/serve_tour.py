"""A tour of the serve engine (docs/SERVE.md).

Stands up one in-process micro-batching scoring server over a briefly
trained model and drives it with three devices' worth of traffic:

1. publish version 1 and score a first wave (cache-cold, micro-batched);
2. train a little more and publish version 2 **mid-stream**, pinning
   one canary device to v1 while the others follow the current pointer;
3. score a second wave split across model versions, then repeat the
   whole stream to show every decision answering from the cache — and
   that cached decisions are bitwise-identical to the cold ones;
4. exercise the admission policies (`shed` at the door of a full
   queue, `degrade` falling back to cached scores).

Executed in CI exactly as committed, so it doubles as living
documentation: if the serve surface changes, this file has to change
with it.

Run it yourself::

    PYTHONPATH=src python examples/serve_tour.py
"""

import asyncio

import numpy as np

from repro.experiments.config import StreamExperimentConfig
from repro.serve import EmbeddingCache, ModelRegistry, ScoringServer
from repro.session import Session, build_components

# One tiny operating point: small images, short streams — CI-friendly
# runtime with every moving part still exercised.
CONFIG = StreamExperimentConfig(
    dataset="cifar10",
    image_size=8,
    stc=4,
    total_samples=64,
    buffer_size=8,
    encoder_widths=(8, 16),
    projection_dim=8,
    probe_train_per_class=2,
    probe_test_per_class=2,
    probe_epochs=2,
    seed=0,
)

DEVICES = ("device-0", "device-1", "device-2")


def traffic(count: int, offset: int = 0) -> list:
    """``count`` stream samples, deterministic in (seed, offset)."""
    comp = build_components(CONFIG)
    rng = np.random.default_rng(CONFIG.seed + offset)
    labels = rng.integers(0, comp.dataset.num_classes, size=count)
    return list(comp.dataset.sample(labels, rng))


def summarize(tag: str, decisions: list) -> None:
    hits = sum(d.cache_hit for d in decisions)
    versions = sorted({d.model_version for d in decisions})
    selected = sum(d.selected for d in decisions)
    print(
        f"  {tag:12s} {len(decisions)} decisions, versions={versions}, "
        f"selected={selected}, cache hits={hits}"
    )


async def tour() -> None:
    # -- a trained model, published as version 1 ----------------------
    session = Session(CONFIG)
    session.run(stop_after=2)
    models = ModelRegistry()
    v1 = models.publish_session(session, source="warmup")

    server = ScoringServer(
        build_components(CONFIG).scorer,
        models,
        max_batch=8,
        max_wait_ms=1.0,
        cache=EmbeddingCache(),
    )
    samples = traffic(24)

    async with server:
        print("== wave 1: cache-cold, everyone on version", v1, "==")
        cold = []
        for i, device in enumerate(DEVICES):
            cold += await server.submit_many(samples[i * 8 : (i + 1) * 8], device_id=device)
        summarize("cold", cold)

        # -- a version bump lands mid-stream --------------------------
        session.run(stop_after=2)
        v2 = models.publish_session(session, source="midstream")
        models.pin("device-0", v1)  # canary stays on the old model
        print(f"== published version {v2}; device-0 pinned to v{v1} ==")

        wave2 = []
        for i, device in enumerate(DEVICES):
            wave2 += await server.submit_many(samples[i * 8 : (i + 1) * 8], device_id=device)
        summarize("wave 2", wave2)

        # -- the same stream again: answered from the cache -----------
        repeat = []
        for i, device in enumerate(DEVICES):
            repeat += await server.submit_many(samples[i * 8 : (i + 1) * 8], device_id=device)
        summarize("repeat", repeat)
        identical = all(
            r.cache_hit
            and r.score == w.score  # bitwise: the cache stores exact float64
            and r.selected == w.selected
            and r.model_version == w.model_version
            for r, w in zip(repeat, wave2)
        )
        print(f"  repeat scores bitwise-identical to wave 2: {identical}")
        assert identical

        stats = server.stats()
        print(
            f"  server: {stats['batches']} batches, mean batch "
            f"{stats['mean_batch']:.1f}, forwarded {stats['forwarded']} rows, "
            f"cache hit rate {stats['cache']['hit_rate']:.0%}"
        )

    # -- admission policies under overload ----------------------------
    print("== admission: queue_depth=2 under a 12-request burst ==")
    burst = traffic(12, offset=99)
    for policy in ("shed", "degrade"):
        overloaded = ScoringServer(
            build_components(CONFIG).scorer,
            models,
            max_batch=2,
            max_wait_ms=0.0,
            queue_depth=2,
            policy=policy,
            cache=EmbeddingCache(),
        )
        async with overloaded:
            decisions = await overloaded.submit_many(burst)
        by_status: dict = {}
        for d in decisions:
            by_status[d.status] = by_status.get(d.status, 0) + 1
        print(f"  {policy:8s} -> {dict(sorted(by_status.items()))}")


if __name__ == "__main__":
    asyncio.run(tour())
