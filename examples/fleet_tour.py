"""A tour of the fleet engine (docs/FLEET.md).

Runs one tiny heterogeneous fleet — 3 devices x 2 rounds, each device
on a different stream scenario and one of them on an MCU-class compute
budget — under *every* registered aggregator, printing the per-round
accuracy/diversity table and the fleet-vs-single-device gap each time.

Executed in CI exactly as committed, so it doubles as living
documentation: if an aggregator or the fleet surface changes, this
file has to change with it.

Run it yourself::

    PYTHONPATH=src python examples/fleet_tour.py
"""

from repro.experiments.config import StreamExperimentConfig
from repro.experiments.fleet import format_fleet, run_fleet
from repro.fleet import DeviceSpec
from repro.registry import AGGREGATORS, aggregator_names

# One tiny operating point: small images, short streams, 2-epoch
# probes — CI-friendly runtime with every moving part still exercised.
CONFIG = StreamExperimentConfig(
    dataset="cifar10",
    image_size=8,
    stc=4,
    total_samples=64,
    buffer_size=8,
    encoder_widths=(8, 16),
    projection_dim=8,
    probe_train_per_class=2,
    probe_test_per_class=2,
    probe_epochs=2,
    seed=0,
)

# Three heterogeneous devices: the paper's temporal stream, a
# class-incremental drifter on FIFO, and a long-tail stream on an
# MCU-class energy budget (the coordinator derives its lazy interval
# from the cost model).
DEVICES = (
    DeviceSpec(scenario="temporal"),
    DeviceSpec(scenario="drift", policy="fifo"),
    DeviceSpec(
        scenario="imbalanced", profile="mcu-class", compute_budget_mj=200.0
    ),
)


def aggregator_tour() -> None:
    """The same fleet under every registered aggregation rule."""
    for name in aggregator_names():
        label = AGGREGATORS.get(name).display_label
        print(f"== fleet: 3 devices x 2 rounds under `{name}` ({label}) ==")
        result = run_fleet(CONFIG, devices=DEVICES, rounds=2, aggregator=name)
        print(format_fleet(result))
        print()


if __name__ == "__main__":
    aggregator_tour()
