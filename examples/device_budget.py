#!/usr/bin/env python3
"""Device budgeting: is on-device learning feasible on *your* hardware?

Walks through the paper's §I motivation quantitatively using the
repro.device cost model:

1. how quickly "store the whole stream, then train" breaks the storage
   budget of an edge device, vs. the paper's constant-size buffer;
2. what contrast scoring costs per iteration in FLOPs/energy, and how
   the lazy interval T trades that off (the analytic Table I).

Pure arithmetic — runs in under a second.

    python examples/device_budget.py
"""

from repro.device import (
    JETSON_CLASS,
    MCU_CLASS,
    iteration_compute_cost,
    storage_cost,
)
from repro.nn import ProjectionHead, resnet_small
from repro.utils.rng import new_rng
from repro.utils.tables import format_table

IMAGE_SHAPE = (3, 12, 12)
BUFFER = 32
FRAMES_PER_DAY = 86_400  # one frame per second


def storage_story() -> None:
    print("1) storage: store-everything vs the buffer framework")
    rows = []
    for profile in (JETSON_CLASS, MCU_CLASS):
        for days in (1, 30):
            report = storage_cost(
                profile,
                stream_samples=days * FRAMES_PER_DAY,
                image_shape=IMAGE_SHAPE,
                buffer_size=BUFFER,
                epochs_over_store=100,
            )
            rows.append(
                [
                    profile.name,
                    f"{days}d @ 1 fps",
                    f"{report.store_all_bytes / 1e6:,.0f} MB",
                    f"{report.buffer_bytes / 1e3:.1f} KB",
                    f"{report.store_all_energy_mj / 1e3:,.1f} J",
                    "OVERFLOWS" if report.exceeds_flash else "fits",
                ]
            )
    print(
        format_table(
            ["device", "stream", "store-all", "buffer", "store-all energy", "flash"],
            rows,
        )
    )
    print()


def compute_story() -> None:
    print("2) compute: contrast scoring overhead per iteration (analytic Table I)")
    rng = new_rng(0)
    encoder = resnet_small(rng=rng)
    projector = ProjectionHead(encoder.feature_dim, out_dim=32, rng=rng)
    rows = []
    for interval in (None, 4, 20, 50, 100, 200):
        report = iteration_compute_cost(
            MCU_CLASS,
            encoder,
            projector,
            image_size=IMAGE_SHAPE[1],
            buffer_size=BUFFER,
            lazy_interval=interval,
        )
        rows.append(
            [
                "disabled" if interval is None else str(interval),
                f"{report.train_flops / 1e6:.0f}M",
                f"{report.scoring_flops_lazy / 1e6:.0f}M",
                f"{report.relative_batch_flops_lazy:.3f}",
                f"{report.energy_scoring_lazy_mj:.2f} mJ",
            ]
        )
    print(
        format_table(
            ["lazy T", "train FLOPs", "scoring FLOPs", "relative cost", "scoring energy"],
            rows,
        )
    )
    print(
        "\ncompare with the paper's measured Table I: relative batch time "
        "1.478 (eager) down to ~1.17 (T=200)."
    )


def main() -> None:
    print(f"model: resnet_small encoder, buffer {BUFFER}, {IMAGE_SHAPE} images\n")
    storage_story()
    compute_story()


if __name__ == "__main__":
    main()
