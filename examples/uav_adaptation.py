#!/usr/bin/env python3
"""UAV deployed to an unknown environment: fine-tuning with lazy scoring.

The paper's second motivating scenario: a model is pre-trained (here, on
the "svhn" stand-in environment), then the device is deployed into a new
environment ("cifar10" stand-in) and must adapt from its unlabeled
stream.  On-device compute is scarce, so lazy scoring (paper Eq. 7-8)
is enabled to cut the scoring overhead.

Demonstrates:
  * checkpointing / restoring encoder weights (repro.nn.serialization),
  * fine-tuning an already-trained encoder on a new stream,
  * the lazy-scoring overhead/accuracy trade-off on a budget.

    python examples/uav_adaptation.py
"""

import os
import tempfile

from repro.core import (
    ContrastScorer,
    ContrastScoringPolicy,
    OnDeviceContrastiveLearner,
)
from repro.data import SimCLRAugment, TemporalStream, make_dataset
from repro.experiments.config import default_config
from repro.nn import ProjectionHead, load_module, resnet_small, save_module
from repro.session import Session, build_components
from repro.utils.rng import RngRegistry

BUFFER = 32
PRETRAIN_STREAM = 1024
ADAPT_STREAM = 1536
LAZY_INTERVAL = 8


def pretrain(checkpoint_path: str) -> None:
    """Phase 1: pre-train in the home environment (svhn stand-in)."""
    rngs = RngRegistry(0)
    home = make_dataset("svhn", image_size=12)
    encoder = resnet_small(rng=rngs.get("model"))
    projector = ProjectionHead(encoder.feature_dim, out_dim=32, rng=rngs.get("model"))
    scorer = ContrastScorer(encoder, projector)
    learner = OnDeviceContrastiveLearner(
        encoder,
        projector,
        ContrastScoringPolicy(scorer, BUFFER),
        BUFFER,
        rngs.get("augment"),
        lr=1e-3,
        augment=SimCLRAugment(jitter_strength=0.12),
    )
    stream = TemporalStream(home, 32, rngs.get("stream"))
    for segment in stream.segments(BUFFER, PRETRAIN_STREAM):
        learner.process_segment(segment)
    save_module(encoder, checkpoint_path)
    print(f"  pre-trained encoder saved to {checkpoint_path}")


def adapt(checkpoint_path: str, lazy_interval):
    """Phase 2: deploy to the new environment and adapt from its stream.

    Uses the :class:`~repro.session.Session` surface: components are
    built from the config, the pre-trained encoder weights are loaded
    into them, and the session runs on the injected components.
    """
    config = default_config("cifar10", seed=1).with_(
        buffer_size=BUFFER, total_samples=ADAPT_STREAM
    )
    comp = build_components(config)
    load_module(comp.encoder, checkpoint_path)  # resume pre-trained weights
    result = (
        Session.from_config(config)
        .with_components(comp)
        .with_lazy_interval(lazy_interval)
        .with_eval_points(1)
        .run()
    )
    return {
        "accuracy": result.final_accuracy,
        "relative_batch_time": result.relative_batch_time,
        "rescoring_pct": result.rescoring_fraction,
    }


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = os.path.join(tmp, "uav_encoder.npz")
        print("phase 1: pre-training in the home environment (svhn-like)")
        pretrain(checkpoint)

        print("\nphase 2: adapting in the new environment (cifar10-like)")
        label = {None: "eager scoring", LAZY_INTERVAL: f"lazy T={LAZY_INTERVAL}"}
        for interval in (None, LAZY_INTERVAL):
            res = adapt(checkpoint, interval)
            print(
                f"  {label[interval]:16s} accuracy {res['accuracy']:.1%}  "
                f"relative batch time {res['relative_batch_time']:.2f}x  "
                f"re-scoring {res['rescoring_pct']:.1%}"
            )
        print(
            "\nlazy scoring trades a negligible accuracy change for a "
            "substantially cheaper replacement step — the Table I effect."
        )


if __name__ == "__main__":
    main()
