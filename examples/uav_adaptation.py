#!/usr/bin/env python3
"""UAV deployed to an unknown environment: fine-tuning with lazy scoring.

The paper's second motivating scenario: a model is pre-trained (here, on
the "svhn" stand-in environment), then the device is deployed into a new
environment ("cifar10" stand-in) and must adapt from its unlabeled
stream.  On-device compute is scarce, so lazy scoring (paper Eq. 7-8)
is enabled to cut the scoring overhead.

Demonstrates:
  * checkpointing / restoring encoder weights (repro.nn.serialization),
  * fine-tuning an already-trained encoder on a new stream,
  * the lazy-scoring overhead/accuracy trade-off on a budget.

    python examples/uav_adaptation.py
"""

import os
import tempfile

from repro.core import (
    ContrastScorer,
    ContrastScoringPolicy,
    LazyScoringSchedule,
    OnDeviceContrastiveLearner,
)
from repro.data import SimCLRAugment, TemporalStream, make_dataset
from repro.nn import ProjectionHead, load_module, resnet_small, save_module
from repro.train import evaluate_encoder
from repro.utils.rng import RngRegistry

BUFFER = 32
PRETRAIN_STREAM = 1024
ADAPT_STREAM = 1536
LAZY_INTERVAL = 8


def pretrain(checkpoint_path: str) -> None:
    """Phase 1: pre-train in the home environment (svhn stand-in)."""
    rngs = RngRegistry(0)
    home = make_dataset("svhn", image_size=12)
    encoder = resnet_small(rng=rngs.get("model"))
    projector = ProjectionHead(encoder.feature_dim, out_dim=32, rng=rngs.get("model"))
    scorer = ContrastScorer(encoder, projector)
    learner = OnDeviceContrastiveLearner(
        encoder,
        projector,
        ContrastScoringPolicy(scorer, BUFFER),
        BUFFER,
        rngs.get("augment"),
        lr=1e-3,
        augment=SimCLRAugment(jitter_strength=0.12),
    )
    stream = TemporalStream(home, 32, rngs.get("stream"))
    for segment in stream.segments(BUFFER, PRETRAIN_STREAM):
        learner.process_segment(segment)
    save_module(encoder, checkpoint_path)
    print(f"  pre-trained encoder saved to {checkpoint_path}")


def adapt(checkpoint_path: str, lazy_interval):
    """Phase 2: deploy to the new environment and adapt from its stream."""
    rngs = RngRegistry(1)
    new_env = make_dataset("cifar10")
    encoder = resnet_small(rng=rngs.get("model"))
    load_module(encoder, checkpoint_path)  # resume from the pre-trained weights
    projector = ProjectionHead(encoder.feature_dim, out_dim=32, rng=rngs.get("model"))
    scorer = ContrastScorer(encoder, projector)
    policy = ContrastScoringPolicy(
        scorer, BUFFER, lazy=LazyScoringSchedule(lazy_interval)
    )
    learner = OnDeviceContrastiveLearner(
        encoder,
        projector,
        policy,
        BUFFER,
        rngs.get("augment"),
        lr=1e-3,
        augment=SimCLRAugment(jitter_strength=0.2),
    )
    stream = TemporalStream(new_env, 64, rngs.get("stream"))
    for segment in stream.segments(BUFFER, ADAPT_STREAM):
        learner.process_segment(segment)

    rng = rngs.get("eval")
    train_x, train_y = new_env.make_split(40, rng)
    test_x, test_y = new_env.make_split(20, rng)
    probe = evaluate_encoder(
        encoder, train_x, train_y, test_x, test_y, new_env.num_classes, rng, epochs=40
    )
    overhead = (
        learner.mean_select_seconds() + learner.mean_train_seconds()
    ) / learner.mean_train_seconds()
    return {
        "accuracy": probe.accuracy,
        "relative_batch_time": overhead,
        "rescoring_pct": policy.lazy.rescoring_fraction,
    }


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = os.path.join(tmp, "uav_encoder.npz")
        print("phase 1: pre-training in the home environment (svhn-like)")
        pretrain(checkpoint)

        print("\nphase 2: adapting in the new environment (cifar10-like)")
        label = {None: "eager scoring", LAZY_INTERVAL: f"lazy T={LAZY_INTERVAL}"}
        for interval in (None, LAZY_INTERVAL):
            res = adapt(checkpoint, interval)
            print(
                f"  {label[interval]:16s} accuracy {res['accuracy']:.1%}  "
                f"relative batch time {res['relative_batch_time']:.2f}x  "
                f"re-scoring {res['rescoring_pct']:.1%}"
            )
        print(
            "\nlazy scoring trades a negligible accuracy change for a "
            "substantially cheaper replacement step — the Table I effect."
        )


if __name__ == "__main__":
    main()
