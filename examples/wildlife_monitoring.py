#!/usr/bin/env python3
"""Wildlife monitoring camera: the paper's motivating scenario.

The introduction motivates the problem with a continuous monitoring
camera: "goats from a group can appear in adjacent images ... at some
time, while zebras can appear in adjacent images at another time" — a
strongly temporally correlated, unlabeled stream.

This example compares the three replacement policies on such a stream
and inspects the buffer composition they maintain.  FIFO's buffer
collapses to the animal currently in front of the camera; contrast
scoring keeps the species the model hasn't learned yet.

    python examples/wildlife_monitoring.py
"""

import numpy as np

from repro.core import ContrastScorer, OnDeviceContrastiveLearner
from repro.data import SimCLRAugment, TemporalStream, make_dataset, measure_stc
from repro.nn import ProjectionHead, resnet_small
from repro.registry import create_policy
from repro.train import evaluate_encoder
from repro.utils.rng import RngRegistry

# "imagenet20" stands in for 20 animal species at higher resolution.
DATASET = "imagenet20"
BUFFER = 32
STC = 96  # long same-species bursts: a herd lingers in front of the camera
STREAM_LENGTH = 2048
SPECIES = [f"species-{i:02d}" for i in range(20)]


def run_policy(policy_name: str, seed: int = 0):
    rngs = RngRegistry(seed)
    dataset = make_dataset(DATASET)
    encoder = resnet_small(rng=rngs.get("model"))
    projector = ProjectionHead(encoder.feature_dim, out_dim=32, rng=rngs.get("model"))
    scorer = ContrastScorer(encoder, projector)

    # Any name registered via @register_policy works here — no if/elif.
    policy = create_policy(
        policy_name, scorer=scorer, capacity=BUFFER, rng=rngs.get("policy")
    )

    learner = OnDeviceContrastiveLearner(
        encoder,
        projector,
        policy,
        BUFFER,
        rngs.get("augment"),
        lr=1e-3,
        augment=SimCLRAugment(min_crop_scale=0.6, jitter_strength=0.25),
    )
    stream = TemporalStream(dataset, STC, rngs.get("stream"))

    seen_labels = []
    diversity = []
    for segment in stream.segments(BUFFER, STREAM_LENGTH):
        learner.process_segment(segment)
        seen_labels.extend(segment.labels.tolist())
        hist = learner.buffer_class_histogram(dataset.num_classes)
        diversity.append((hist > 0).sum())

    rng = rngs.get("eval")
    train_x, train_y = dataset.make_split(30, rng)
    test_x, test_y = dataset.make_split(15, rng)
    probe = evaluate_encoder(
        encoder, train_x, train_y, test_x, test_y, dataset.num_classes, rng, epochs=40
    )
    return {
        "accuracy": probe.accuracy,
        "mean_buffer_species": float(np.mean(diversity)),
        "final_buffer": learner.buffer_class_histogram(dataset.num_classes),
        "measured_stc": measure_stc(np.asarray(seen_labels)),
    }


def main() -> None:
    print(f"scenario: monitoring camera, {len(SPECIES)} species, STC={STC}")
    print(f"stream length {STREAM_LENGTH}, buffer {BUFFER} images\n")

    results = {}
    for name in ("contrast-scoring", "random-replace", "fifo"):
        print(f"running {name} ...")
        results[name] = run_policy(name)

    print(f"\nmeasured stream STC: {results['fifo']['measured_stc']:.1f}\n")
    print(f"{'policy':18s} {'accuracy':>9s} {'avg species in buffer':>22s}")
    for name, res in results.items():
        print(
            f"{name:18s} {res['accuracy']:9.1%} {res['mean_buffer_species']:22.1f}"
        )

    print("\nfinal buffer composition (species -> count):")
    for name, res in results.items():
        present = {
            SPECIES[i]: int(c) for i, c in enumerate(res["final_buffer"]) if c > 0
        }
        print(f"  {name:18s} {present}")


if __name__ == "__main__":
    main()
