"""A tour of the observability layer (docs/OBSERVABILITY.md).

Runs one instrumented fleet round sequence — 10 devices with a seeded
fault plan (dropouts sampled per round), K=4 round-robin sampling, the
compressed ``delta-q8`` broadcast, and 2 pool workers — with metrics
and span tracing enabled, then shows where the telemetry goes:

* the **console exporter** renders every metric the run recorded —
  coordinator counters (``fleet.*``), per-worker job accounting
  (``pool.jobs{worker=...}``), and the ``session.*`` series shipped
  home from the workers and merged by label set;
* the **span trace** is written in Chrome trace-event format — load
  ``obs_trace.json`` at ``chrome://tracing`` (or ui.perfetto.dev) to
  see the ``fleet.round`` spans on the ``main`` lane over the
  ``session.step`` spans on each ``worker-<pid>`` lane.

Telemetry is observation only: this exact run is bitwise identical
with the instrumentation off (tests/property/test_obs_identity.py).

Executed in CI exactly as committed, so it doubles as living
documentation: if a metric name or the obs surface changes, this file
has to change with it.

Run it yourself::

    PYTHONPATH=src python examples/obs_tour.py
"""

import os

from repro.experiments.config import StreamExperimentConfig
from repro.fleet import DeviceSpec, FleetConfig, FleetCoordinator
from repro.fleet.faults import DeviceFaults, FaultPlan
from repro.obs import METRICS_ENV, metrics, set_metrics_enabled
from repro.obs.trace import TRACE_ENV, SpanTracer, set_tracer
from repro.registry import EXPORTERS

# One tiny operating point: small images, short streams, 2-epoch
# probes — CI-friendly runtime with every moving part still exercised.
CONFIG = StreamExperimentConfig(
    dataset="cifar10",
    image_size=8,
    stc=4,
    total_samples=64,
    buffer_size=8,
    encoder_widths=(8, 16),
    projection_dim=8,
    probe_train_per_class=2,
    probe_test_per_class=2,
    probe_epochs=2,
    seed=0,
)


def instrumented_fleet() -> None:
    # Turn the layer on for this process, and export the choice to the
    # environment so pool workers (who fork later) inherit it and ship
    # their telemetry home piggybacked on the job results.
    os.environ[METRICS_ENV] = "1"
    os.environ[TRACE_ENV] = "1"
    set_metrics_enabled(True)
    tracer = SpanTracer()
    set_tracer(tracer)

    plan = FaultPlan(seed=0, default=DeviceFaults(dropout_prob=0.15))
    config = CONFIG.with_(
        fleet=FleetConfig(
            devices=tuple(DeviceSpec() for _ in range(10)),
            # 3 rounds so the round-robin cast wraps: a re-sampled device
            # re-ships its state through the delta-q8 codec, which is
            # what the fleet.bytes_sent / compression_ratio series meter.
            rounds=3,
            participants=4,
            sampler="round-robin",
            fault_plan=plan,
        ),
        aggregator="fedavg",
        obs=True,
    )
    print("== instrumented fleet: 10 devices, K=4, dropouts, delta-q8 ==")
    result = FleetCoordinator(config, workers=2, wire_format="delta-q8").run()
    print(f"final global knn accuracy: {result.final_global_knn_accuracy:.3f}")

    print()
    print("== console exporter: every series the run recorded ==")
    print(EXPORTERS.get("console").factory().render(metrics()))

    tracer.to_chrome("obs_trace.json")
    lanes = sorted({span["proc"] for span in tracer.spans})
    print()
    print(
        f"wrote obs_trace.json: {len(tracer.spans)} spans across lanes "
        f"{', '.join(lanes)} — load at chrome://tracing or ui.perfetto.dev"
    )


if __name__ == "__main__":
    instrumented_fleet()
