#!/usr/bin/env python3
"""Quickstart: on-device contrastive learning with selective data contrast.

Runs the full two-stage pipeline from the paper on a temporally
correlated unlabeled stream, through the unified :class:`repro.Session`
surface:

  Stage 1 — the encoder learns representations from the stream, with the
            contrast-scoring replacement policy maintaining a 32-image
            buffer (paper Eq. 2-4).
  Stage 2 — a linear classifier is trained on top with only 10% labels.

Takes about a minute on a laptop CPU.  Run:

    python examples/quickstart.py
"""

from repro import Session
from repro.experiments.config import default_config
from repro.session import build_components
from repro.train import evaluate_encoder
from repro.utils.rng import new_rng

BUFFER_SIZE = 32
STC = 64  # consecutive same-class inputs before the class changes
TOTAL_STREAM = 2048
LABEL_FRACTION = 0.1


def main() -> None:
    config = default_config("cifar10", seed=0).with_(
        buffer_size=BUFFER_SIZE, stc=STC, total_samples=TOTAL_STREAM
    )
    components = build_components(config)
    dataset = components.dataset
    print(f"dataset: {dataset}")
    print(f"encoder parameters: {components.encoder.num_parameters():,}")
    print(f"buffer: {BUFFER_SIZE} images, stream STC: {STC}")
    print()

    def report_step(learner, stats):
        if stats.iteration % 16 == 0:
            hist = learner.buffer_class_histogram(dataset.num_classes)
            print(
                f"  iter {stats.iteration:3d}  seen {stats.seen_inputs:5d}  "
                f"loss {stats.loss:.3f}  buffer classes {(hist > 0).sum()}/"
                f"{dataset.num_classes}"
            )

    # ---- Stage 1: self-supervised learning from the unlabeled stream ----
    print("stage 1: learning from the unlabeled stream...")
    session = (
        Session.from_config(config)
        .with_policy("contrast-scoring")
        .with_components(components)
        .with_eval_points(1)
        .on_step(report_step)
    )
    result = session.run()
    learner = session.learner
    print(f"final probe accuracy (100% labels): {result.final_accuracy:.1%}")

    # ---- Stage 2: classifier with few labels ----
    # (the 100%-label number is already covered by the session's probe)
    rng = new_rng(1)
    train_x, train_y = dataset.make_split(40, rng)
    test_x, test_y = dataset.make_split(20, rng)
    print("\nstage 2: training a classifier on the learned encoder...")
    probe = evaluate_encoder(
        learner.encoder,
        train_x,
        train_y,
        test_x,
        test_y,
        dataset.num_classes,
        rng,
        label_fraction=LABEL_FRACTION,
        epochs=40,
    )
    print(
        f"  {LABEL_FRACTION:4.0%} labels ({probe.num_labeled:3d} samples): "
        f"test accuracy {probe.accuracy:.1%}"
    )

    # Contrast with an untrained encoder to show what stage 1 bought us.
    from repro.registry import ENCODERS

    untrained = ENCODERS.create("resnet-small", rng=new_rng(2))
    baseline = evaluate_encoder(
        untrained,
        train_x,
        train_y,
        test_x,
        test_y,
        dataset.num_classes,
        new_rng(3),
        label_fraction=LABEL_FRACTION,
        epochs=40,
    )
    print(f"untrained-encoder probe (reference): {baseline.accuracy:.1%}")


if __name__ == "__main__":
    main()
