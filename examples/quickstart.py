#!/usr/bin/env python3
"""Quickstart: on-device contrastive learning with selective data contrast.

Runs the full two-stage pipeline from the paper on a temporally
correlated unlabeled stream:

  Stage 1 — the encoder learns representations from the stream, with the
            contrast-scoring replacement policy maintaining a 32-image
            buffer (paper Eq. 2-4).
  Stage 2 — a linear classifier is trained on top with only 10% labels.

Takes about a minute on a laptop CPU.  Run:

    python examples/quickstart.py
"""

import numpy as np

from repro import quickstart_components
from repro.train import evaluate_encoder
from repro.utils.rng import new_rng

BUFFER_SIZE = 32
STC = 64  # consecutive same-class inputs before the class changes
TOTAL_STREAM = 2048
LABEL_FRACTION = 0.1


def main() -> None:
    learner, stream, dataset = quickstart_components(
        dataset="cifar10", buffer_size=BUFFER_SIZE, stc=STC, seed=0
    )
    print(f"dataset: {dataset}")
    print(f"encoder parameters: {learner.encoder.num_parameters():,}")
    print(f"buffer: {BUFFER_SIZE} images, stream STC: {STC}")
    print()

    # ---- Stage 1: self-supervised learning from the unlabeled stream ----
    print("stage 1: learning from the unlabeled stream...")
    for segment in stream.segments(BUFFER_SIZE, TOTAL_STREAM):
        stats = learner.process_segment(segment)
        if stats.iteration % 16 == 0:
            hist = learner.buffer_class_histogram(dataset.num_classes)
            print(
                f"  iter {stats.iteration:3d}  seen {stats.seen_inputs:5d}  "
                f"loss {stats.loss:.3f}  buffer classes {(hist > 0).sum()}/"
                f"{dataset.num_classes}"
            )

    # ---- Stage 2: classifier with few labels ----
    rng = new_rng(1)
    train_x, train_y = dataset.make_split(40, rng)
    test_x, test_y = dataset.make_split(20, rng)
    print("\nstage 2: training classifiers on the learned encoder...")
    for fraction in (LABEL_FRACTION, 1.0):
        result = evaluate_encoder(
            learner.encoder,
            train_x,
            train_y,
            test_x,
            test_y,
            dataset.num_classes,
            rng,
            label_fraction=fraction,
            epochs=40,
        )
        print(
            f"  {fraction:4.0%} labels ({result.num_labeled:3d} samples): "
            f"test accuracy {result.accuracy:.1%}"
        )

    # Contrast with an untrained encoder to show what stage 1 bought us.
    from repro.nn.resnet import ResNetEncoder

    untrained = ResNetEncoder(rng=new_rng(2), widths=(12, 24, 48), blocks_per_stage=1)
    baseline = evaluate_encoder(
        untrained,
        train_x,
        train_y,
        test_x,
        test_y,
        dataset.num_classes,
        new_rng(3),
        label_fraction=LABEL_FRACTION,
        epochs=40,
    )
    print(f"untrained-encoder probe (reference): {baseline.accuracy:.1%}")


if __name__ == "__main__":
    main()
