#!/usr/bin/env python3
"""Policy playground: watch the replacement decisions, step by step.

A small-scale, heavily instrumented walk through the paper's mechanism:
each iteration prints which samples the contrast-scoring policy keeps,
their scores, and the buffer's class mixture.  Useful for building
intuition about Eq. 2-4 before running the larger experiments.

    python examples/policy_playground.py
"""

import numpy as np

from repro.core import ContrastScorer, DataBuffer
from repro.data import TemporalStream, make_dataset
from repro.nn import ProjectionHead, resnet_micro
from repro.registry import create_policy
from repro.utils.rng import RngRegistry

BUFFER = 8
STC = 12
STEPS = 10


def main() -> None:
    rngs = RngRegistry(0)
    dataset = make_dataset("cifar10", image_size=8)
    encoder = resnet_micro(rng=rngs.get("model"))
    projector = ProjectionHead(encoder.feature_dim, out_dim=8, rng=rngs.get("model"))
    scorer = ContrastScorer(encoder, projector)
    policy = create_policy("contrast-scoring", scorer=scorer, capacity=BUFFER)
    buffer = DataBuffer(BUFFER)
    stream = TemporalStream(dataset, STC, rngs.get("stream"))

    buffer_labels = np.zeros(0, dtype=np.int64)
    print(f"buffer capacity {BUFFER}, stream STC {STC} (classes change slowly)\n")
    for iteration in range(STEPS):
        segment = stream.next_segment(BUFFER)
        result = policy.select(buffer, segment.images, iteration)

        pool_images = (
            np.concatenate([buffer.images, segment.images])
            if buffer.size
            else segment.images
        )
        pool_labels = np.concatenate([buffer_labels, segment.labels])
        n_buf = buffer.size

        kept_from_buffer = int((result.keep_indices < n_buf).sum())
        kept_from_new = int((result.keep_indices >= n_buf).sum())
        buffer.replace(pool_images, result.keep_indices, result.pool_scores, iteration)
        buffer_labels = pool_labels[result.keep_indices]

        classes = np.unique(buffer_labels)
        print(
            f"iter {iteration}: incoming classes {sorted(set(segment.labels.tolist()))} | "
            f"kept {kept_from_buffer} old + {kept_from_new} new | "
            f"buffer classes {classes.tolist()} | "
            f"scores [{buffer.scores.min():.3f} .. {buffer.scores.max():.3f}]"
        )

    print(
        "\nNote: with an *untrained* encoder, scores mostly reflect image "
        "asymmetry; run examples/quickstart.py to see scores track learning."
    )


if __name__ == "__main__":
    main()
