"""A tour of the stream-scenario zoo (docs/SCENARIOS.md).

Runs one tiny episode of *every* registered scenario — temporal runs,
class-incremental drift, recurring environments, bursty run lengths,
long-tailed class frequencies, and per-phase corruption — then prints
the policy-robustness table (final kNN accuracy / mean buffer class
diversity per cell) that the full-scale ``scenario-sweep`` experiment
produces.

Executed in CI exactly as committed, so it doubles as living
documentation: if a scenario or the sweep surface changes, this file
has to change with it.

Run it yourself::

    PYTHONPATH=src python examples/scenario_tour.py
"""

import numpy as np

from repro.data.scenarios import create_scenario
from repro.data.stream import measure_stc
from repro.experiments.config import StreamExperimentConfig
from repro.experiments.scenario_sweep import (
    format_scenario_sweep,
    run_scenario_sweep,
)
from repro.registry import SCENARIOS, scenario_names
from repro.session import build_components

# One tiny operating point shared by the label tour and the sweep:
# small images, a short stream, and a 2-epoch probe keep the whole
# tour to CI-friendly runtime while preserving every scenario's shape.
CONFIG = StreamExperimentConfig(
    dataset="cifar10",
    image_size=8,
    stc=4,
    total_samples=64,
    buffer_size=8,
    encoder_widths=(8, 16),
    projection_dim=8,
    probe_train_per_class=2,
    probe_test_per_class=2,
    probe_epochs=2,
    seed=0,
)


def label_tour() -> None:
    """Show each scenario's generative process via its label sequence."""
    components = build_components(CONFIG)
    print("== scenario label processes ==")
    for name in scenario_names():
        stream = create_scenario(
            name,
            dataset=components.dataset,
            stc=CONFIG.stc,
            rng=np.random.default_rng(CONFIG.seed),
            total_samples=CONFIG.total_samples,
        )
        labels = np.concatenate(
            [seg.labels for seg in stream.segments(CONFIG.buffer_size, 48)]
        )
        label = SCENARIOS.get(name).display_label
        print(
            f"{name:<14} {label:<40} "
            f"first labels={labels[:12].tolist()} "
            f"empirical STC={measure_stc(labels):.1f}"
        )
    print()


def robustness_table() -> None:
    """One tiny (scenario × policy) sweep — the robustness benchmark."""
    print("== policy robustness across all registered scenarios ==")
    result = run_scenario_sweep(
        CONFIG,
        policies=("contrast-scoring", "fifo"),
        seeds=(CONFIG.seed,),
    )
    print(format_scenario_sweep(result))


if __name__ == "__main__":
    label_tour()
    robustness_table()
