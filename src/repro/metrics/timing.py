"""Timing aggregation for the lazy-scoring overhead study (Table I).

The paper reports "relative batch time": the per-iteration wall time of
scoring + training, normalized by the training-only time of a policy
that does no scoring.  :class:`BatchTimeAccumulator` collects the two
components; :func:`relative_batch_time` forms the ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

__all__ = ["BatchTimeAccumulator", "relative_batch_time"]


@dataclass
class BatchTimeAccumulator:
    """Accumulate per-iteration selection and training times."""

    select_seconds: List[float] = field(default_factory=list)
    train_seconds: List[float] = field(default_factory=list)

    def record(self, select_s: float, train_s: float) -> None:
        if select_s < 0 or train_s < 0:
            raise ValueError("times must be non-negative")
        self.select_seconds.append(select_s)
        self.train_seconds.append(train_s)

    @property
    def steps(self) -> int:
        return len(self.train_seconds)

    def mean_select(self) -> float:
        return float(np.mean(self.select_seconds)) if self.select_seconds else 0.0

    def mean_train(self) -> float:
        return float(np.mean(self.train_seconds)) if self.train_seconds else 0.0

    def mean_total(self) -> float:
        return self.mean_select() + self.mean_train()


def relative_batch_time(
    with_scoring: BatchTimeAccumulator, baseline_train_seconds: float
) -> float:
    """Per-iteration time relative to a no-scoring baseline.

    ``baseline_train_seconds`` is the mean per-iteration time of a
    policy with zero selection overhead (e.g. random replacement);
    values > 1 quantify the scoring overhead the paper's Table I rows
    report (1.478 without lazy scoring, down to ~1.17 with T=200).
    """
    if baseline_train_seconds <= 0:
        raise ValueError("baseline time must be positive")
    return with_scoring.mean_total() / baseline_train_seconds
