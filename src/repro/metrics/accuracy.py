"""Classification accuracy metrics."""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["top1_accuracy", "per_class_accuracy", "confusion_matrix"]


def top1_accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches between predictions and labels."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float((predictions == labels).mean())


def per_class_accuracy(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Accuracy within each class; NaN for classes absent from labels."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    out = np.full(num_classes, np.nan)
    for cls in range(num_classes):
        mask = labels == cls
        if mask.any():
            out[cls] = float((predictions[mask] == cls).mean())
    return out


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """(true, predicted) count matrix."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("shape mismatch between predictions and labels")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix
