"""Buffer-diversity diagnostics.

The paper's mechanism rests on the buffer staying class-diverse under a
temporally correlated stream; these metrics quantify that (used by the
framework's diagnostics, the wildlife example, and the STC ablation).
"""

from __future__ import annotations

import numpy as np

__all__ = ["class_entropy", "effective_num_classes", "distinct_classes"]


def class_entropy(counts: np.ndarray) -> float:
    """Shannon entropy (nats) of a class-count histogram.

    0 for a single-class buffer, ``log(k)`` for a uniform k-class one.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1:
        raise ValueError(f"counts must be 1-D, got shape {counts.shape}")
    if (counts < 0).any():
        raise ValueError("counts must be non-negative")
    total = counts.sum()
    if total == 0:
        raise ValueError("empty histogram")
    p = counts[counts > 0] / total
    return float(-(p * np.log(p)).sum())


def effective_num_classes(counts: np.ndarray) -> float:
    """Perplexity of the class distribution: exp(entropy).

    Interpretable as "the buffer behaves like N equally-represented
    classes"; 1.0 for a single-class buffer.
    """
    return float(np.exp(class_entropy(counts)))


def distinct_classes(counts: np.ndarray) -> int:
    """Number of classes with at least one buffered sample."""
    counts = np.asarray(counts)
    return int((counts > 0).sum())
