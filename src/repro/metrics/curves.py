"""Learning-curve containers and the paper's speedup statistic.

The paper's Figs. 4-6 plot probe accuracy against the number of seen
stream inputs, and report statements like "2.67× faster than random
replacement at the same accuracy".  :func:`speedup_at_accuracy`
computes exactly that: the ratio of seen-input counts at which two
curves first reach a target accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["LearningCurve", "speedup_at_accuracy"]


@dataclass
class LearningCurve:
    """Accuracy as a function of seen stream inputs for one method."""

    method: str
    seen_inputs: List[int] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)

    def add(self, seen: int, accuracy: float) -> None:
        """Append a checkpoint; ``seen`` must be non-decreasing."""
        if self.seen_inputs and seen < self.seen_inputs[-1]:
            raise ValueError(
                f"seen_inputs must be non-decreasing: {seen} after "
                f"{self.seen_inputs[-1]}"
            )
        self.seen_inputs.append(int(seen))
        self.accuracies.append(float(accuracy))

    def __len__(self) -> int:
        return len(self.seen_inputs)

    @property
    def final_accuracy(self) -> float:
        """Accuracy at the last checkpoint."""
        if not self.accuracies:
            raise ValueError("curve is empty")
        return self.accuracies[-1]

    @property
    def best_accuracy(self) -> float:
        if not self.accuracies:
            raise ValueError("curve is empty")
        return max(self.accuracies)

    def inputs_to_reach(self, target_accuracy: float) -> Optional[int]:
        """Seen-input count at which the curve first reaches the target.

        Linear interpolation between checkpoints; None if never reached.
        """
        if not self.accuracies:
            raise ValueError("curve is empty")
        xs = np.asarray(self.seen_inputs, dtype=np.float64)
        ys = np.asarray(self.accuracies, dtype=np.float64)
        if ys[0] >= target_accuracy:
            return int(xs[0])
        for i in range(1, len(ys)):
            if ys[i] >= target_accuracy:
                x0, x1 = xs[i - 1], xs[i]
                y0, y1 = ys[i - 1], ys[i]
                if y1 == y0:
                    return int(x1)
                frac = (target_accuracy - y0) / (y1 - y0)
                return int(round(x0 + frac * (x1 - x0)))
        return None

    def as_rows(self) -> List[Tuple[int, float]]:
        """(seen_inputs, accuracy) pairs for table output."""
        return list(zip(self.seen_inputs, self.accuracies))


def speedup_at_accuracy(
    fast: LearningCurve, slow: LearningCurve, target_accuracy: float
) -> Optional[float]:
    """How many times fewer inputs ``fast`` needs than ``slow``.

    Returns None if either curve never reaches the target (the paper
    reports this case as "baseline cannot achieve this accuracy").
    """
    fast_inputs = fast.inputs_to_reach(target_accuracy)
    slow_inputs = slow.inputs_to_reach(target_accuracy)
    if fast_inputs is None or slow_inputs is None or fast_inputs <= 0:
        return None
    return slow_inputs / fast_inputs
