"""Metrics: accuracy, learning curves, speedup and timing statistics."""

from repro.metrics.accuracy import confusion_matrix, per_class_accuracy, top1_accuracy
from repro.metrics.curves import LearningCurve, speedup_at_accuracy
from repro.metrics.diversity import class_entropy, distinct_classes, effective_num_classes
from repro.metrics.timing import BatchTimeAccumulator, relative_batch_time

__all__ = [
    "top1_accuracy",
    "per_class_accuracy",
    "confusion_matrix",
    "LearningCurve",
    "class_entropy",
    "effective_num_classes",
    "distinct_classes",
    "speedup_at_accuracy",
    "BatchTimeAccumulator",
    "relative_batch_time",
]
