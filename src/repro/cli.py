"""Command-line entry point: ``python -m repro.cli <experiment>``.

Runs any of the paper's experiments at the current ``REPRO_BENCH_SCALE``
and prints the corresponding table.  Experiment ids mirror the
per-experiment index in DESIGN.md:

    fig3            label-ratio comparison (+ supervised reference)
    fig4a .. fig6b  learning curves per dataset
    table1            lazy scoring sweep
    table2            buffer size sweep
    ablation-grad     score-vs-gradient relation
    ablation-views    deterministic vs randomized scoring views
    ablation-stc      temporal-correlation sweep
    ablation-momentum explicit EMA scores vs lazy scoring
    ablation-drift    class-incremental drift comparison
    stream            one Session run of a single policy
    multi-seed        many-seed sweep, mean ± std per policy
    scenario-sweep    (scenario × policy) policy-robustness grid
    fleet             multi-device rounds + aggregation (docs/FLEET.md)
    serve             micro-batching scoring service (docs/SERVE.md)

``--list`` enumerates the experiment ids together with every policy,
dataset, encoder, augment, backend, scenario, aggregator, and metrics
exporter registered in :mod:`repro.registry` (plugins included).  ``--policy`` overrides
the policy selection of experiments that compare or run policies; any
registered policy name or alias is accepted.  ``--workers N`` fans
sweep-shaped experiments (``multi-seed``, ``table2``, ``ablation-stc``,
``scenario-sweep``, ``fleet``, ``fig4a``-``fig6b``) out over N worker
processes via :mod:`repro.experiments.parallel`; results are identical
to the serial run.  ``--wire-format NAME`` selects the transport codec
(:mod:`repro.experiments.wire`: ``json-b64``, ``shm``, ``delta``) that
parallel runs use to ship state between processes — it is exported via
``REPRO_WIRE_FORMAT`` so workers and coordinators resolve the same
codec; results are bitwise-identical under every format.  ``--seeds
0,1,2,3`` sets the seed roster of ``multi-seed``.  ``--backend NAME`` selects the array-execution backend
(:mod:`repro.nn.backend`) for the whole invocation — it becomes the
process default *and* is exported via ``REPRO_BACKEND`` so spawned
sweep workers inherit it.  ``--scenario NAME`` selects the stream
scenario (:mod:`repro.data.scenarios`) for ``stream`` runs, the single
scenario of ``scenario-sweep``, or the shared device scenario of
``fleet``.  ``--aggregator``, ``--devices``, and ``--rounds`` shape the
``fleet`` experiment (any registered aggregator name or alias).
``--serve-policy``, ``--requests``, and ``--port`` shape the ``serve``
experiment: the admission-control policy of the scoring service (any
registered serve-policy name or alias — block/shed/degrade), the
request-stream length, and an optional TCP loopback port (``--port``
adds a JSON-lines TCP echo pass; the default is purely in-process).
``--devices`` sets its simulated device-id count.  ``--metrics`` turns
on the :mod:`repro.obs` hot-path metrics for the whole invocation
(exported via ``REPRO_METRICS`` so pool workers record and ship theirs
home) and prints the console exporter's table after the run;
``--trace-out PATH`` additionally records a span trace and writes it as
Chrome trace-event JSON (``.json``; load at ``chrome://tracing``) or
JSON-lines (any other suffix).  Results are bitwise-identical with
observability on or off (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.experiments import (
    default_config,
    format_fig3,
    format_gradient_ablation,
    format_learning_curves,
    format_momentum_ablation,
    format_multi_seed,
    format_scoring_view_ablation,
    format_stc_sweep,
    format_table1,
    format_table2,
    run_fig3,
    run_gradient_ablation,
    run_learning_curves,
    run_momentum_ablation,
    run_multi_seed,
    run_scoring_view_ablation,
    run_stc_sweep,
    run_table1,
    run_table2,
    scaled_config,
)
from repro.experiments.fleet import format_fleet, run_fleet
from repro.experiments.serve import format_serve, run_serve
from repro.experiments.scenario_sweep import (
    format_scenario_sweep,
    run_scenario_sweep,
)
from repro.experiments.runner import POLICY_NAMES
from repro.data.scenarios import canonical_scenario
from repro.nn.backend import set_backend
from repro.obs import METRICS_ENV, metrics, set_metrics_enabled
from repro.obs.trace import TRACE_ENV, SpanTracer, set_tracer
from repro.registry import (
    AGGREGATORS,
    AUGMENTS,
    BACKENDS,
    CLIENT_SAMPLERS,
    DATASETS,
    ENCODERS,
    EXPORTERS,
    POLICIES,
    SCENARIOS,
    SERVE_POLICIES,
    WIRE_FORMATS,
)
from repro.session import Session
from repro.utils.tables import format_table

__all__ = ["main", "EXPERIMENTS"]

_CURVE_DATASETS = {
    "fig4a": "cifar10",
    "fig4b": "imagenet100",
    "fig5a": "imagenet20",
    "fig5b": "imagenet50",
    "fig6a": "svhn",
    "fig6b": "cifar100",
}


def _fixed_roster(fn):
    """Mark a runner whose policy roster is fixed by the paper's
    protocol; ``main`` rejects ``--policy`` for it before running."""
    fn.supports_policy = False
    return fn


def _parallel(fn):
    """Mark a runner that fans out over ``--workers`` processes; ``main``
    rejects ``--workers`` > 1 for runners without this mark."""
    fn.supports_workers = True
    return fn


def _run_fig3(seed: int, policy: Optional[str] = None, workers: int = 1) -> str:
    config = scaled_config(default_config(seed=seed))
    policies = POLICY_NAMES if policy is None else (policy,)
    return format_fig3(run_fig3(config, policies=policies))


def _curve_runner(dataset: str) -> Callable[..., str]:
    @_parallel
    def run(seed: int, policy: Optional[str] = None, workers: int = 1) -> str:
        config = scaled_config(default_config(dataset, seed=seed))
        kwargs = {} if policy is None else {"policies": (policy,)}
        return format_learning_curves(
            run_learning_curves(dataset, config, workers=workers, **kwargs)
        )

    return run


@_fixed_roster
def _run_table1(seed: int, policy: Optional[str] = None, workers: int = 1) -> str:
    config = scaled_config(default_config(seed=seed))
    return format_table1(run_table1(config))


@_parallel
def _run_table2(seed: int, policy: Optional[str] = None, workers: int = 1) -> str:
    config = scaled_config(default_config(seed=seed))
    kwargs = {} if policy is None else {"policies": (policy,)}
    return format_table2(run_table2(config, workers=workers, **kwargs))


@_fixed_roster
def _run_ablation_grad(seed: int, policy: Optional[str] = None, workers: int = 1) -> str:
    config = scaled_config(default_config(seed=seed))
    return format_gradient_ablation(run_gradient_ablation(config))


@_fixed_roster
def _run_ablation_views(seed: int, policy: Optional[str] = None, workers: int = 1) -> str:
    config = scaled_config(default_config(seed=seed))
    return format_scoring_view_ablation(run_scoring_view_ablation(config))


@_fixed_roster
@_parallel
def _run_ablation_stc(seed: int, policy: Optional[str] = None, workers: int = 1) -> str:
    config = scaled_config(default_config(seed=seed))
    return format_stc_sweep(run_stc_sweep(config, workers=workers))


@_fixed_roster
def _run_ablation_momentum(seed: int, policy: Optional[str] = None, workers: int = 1) -> str:
    config = scaled_config(default_config(seed=seed))
    return format_momentum_ablation(run_momentum_ablation(config))


def _run_ablation_drift(seed: int, policy: Optional[str] = None, workers: int = 1) -> str:
    from repro.experiments.drift import format_drift, run_drift_experiment

    config = scaled_config(default_config(seed=seed))
    kwargs = {} if policy is None else {"policies": (policy,)}
    return format_drift(run_drift_experiment(config, **kwargs))


def _run_stream(
    seed: int,
    policy: Optional[str] = None,
    workers: int = 1,
    scenario: Optional[str] = None,
) -> str:
    """One Session run of a single policy; prints the learning curve."""
    config = scaled_config(default_config(seed=seed))
    policy = policy if policy is not None else "contrast-scoring"
    session = Session.from_config(config, policy=policy).with_eval_points(4)
    if scenario is not None:
        session.with_scenario(scenario)
    result = session.run()
    header = ["seen inputs", "probe accuracy"]
    rows = [[str(s), f"{a:.3f}"] for s, a in result.curve.as_rows()]
    summary = (
        f"policy={result.policy} scenario={result.config.scenario} "
        f"final={result.final_accuracy:.3f} "
        f"loss={result.final_loss:.3f} "
        f"rel-batch-time={result.relative_batch_time:.3f}"
    )
    return "\n".join([format_table(header, rows), summary])


_run_stream.supports_scenario = True


@_parallel
def _run_scenario_sweep(
    seed: int,
    policy: Optional[str] = None,
    workers: int = 1,
    scenario: Optional[str] = None,
) -> str:
    """(scenario × policy) robustness grid: kNN accuracy + diversity."""
    config = scaled_config(default_config(seed=seed))
    kwargs = {}
    if policy is not None:
        kwargs["policies"] = (policy,)
    if scenario is not None:
        kwargs["scenarios"] = (scenario,)
    return format_scenario_sweep(
        run_scenario_sweep(config, seeds=(seed,), workers=workers, **kwargs)
    )


_run_scenario_sweep.supports_scenario = True


@_parallel
def _run_fleet(
    seed: int,
    policy: Optional[str] = None,
    workers: int = 1,
    scenario: Optional[str] = None,
    aggregator: Optional[str] = None,
    devices: int = 3,
    rounds: int = 2,
    participants: Optional[int] = None,
    sampler: Optional[str] = None,
    dropout: Optional[float] = None,
) -> str:
    """Multi-device fleet rounds + aggregation vs. one plain device."""
    config = scaled_config(default_config(seed=seed))
    fault_plan = None
    if dropout is not None and dropout > 0.0:
        from repro.fleet.faults import DeviceFaults, FaultPlan

        fault_plan = FaultPlan(
            seed=seed, default=DeviceFaults(dropout_prob=dropout)
        )
    result = run_fleet(
        config,
        devices=devices,
        rounds=rounds,
        aggregator=aggregator if aggregator is not None else "fedavg",
        policy=policy,
        scenario=scenario,
        workers=workers,
        participants=participants,
        sampler=sampler,
        fault_plan=fault_plan,
    )
    return format_fleet(result)


_run_fleet.supports_scenario = True
_run_fleet.supports_fleet = True
_run_fleet.supports_devices = True


@_fixed_roster
def _run_serve_cli(
    seed: int,
    policy: Optional[str] = None,
    workers: int = 1,
    devices: int = 3,
    serve_policy: Optional[str] = None,
    requests: int = 64,
    port: Optional[int] = None,
) -> str:
    """Micro-batching scoring service: cold/warm/repeat passes, a
    mid-stream model-version bump, and the determinism replay."""
    config = scaled_config(default_config(seed=seed))
    result = run_serve(
        config,
        requests=requests,
        devices=devices,
        policy=serve_policy,
        port=port,
    )
    return format_serve(result)


_run_serve_cli.supports_devices = True
_run_serve_cli.supports_serve = True


@_parallel
def _run_multi_seed_cli(
    seed: int,
    policy: Optional[str] = None,
    workers: int = 1,
    seeds: Optional[Sequence[int]] = None,
) -> str:
    """Many-seed sweep: mean ± std per policy (the paper's protocol).

    Default roster is three consecutive seeds starting at ``--seed``
    (the paper averages over three runs); ``--seeds`` overrides it.
    """
    config = scaled_config(default_config(seed=seed))
    seeds = tuple(seeds) if seeds else (seed, seed + 1, seed + 2)
    kwargs = {} if policy is None else {"policies": (policy,)}
    return format_multi_seed(
        run_multi_seed(config, seeds=seeds, workers=workers, **kwargs)
    )


_run_multi_seed_cli.supports_seeds = True


EXPERIMENTS: Dict[str, Callable[..., str]] = {
    "fig3": _run_fig3,
    **{name: _curve_runner(ds) for name, ds in _CURVE_DATASETS.items()},
    "table1": _run_table1,
    "table2": _run_table2,
    "ablation-grad": _run_ablation_grad,
    "ablation-views": _run_ablation_views,
    "ablation-stc": _run_ablation_stc,
    "ablation-momentum": _run_ablation_momentum,
    "ablation-drift": _run_ablation_drift,
    "stream": _run_stream,
    "multi-seed": _run_multi_seed_cli,
    "scenario-sweep": _run_scenario_sweep,
    "fleet": _run_fleet,
    "serve": _run_serve_cli,
}


def _entry_line(entry) -> str:
    alias_note = f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
    label = "" if entry.display_label == entry.name else entry.display_label
    return f"  {entry.name:<18} {label}{alias_note}".rstrip()


def _format_listing() -> str:
    """The --list report: experiment ids and every registry's contents."""
    lines = ["experiments:"]
    lines += [f"  {name}" for name in sorted(EXPERIMENTS)]
    plurals = {"policy": "policies", "serve policy": "serve policies"}
    for registry in (
        POLICIES,
        DATASETS,
        ENCODERS,
        AUGMENTS,
        BACKENDS,
        SCENARIOS,
        AGGREGATORS,
        CLIENT_SAMPLERS,
        SERVE_POLICIES,
        WIRE_FORMATS,
        EXPORTERS,
    ):
        if registry is SCENARIOS:
            # Base streams and composable wrappers are different things:
            # wrappers stack over any scenario via composition syntax.
            wrappers = [
                e for e in registry.entries() if e.metadata.get("kind") == "wrapper"
            ]
            bases = [
                e for e in registry.entries() if e.metadata.get("kind") != "wrapper"
            ]
            lines.append("scenarios:")
            lines += [_entry_line(e) for e in bases]
            lines.append("scenario wrappers (compose over any scenario):")
            lines += [_entry_line(e) for e in wrappers]
            lines.append(
                '  composition syntax: --scenario "corrupted(bursty(imbalanced))"'
            )
            continue
        lines.append(f"{plurals.get(registry.kind, registry.kind + 's')}:")
        lines += [_entry_line(entry) for entry in registry.entries()]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce a table/figure of the Selective Data Contrast paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENTS),
        help="experiment id (see DESIGN.md per-experiment index)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--policy",
        default=None,
        help="override the policy roster with one registered policy name",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sweep-shaped experiments "
        "(multi-seed, table2, ablation-stc, fig4a..fig6b); results are "
        "identical to the serial run",
    )
    parser.add_argument(
        "--wire-format",
        default=None,
        help="transport codec parallel runs use to ship state between "
        "processes (any registered wire-format name/alias: json-b64, "
        "shm, delta; default: REPRO_WIRE_FORMAT env or delta); results "
        "are identical under every format",
    )
    parser.add_argument(
        "--seeds",
        default=None,
        help="comma-separated seed roster for multi-seed "
        "(default: seed, seed+1, seed+2)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="array-execution backend for the whole invocation "
        "(any registered backend name/alias, e.g. numpy or fused; "
        "default: REPRO_BACKEND env or numpy)",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        help="stream scenario (any registered scenario name/alias, e.g. "
        "cyclic-drift or bursty, or a wrapper composition such as "
        '"corrupted(bursty(imbalanced))") for stream runs, or the single '
        "scenario of scenario-sweep (default: the full registered roster)",
    )
    parser.add_argument(
        "--aggregator",
        default=None,
        help="fleet model-aggregation rule (any registered aggregator "
        "name/alias, e.g. fedavg or best-of; fleet experiment only)",
    )
    parser.add_argument(
        "--devices",
        type=int,
        default=None,
        help="simulated device count for the fleet experiment (default 3)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="synchronization rounds for the fleet experiment (default 2)",
    )
    parser.add_argument(
        "--participants",
        type=int,
        default=None,
        help="train only K sampled devices per fleet round (client "
        "sampling; default: every device, every round)",
    )
    parser.add_argument(
        "--sampler",
        default=None,
        help="client-sampling rule when --participants is set (any "
        "registered client-sampler name/alias: uniform, weighted, "
        "round-robin; fleet experiment only; default uniform)",
    )
    parser.add_argument(
        "--dropout",
        type=float,
        default=None,
        help="per-device per-round dropout probability for the fleet "
        "chaos harness (a seeded FaultPlan; fleet experiment only)",
    )
    parser.add_argument(
        "--serve-policy",
        default=None,
        help="admission-control policy of the scoring service (any "
        "registered serve-policy name/alias: block, shed, degrade; "
        "serve experiment only; default: config.serve or block)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        help="request-stream length for the serve experiment (default 64)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP loopback port for the serve experiment's JSON-lines "
        "echo pass (0 = ephemeral; omit for purely in-process serving)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="record hot-path metrics (repro.obs) for this invocation "
        "and print the console exporter's table after the run; exported "
        "via REPRO_METRICS so pool workers record and ship theirs home",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a span trace of the run: Chrome trace-event JSON "
        "when PATH ends in .json (load at chrome://tracing or "
        "ui.perfetto.dev), JSON-lines otherwise; exported via "
        "REPRO_TRACE so pool workers record spans too",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list experiment ids and registered policies/datasets/"
        "encoders/augments, then exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        print(_format_listing())
        return 0
    if args.experiment is None:
        parser.error("an experiment id is required (or use --list)")

    runner = EXPERIMENTS[args.experiment]
    policy = args.policy
    if policy is not None:
        if not getattr(runner, "supports_policy", True):
            parser.error(
                f"experiment {args.experiment!r} does not take --policy "
                "(its policy roster is fixed by the paper's protocol)"
            )
        try:
            policy = POLICIES.get(policy).name  # resolve aliases, validate
        except KeyError as exc:
            parser.error(str(exc))

    if args.backend is not None:
        try:
            backend = BACKENDS.get(args.backend).name  # resolve, validate
        except KeyError as exc:
            parser.error(str(exc))
        # Process default for this invocation; the env export makes
        # spawn-started sweep workers resolve the same backend.
        set_backend(backend)
        os.environ["REPRO_BACKEND"] = backend

    if args.metrics:
        # Process default for this invocation; the env export makes
        # pool workers record (and piggyback home) their own metrics.
        set_metrics_enabled(True)
        os.environ[METRICS_ENV] = "1"
    tracer: Optional[SpanTracer] = None
    if args.trace_out is not None:
        tracer = SpanTracer()
        set_tracer(tracer)
        os.environ[TRACE_ENV] = "1"

    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    extra: Dict[str, object] = {}
    if args.scenario is not None:
        if not getattr(runner, "supports_scenario", False):
            parser.error(
                f"experiment {args.experiment!r} does not take --scenario "
                "(its stream shape is fixed by the paper's protocol)"
            )
        try:
            # resolves aliases, validates composition structure eagerly
            extra["scenario"] = canonical_scenario(args.scenario)
        except (KeyError, ValueError) as exc:
            parser.error(str(exc))
    if args.workers != 1:
        if not getattr(runner, "supports_workers", False):
            parser.error(
                f"experiment {args.experiment!r} does not take --workers "
                "(it is not sweep-shaped)"
            )
        extra["workers"] = args.workers
    if args.wire_format is not None:
        if not getattr(runner, "supports_workers", False):
            parser.error(
                f"experiment {args.experiment!r} does not take "
                "--wire-format (it is not sweep-shaped)"
            )
        try:
            wire_format = WIRE_FORMATS.get(args.wire_format).name
        except KeyError as exc:
            parser.error(str(exc))
        # Exported (not passed positionally) so worker processes and
        # the fleet coordinator resolve the same codec via
        # resolve_wire_format's env fallback.
        os.environ["REPRO_WIRE_FORMAT"] = wire_format
    fleet_flags = {
        "--aggregator": args.aggregator,
        "--rounds": args.rounds,
        "--participants": args.participants,
        "--sampler": args.sampler,
        "--dropout": args.dropout,
    }
    for flag, value in fleet_flags.items():
        if value is not None and not getattr(runner, "supports_fleet", False):
            parser.error(
                f"experiment {args.experiment!r} does not take {flag} "
                "(only fleet does)"
            )
    if args.devices is not None and not getattr(runner, "supports_devices", False):
        parser.error(
            f"experiment {args.experiment!r} does not take --devices "
            "(only fleet and serve do)"
        )
    if args.aggregator is not None:
        try:
            extra["aggregator"] = AGGREGATORS.get(args.aggregator).name
        except KeyError as exc:
            parser.error(str(exc))
    if args.devices is not None:
        if args.devices < 1:
            parser.error(f"--devices must be >= 1, got {args.devices}")
        extra["devices"] = args.devices
    if args.rounds is not None:
        if args.rounds < 1:
            parser.error(f"--rounds must be >= 1, got {args.rounds}")
        extra["rounds"] = args.rounds
    if args.participants is not None:
        if args.participants < 1:
            parser.error(f"--participants must be >= 1, got {args.participants}")
        extra["participants"] = args.participants
    if args.sampler is not None:
        try:
            extra["sampler"] = CLIENT_SAMPLERS.get(args.sampler).name
        except KeyError as exc:
            parser.error(str(exc))
    if args.dropout is not None:
        if not 0.0 <= args.dropout <= 1.0:
            parser.error(f"--dropout must be in [0, 1], got {args.dropout}")
        extra["dropout"] = args.dropout
    serve_flags = {
        "--serve-policy": args.serve_policy,
        "--requests": args.requests,
        "--port": args.port,
    }
    for flag, value in serve_flags.items():
        if value is not None and not getattr(runner, "supports_serve", False):
            parser.error(
                f"experiment {args.experiment!r} does not take {flag} "
                "(only serve does)"
            )
    if args.serve_policy is not None:
        try:
            extra["serve_policy"] = SERVE_POLICIES.get(args.serve_policy).name
        except KeyError as exc:
            parser.error(str(exc))
    if args.requests is not None:
        if args.requests < 4:
            parser.error(f"--requests must be >= 4, got {args.requests}")
        extra["requests"] = args.requests
    if args.port is not None:
        if not 0 <= args.port <= 65535:
            parser.error(f"--port must be in [0, 65535], got {args.port}")
        extra["port"] = args.port
    if args.seeds is not None:
        if not getattr(runner, "supports_seeds", False):
            parser.error(
                f"experiment {args.experiment!r} does not take --seeds "
                "(only multi-seed does)"
            )
        try:
            extra["seeds"] = tuple(
                int(part) for part in args.seeds.split(",") if part.strip()
            )
        except ValueError:
            parser.error(f"--seeds must be comma-separated ints, got {args.seeds!r}")
        if not extra["seeds"]:
            parser.error("--seeds must name at least one seed")

    print(f"== {args.experiment} (seed {args.seed}) ==")
    print(runner(args.seed, policy, **extra))
    if args.metrics:
        print()
        print(EXPORTERS.get("console").factory().render(metrics()))
    if tracer is not None:
        if args.trace_out.endswith(".json"):
            tracer.to_chrome(args.trace_out)
        else:
            tracer.to_jsonl(args.trace_out)
        print(f"trace: {len(tracer.spans)} spans -> {args.trace_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
