"""Command-line entry point: ``python -m repro.cli <experiment>``.

Runs any of the paper's experiments at the current ``REPRO_BENCH_SCALE``
and prints the corresponding table.  Experiment ids mirror DESIGN.md:

    fig3            label-ratio comparison (+ supervised reference)
    fig4a .. fig6b  learning curves per dataset
    table1            lazy scoring sweep
    table2            buffer size sweep
    ablation-grad     score-vs-gradient relation
    ablation-views    deterministic vs randomized scoring views
    ablation-stc      temporal-correlation sweep
    ablation-momentum explicit EMA scores vs lazy scoring
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments import (
    default_config,
    format_fig3,
    format_gradient_ablation,
    format_learning_curves,
    format_momentum_ablation,
    format_scoring_view_ablation,
    format_stc_sweep,
    format_table1,
    format_table2,
    run_fig3,
    run_gradient_ablation,
    run_learning_curves,
    run_momentum_ablation,
    run_scoring_view_ablation,
    run_stc_sweep,
    run_table1,
    run_table2,
    scaled_config,
)

__all__ = ["main", "EXPERIMENTS"]

_CURVE_DATASETS = {
    "fig4a": "cifar10",
    "fig4b": "imagenet100",
    "fig5a": "imagenet20",
    "fig5b": "imagenet50",
    "fig6a": "svhn",
    "fig6b": "cifar100",
}


def _run_fig3(seed: int) -> str:
    config = scaled_config(default_config(seed=seed))
    return format_fig3(run_fig3(config))


def _curve_runner(dataset: str) -> Callable[[int], str]:
    def run(seed: int) -> str:
        config = scaled_config(default_config(dataset, seed=seed))
        return format_learning_curves(run_learning_curves(dataset, config))

    return run


def _run_table1(seed: int) -> str:
    config = scaled_config(default_config(seed=seed))
    return format_table1(run_table1(config))


def _run_table2(seed: int) -> str:
    config = scaled_config(default_config(seed=seed))
    return format_table2(run_table2(config))


def _run_ablation_grad(seed: int) -> str:
    config = scaled_config(default_config(seed=seed))
    return format_gradient_ablation(run_gradient_ablation(config))


def _run_ablation_views(seed: int) -> str:
    config = scaled_config(default_config(seed=seed))
    return format_scoring_view_ablation(run_scoring_view_ablation(config))


def _run_ablation_stc(seed: int) -> str:
    config = scaled_config(default_config(seed=seed))
    return format_stc_sweep(run_stc_sweep(config))


def _run_ablation_momentum(seed: int) -> str:
    config = scaled_config(default_config(seed=seed))
    return format_momentum_ablation(run_momentum_ablation(config))


def _run_ablation_drift(seed: int) -> str:
    from repro.experiments.drift import format_drift, run_drift_experiment

    config = scaled_config(default_config(seed=seed))
    return format_drift(run_drift_experiment(config))


EXPERIMENTS: Dict[str, Callable[[int], str]] = {
    "fig3": _run_fig3,
    **{name: _curve_runner(ds) for name, ds in _CURVE_DATASETS.items()},
    "table1": _run_table1,
    "table2": _run_table2,
    "ablation-grad": _run_ablation_grad,
    "ablation-views": _run_ablation_views,
    "ablation-stc": _run_ablation_stc,
    "ablation-momentum": _run_ablation_momentum,
    "ablation-drift": _run_ablation_drift,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce a table/figure of the Selective Data Contrast paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS),
        help="experiment id (see DESIGN.md per-experiment index)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    args = parser.parse_args(argv)

    print(f"== {args.experiment} (seed {args.seed}) ==")
    print(EXPERIMENTS[args.experiment](args.seed))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
