"""On-device storage / energy / compute cost model.

The paper's motivation (§I) is quantitative: storing the whole input
stream in Flash "can be prohibitive in practice", and contrast scoring
adds compute that lazy scoring amortizes.  This module turns those
claims into numbers for a configurable device profile:

* **storage**: bytes written to Flash under (a) the store-everything
  strategy conventional contrastive learning would need and (b) the
  paper's buffer-only framework (RAM resident, nothing persisted);
* **energy**: Flash write/read energy for (a) vs. (b);
* **compute**: FLOPs per framework iteration for training, scoring, and
  scoring-with-lazy-interval (the analytic Table I).

Profiles for two representative platforms are included; all quantities
are per-parameter so users can calibrate their own hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.device.flops import count_forward_flops, training_step_flops
from repro.nn.projection import ProjectionHead
from repro.nn.resnet import ResNetEncoder

__all__ = [
    "DeviceProfile",
    "JETSON_CLASS",
    "MCU_CLASS",
    "DEVICE_PROFILES",
    "StorageCostReport",
    "storage_cost",
    "ComputeCostReport",
    "iteration_compute_cost",
]


@dataclass(frozen=True)
class DeviceProfile:
    """Energy/bandwidth parameters of an edge platform.

    Values are order-of-magnitude representative (see docstring of the
    module); the *ratios* between strategies are the reproduction
    target, not absolute joules.
    """

    name: str
    flash_write_nj_per_byte: float  # energy to program Flash
    flash_read_nj_per_byte: float
    flash_capacity_bytes: float
    compute_pj_per_flop: float  # marginal energy of arithmetic
    ram_bytes: float

    def __post_init__(self) -> None:
        for field_name in (
            "flash_write_nj_per_byte",
            "flash_read_nj_per_byte",
            "flash_capacity_bytes",
            "compute_pj_per_flop",
            "ram_bytes",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")


#: Embedded-GPU class device (Jetson-like): ample Flash, efficient compute.
JETSON_CLASS = DeviceProfile(
    name="jetson-class",
    flash_write_nj_per_byte=30.0,
    flash_read_nj_per_byte=5.0,
    flash_capacity_bytes=16e9,
    compute_pj_per_flop=10.0,
    ram_bytes=4e9,
)

#: Microcontroller class device: tiny Flash, expensive writes.
MCU_CLASS = DeviceProfile(
    name="mcu-class",
    flash_write_nj_per_byte=100.0,
    flash_read_nj_per_byte=15.0,
    flash_capacity_bytes=8e6,
    compute_pj_per_flop=50.0,
    ram_bytes=512e3,
)

#: Profiles addressable by name (``DeviceSpec.profile`` in the fleet
#: engine resolves through this mapping).
DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    JETSON_CLASS.name: JETSON_CLASS,
    MCU_CLASS.name: MCU_CLASS,
}


@dataclass
class StorageCostReport:
    """Store-everything vs. buffer-only storage/energy comparison."""

    stream_samples: int
    bytes_per_sample: int
    store_all_bytes: float
    buffer_bytes: float
    store_all_energy_mj: float
    buffer_energy_mj: float
    exceeds_flash: bool

    @property
    def storage_ratio(self) -> float:
        """How many times more storage the store-all strategy needs."""
        return self.store_all_bytes / self.buffer_bytes


def storage_cost(
    profile: DeviceProfile,
    stream_samples: int,
    image_shape: tuple,
    buffer_size: int,
    epochs_over_store: int = 1,
) -> StorageCostReport:
    """Quantify the paper's §I storage argument for a given stream.

    Store-everything writes every sample once and reads it back
    ``epochs_over_store`` times (conventional training does many
    epochs); the buffer framework keeps ``buffer_size`` samples in RAM
    and persists nothing.
    """
    if stream_samples < 1 or buffer_size < 1:
        raise ValueError("stream_samples and buffer_size must be positive")
    if epochs_over_store < 1:
        raise ValueError("epochs_over_store must be >= 1")
    channels, height, width = image_shape
    bytes_per_sample = int(channels * height * width * 4)  # float32

    store_all_bytes = float(stream_samples) * bytes_per_sample
    store_energy_nj = store_all_bytes * profile.flash_write_nj_per_byte
    store_energy_nj += (
        store_all_bytes * epochs_over_store * profile.flash_read_nj_per_byte
    )

    buffer_bytes = float(buffer_size) * bytes_per_sample
    # buffer lives in RAM; Flash traffic is zero under the framework.
    buffer_energy_nj = 0.0

    return StorageCostReport(
        stream_samples=stream_samples,
        bytes_per_sample=bytes_per_sample,
        store_all_bytes=store_all_bytes,
        buffer_bytes=buffer_bytes,
        store_all_energy_mj=store_energy_nj * 1e-6,
        buffer_energy_mj=buffer_energy_nj * 1e-6,
        exceeds_flash=store_all_bytes > profile.flash_capacity_bytes,
    )


@dataclass
class ComputeCostReport:
    """Per-iteration FLOPs/energy breakdown of the framework."""

    train_flops: float
    scoring_flops: float
    scoring_flops_lazy: float
    lazy_interval: Optional[int]
    energy_train_mj: float
    energy_scoring_mj: float
    energy_scoring_lazy_mj: float

    @property
    def relative_batch_flops(self) -> float:
        """Analytic analogue of Table I's relative batch time (eager)."""
        return (self.train_flops + self.scoring_flops) / self.train_flops

    @property
    def relative_batch_flops_lazy(self) -> float:
        """Analytic relative batch cost with lazy scoring enabled."""
        return (self.train_flops + self.scoring_flops_lazy) / self.train_flops


def iteration_compute_cost(
    profile: DeviceProfile,
    encoder: ResNetEncoder,
    projector: ProjectionHead,
    image_size: int,
    buffer_size: int,
    segment_size: Optional[int] = None,
    lazy_interval: Optional[int] = None,
) -> ComputeCostReport:
    """FLOPs and energy of one framework iteration.

    Scoring cost: each scored sample takes 2 inference forwards (the
    sample and its flip view).  Eager scoring scores the whole pool
    (buffer + segment); lazy scoring scores the segment plus ~1/T of
    the buffer (the Eq. 7 steady state).
    """
    segment_size = buffer_size if segment_size is None else segment_size
    if buffer_size < 1 or segment_size < 1:
        raise ValueError("buffer_size and segment_size must be positive")
    if lazy_interval is not None and lazy_interval < 1:
        raise ValueError("lazy_interval must be >= 1 or None")

    forward_one = count_forward_flops(
        encoder, image_size, 1
    ) + count_forward_flops(projector, image_size, 1)

    train_flops = training_step_flops(encoder, projector, image_size, buffer_size)

    eager_scored = buffer_size + segment_size
    scoring_flops = 2.0 * forward_one * eager_scored

    if lazy_interval is None or lazy_interval <= 1:
        lazy_scored = float(eager_scored)
    else:
        lazy_scored = segment_size + buffer_size / lazy_interval
    scoring_flops_lazy = 2.0 * forward_one * lazy_scored

    to_mj = profile.compute_pj_per_flop * 1e-9
    return ComputeCostReport(
        train_flops=train_flops,
        scoring_flops=scoring_flops,
        scoring_flops_lazy=scoring_flops_lazy,
        lazy_interval=lazy_interval,
        energy_train_mj=train_flops * to_mj,
        energy_scoring_mj=scoring_flops * to_mj,
        energy_scoring_lazy_mj=scoring_flops_lazy * to_mj,
    )
