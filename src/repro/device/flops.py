"""FLOP counting for the nn substrate.

Walks a module tree and accounts multiply-accumulate operations for the
layers used by the reproduction (conv, linear, batch-norm, pooling,
residual adds).  Used by the on-device cost model to quantify the
compute overhead of contrast scoring and the savings of lazy scoring —
the analytic companion to the paper's measured Table I.

Conventions: one multiply-accumulate = 2 FLOPs; batch-norm and ReLU are
counted as one FLOP per element (inference form).
"""

from __future__ import annotations

from typing import Tuple

from repro.nn.im2col import conv_output_size
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from repro.nn.projection import ProjectionHead
from repro.nn.resnet import BasicBlock, ResNetEncoder

__all__ = ["count_forward_flops", "training_step_flops"]


def _conv_flops(layer: Conv2d, in_hw: Tuple[int, int]) -> Tuple[float, Tuple[int, int]]:
    h, w = in_hw
    out_h = conv_output_size(h, layer.kernel_size, layer.stride, layer.padding)
    out_w = conv_output_size(w, layer.kernel_size, layer.stride, layer.padding)
    macs = (
        layer.out_channels
        * out_h
        * out_w
        * layer.in_channels
        * layer.kernel_size
        * layer.kernel_size
    )
    flops = 2.0 * macs
    if layer.bias is not None:
        flops += layer.out_channels * out_h * out_w
    return flops, (out_h, out_w)


def _linear_flops(layer: Linear) -> float:
    flops = 2.0 * layer.in_features * layer.out_features
    if layer.bias is not None:
        flops += layer.out_features
    return flops


def _block_flops(block: BasicBlock, in_hw: Tuple[int, int], channels: int):
    total, hw = _conv_flops(block.conv1, in_hw)
    total += block.bn1.num_features * hw[0] * hw[1]  # bn1
    total += block.bn1.num_features * hw[0] * hw[1]  # relu
    conv2_flops, hw = _conv_flops(block.conv2, hw)
    total += conv2_flops
    total += block.bn2.num_features * hw[0] * hw[1]  # bn2
    if block.needs_projection:
        sc_flops, _ = _conv_flops(block.shortcut_conv, in_hw)
        total += sc_flops
        total += block.shortcut_bn.num_features * hw[0] * hw[1]
    total += block.bn2.num_features * hw[0] * hw[1]  # residual add
    total += block.bn2.num_features * hw[0] * hw[1]  # final relu
    return total, hw


def count_forward_flops(
    module: Module, image_size: int, batch_size: int = 1
) -> float:
    """Forward-pass FLOPs of an encoder / projection head / composition.

    Parameters
    ----------
    module: a :class:`ResNetEncoder`, :class:`ProjectionHead`,
        :class:`BasicBlock`, or one of the primitive layers.
    image_size: square input resolution (ignored for pure MLP heads).
    batch_size: scales the count linearly.
    """
    if isinstance(module, ResNetEncoder):
        total = 0.0
        hw = (image_size, image_size)
        flops, hw = _conv_flops(module.stem_conv, hw)
        total += flops
        total += 3 * module.stem_bn.num_features * hw[0] * hw[1]  # bn + relu + slack
        channels = module.widths[0]
        for stage in module.stages:
            for block in stage.layers:
                flops, hw = _block_flops(block, hw, channels)
                total += flops
        total += module.feature_dim * hw[0] * hw[1]  # global average pool
        return total * batch_size
    if isinstance(module, ProjectionHead):
        total = _linear_flops(module.fc1) + _linear_flops(module.fc2)
        total += module.fc1.out_features  # relu
        if module.normalize:
            total += 3 * module.out_dim  # square, sum, divide
        return total * batch_size
    if isinstance(module, BasicBlock):
        flops, _ = _block_flops(module, (image_size, image_size), module.conv1.in_channels)
        return flops * batch_size
    if isinstance(module, Conv2d):
        flops, _ = _conv_flops(module, (image_size, image_size))
        return flops * batch_size
    if isinstance(module, Linear):
        return _linear_flops(module) * batch_size
    if isinstance(module, BatchNorm2d):
        return module.num_features * image_size * image_size * batch_size
    if isinstance(module, Sequential):
        # only valid for spatially-preserving members; callers should prefer
        # the typed branches above.
        return sum(
            count_forward_flops(child, image_size, batch_size)
            for child in module.layers
        )
    if isinstance(module, (ReLU, MaxPool2d, AvgPool2d, GlobalAvgPool2d, Flatten, Identity)):
        return 0.0
    raise TypeError(f"FLOP counting not implemented for {type(module).__name__}")


def training_step_flops(
    encoder: ResNetEncoder,
    projector: ProjectionHead,
    image_size: int,
    batch_size: int,
) -> float:
    """FLOPs of one contrastive training step (two views, fwd + bwd).

    Uses the standard backward ≈ 2× forward approximation, so one
    training step on N pairs costs ≈ 3 forwards on 2N images.
    """
    forward = count_forward_flops(encoder, image_size, batch_size) + count_forward_flops(
        projector, image_size, batch_size
    )
    return 3.0 * 2.0 * forward
