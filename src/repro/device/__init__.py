"""On-device cost modeling: FLOP counting for the nn substrate and the
storage/energy/compute model behind the paper's §I motivation and the
analytic companion to Table I.
"""

from repro.device.cost_model import (
    JETSON_CLASS,
    MCU_CLASS,
    ComputeCostReport,
    DeviceProfile,
    StorageCostReport,
    iteration_compute_cost,
    storage_cost,
)
from repro.device.flops import count_forward_flops, training_step_flops

__all__ = [
    "DeviceProfile",
    "JETSON_CLASS",
    "MCU_CLASS",
    "StorageCostReport",
    "storage_cost",
    "ComputeCostReport",
    "iteration_compute_cost",
    "count_forward_flops",
    "training_step_flops",
]
