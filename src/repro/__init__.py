"""repro — reproduction of "Enabling On-Device Self-Supervised
Contrastive Learning with Selective Data Contrast" (DAC 2021).

Public API tour
---------------
* :mod:`repro.core` — the paper's contribution: contrast scoring
  (:class:`~repro.core.ContrastScorer`), the replacement policy
  (:class:`~repro.core.ContrastScoringPolicy`), lazy scoring
  (:class:`~repro.core.LazyScoringSchedule`), and the stage-1 framework
  (:class:`~repro.core.OnDeviceContrastiveLearner`).
* :mod:`repro.nn` — numpy autograd substrate: ResNet encoder,
  projection head, NT-Xent loss, Adam.
* :mod:`repro.data` — synthetic datasets, temporally correlated streams
  (STC), SimCLR augmentations, label splits.
* :mod:`repro.selection` — the four label-free baselines.
* :mod:`repro.train` — stage-2 linear probes and the supervised
  baseline.
* :mod:`repro.experiments` — harnesses regenerating every paper table
  and figure.

Quickstart
----------
>>> from repro import quickstart_components
>>> learner, stream, dataset = quickstart_components(seed=0)
>>> for segment in stream.segments(32, 640):
...     stats = learner.process_segment(segment)
"""

from repro.core import (
    ContrastScorer,
    ContrastScoringPolicy,
    DataBuffer,
    LazyScoringSchedule,
    OnDeviceContrastiveLearner,
)
from repro.version import __version__

__all__ = [
    "__version__",
    "ContrastScorer",
    "ContrastScoringPolicy",
    "DataBuffer",
    "LazyScoringSchedule",
    "OnDeviceContrastiveLearner",
    "quickstart_components",
]


def quickstart_components(
    dataset: str = "cifar10",
    buffer_size: int = 32,
    stc: int = 64,
    seed: int = 0,
):
    """Build a ready-to-run (learner, stream, dataset) triple.

    A convenience wrapper over :mod:`repro.experiments` wiring for the
    README quickstart and the examples.
    """
    from repro.data.augment import SimCLRAugment
    from repro.data.stream import TemporalStream
    from repro.experiments.config import default_config
    from repro.experiments.runner import build_components, make_policy

    config = default_config(dataset, seed=seed).with_(buffer_size=buffer_size, stc=stc)
    comp = build_components(config)
    policy = make_policy(
        "contrast-scoring", comp.scorer, buffer_size, comp.rngs.get("policy")
    )
    learner = OnDeviceContrastiveLearner(
        comp.encoder,
        comp.projector,
        policy,
        buffer_size,
        comp.rngs.get("augment"),
        temperature=config.temperature,
        lr=config.lr,
        weight_decay=config.weight_decay,
        augment=SimCLRAugment(
            min_crop_scale=config.augment_min_crop,
            jitter_strength=config.augment_jitter,
        ),
    )
    stream = TemporalStream(comp.dataset, stc, comp.rngs.get("stream"))
    return learner, stream, comp.dataset
