"""repro — reproduction of "Enabling On-Device Self-Supervised
Contrastive Learning with Selective Data Contrast" (DAC 2021).

Public API tour
---------------
* :mod:`repro.core` — the paper's contribution: contrast scoring
  (:class:`~repro.core.ContrastScorer`), the replacement policy
  (:class:`~repro.core.ContrastScoringPolicy`), lazy scoring
  (:class:`~repro.core.LazyScoringSchedule`), and the stage-1 framework
  (:class:`~repro.core.OnDeviceContrastiveLearner`).
* :mod:`repro.nn` — numpy autograd substrate: ResNet encoder,
  projection head, NT-Xent loss, Adam.
* :mod:`repro.data` — synthetic datasets, the stream-scenario zoo
  (temporal STC runs, drift, cyclic drift, bursty, imbalanced,
  corrupted — see docs/SCENARIOS.md), SimCLR augmentations, label
  splits.
* :mod:`repro.selection` — the four label-free baselines.
* :mod:`repro.train` — stage-2 linear probes and the supervised
  baseline.
* :mod:`repro.experiments` — harnesses regenerating every paper table
  and figure.

* :mod:`repro.registry` — the extension surface: ``@register_policy``,
  ``@register_dataset``, ``@register_encoder``, ``@register_augment``,
  ``@register_backend``, ``@register_scenario``.
* :mod:`repro.nn.backend` — pluggable array-execution backends
  (``numpy`` reference, ``fused`` inference engine; select via
  ``REPRO_BACKEND``, ``--backend``, or ``config.backend``).
* :mod:`repro.session` — the unified experiment surface:
  :class:`~repro.session.Session`.

Quickstart
----------
>>> from repro import Session
>>> result = (
...     Session.from_config(seed=0, total_samples=640)
...     .with_policy("contrast-scoring")
...     .run()
... )  # doctest: +SKIP
>>> result.final_accuracy  # doctest: +SKIP
"""

from repro.core import (
    ContrastScorer,
    ContrastScoringPolicy,
    DataBuffer,
    LazyScoringSchedule,
    OnDeviceContrastiveLearner,
)
from repro.registry import (
    create_policy,
    register_augment,
    register_backend,
    register_dataset,
    register_encoder,
    register_policy,
    register_scenario,
)
from repro.session import Session, StreamRunResult
from repro.version import __version__

__all__ = [
    "__version__",
    "ContrastScorer",
    "ContrastScoringPolicy",
    "DataBuffer",
    "LazyScoringSchedule",
    "OnDeviceContrastiveLearner",
    "Session",
    "StreamRunResult",
    "create_policy",
    "register_augment",
    "register_backend",
    "register_dataset",
    "register_encoder",
    "register_policy",
    "register_scenario",
    "quickstart_components",
]


def quickstart_components(
    dataset: str = "cifar10",
    buffer_size: int = 32,
    stc: int = 64,
    seed: int = 0,
):
    """Deprecated: build a ready-to-run (learner, stream, dataset) triple.

    Use :class:`repro.session.Session` instead — it owns the same wiring
    plus probes, callbacks, and checkpointing (the README quickstart and
    every example go through it).  Kept only so pre-Session scripts keep
    running.
    """
    import warnings

    warnings.warn(
        "repro.quickstart_components is deprecated; use repro.Session "
        "(e.g. Session.from_config(...).run())",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.data.stream import TemporalStream
    from repro.experiments.config import default_config
    from repro.session import build_augment, build_components

    config = default_config(dataset, seed=seed).with_(buffer_size=buffer_size, stc=stc)
    comp = build_components(config)
    policy = create_policy(
        "contrast-scoring",
        scorer=comp.scorer,
        capacity=buffer_size,
        rng=comp.rngs.get("policy"),
    )
    learner = OnDeviceContrastiveLearner(
        comp.encoder,
        comp.projector,
        policy,
        buffer_size,
        comp.rngs.get("augment"),
        temperature=config.temperature,
        lr=config.lr,
        weight_decay=config.weight_decay,
        augment=build_augment(config),
    )
    stream = TemporalStream(comp.dataset, stc, comp.rngs.get("stream"))
    return learner, stream, comp.dataset
