"""Optimizers: SGD with momentum and Adam, both with decoupled usage of
weight decay matching the paper's setup (Adam + weight decay 1e-4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "sqrt_batch_lr_scale"]


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        params = list(params)
        if not params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = params
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(id(p))
                if v is None:
                    v = np.zeros_like(p.data)
                v = self.momentum * v + grad
                self._velocity[id(p)] = v
                grad = v
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam with L2 weight decay added to the gradient (paper setup)."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = b1 * m + (1 - b1) * grad
            v = b2 * v + (1 - b2) * grad * grad
            self._m[id(p)] = m
            self._v[id(p)] = v
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Moment estimates and step count, keyed by parameter order.

        Parameters that have not yet received a gradient are stored as
        zero moments, which is exactly what :meth:`step` would lazily
        initialize them to.
        """
        out: Dict[str, np.ndarray] = {"t": np.array(self._t, dtype=np.int64)}
        for i, p in enumerate(self.params):
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            out[f"m{i}"] = (np.zeros_like(p.data) if m is None else m).copy()
            out[f"v{i}"] = (np.zeros_like(p.data) if v is None else v).copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore moments written by :meth:`state_dict` (same param order)."""
        self._t = int(state["t"])
        for i, p in enumerate(self.params):
            m = np.asarray(state[f"m{i}"])
            v = np.asarray(state[f"v{i}"])
            if m.shape != p.data.shape or v.shape != p.data.shape:
                raise ValueError(
                    f"optimizer state shape mismatch at param {i}: "
                    f"{m.shape}/{v.shape} vs {p.data.shape}"
                )
            self._m[id(p)] = m.copy()
            self._v[id(p)] = v.copy()


def sqrt_batch_lr_scale(base_lr: float, batch_size: int, base_batch: int = 256) -> float:
    """Scale a learning rate with sqrt(batch size), the paper's Table II rule.

    The paper scales lr to {1, 3, 5, 10}e-5 for buffers {8, 32, 128, 256},
    "roughly following lr ∝ sqrt(batch size)"; this helper implements the
    exact sqrt rule anchored at ``base_batch``.
    """
    if batch_size <= 0:
        raise ValueError(f"batch size must be positive, got {batch_size}")
    return base_lr * np.sqrt(batch_size / base_batch)
