"""Differentiable neural-network operations on :class:`~repro.nn.tensor.Tensor`.

Everything here builds on the autograd closures of
:mod:`repro.nn.tensor`.  Array compute routes through the active
:class:`~repro.nn.backend.base.ArrayBackend`: convolution uses the
backend's im2col gather/scatter ops, and the gradient-free forward
paths dispatch to the backend's inference entry points
(``conv2d_infer`` plus — through :func:`conv_bn_relu` and
:func:`add_relu` — the optional conv→BN→ReLU and residual-join fusions
a backend may advertise via ``supports_fusion``).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.nn.backend.base import get_backend
from repro.nn.im2col import conv_output_size
from repro.nn.tensor import Tensor, is_grad_enabled

__all__ = [
    "relu",
    "conv2d",
    "conv_bn_relu",
    "add_relu",
    "bn_eval_affine",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "linear",
    "softmax",
    "log_softmax",
    "logsumexp",
    "l2_normalize",
    "dropout",
    "one_hot",
    "cosine_similarity",
    "pad_channels",
]


def relu(x: Tensor) -> Tensor:
    """Elementwise rectified linear unit."""
    return x.relu()


def _make_op(data, parents, backward) -> Tensor:
    """Build an op result tensor; mirrors ``Tensor._make`` for free functions."""
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    out = Tensor(data, requires_grad=requires, _parents=tuple(parents))
    if requires:
        out._backward = backward
    return out


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution over an NCHW batch.

    Parameters
    ----------
    x: ``(N, C_in, H, W)`` input.
    weight: ``(C_out, C_in, kh, kw)`` filters.
    bias: optional ``(C_out,)``.

    Gradient-free forwards (``no_grad`` scoring/eval, frozen inputs)
    dispatch to the backend's ``conv2d_infer`` fast path, which may
    serve its unfold from a scratch workspace and reuse output buffers
    (the returned array is always caller-owned).  Autograd forwards
    always own their columns (the backward closure reads them for the
    weight gradient), so they unfold with ``grad_free=False``.
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d expects NCHW input, got shape {x.shape}")
    if weight.ndim != 4:
        raise ValueError(f"conv2d expects 4-D weight, got shape {weight.shape}")
    if x.shape[1] != weight.shape[1]:
        raise ValueError(
            f"input has {x.shape[1]} channels but weight expects {weight.shape[1]}"
        )
    n, _, h, w = x.shape
    c_out, c_in, kh, kw = weight.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    parents = (x, weight) if bias is None else (x, weight, bias)
    needs_grad = is_grad_enabled() and any(p.requires_grad for p in parents)
    backend = get_backend()
    if not needs_grad:
        return Tensor(
            backend.conv2d_infer(
                x.data,
                weight.data,
                None if bias is None else bias.data,
                stride,
                padding,
            )
        )

    cols = backend.im2col(x.data, (kh, kw), stride, padding, grad_free=False)
    w_mat = weight.data.reshape(c_out, -1)  # (C_out, C*kh*kw)
    out = backend.matmul(cols, w_mat.T)  # (N, oh, ow, C_out)
    if bias is not None:
        out = out + bias.data
    out = np.ascontiguousarray(out.transpose(0, 3, 1, 2))

    def backward(g: np.ndarray):
        # g: (N, C_out, oh, ow) -> (N, oh, ow, C_out)
        g_nhwc = g.transpose(0, 2, 3, 1)
        gx = gw = gb = None
        if x.requires_grad:
            gcols = backend.matmul(g_nhwc, w_mat)  # (N, oh, ow, C*kh*kw)
            gx = backend.col2im(gcols, x.shape, (kh, kw), stride, padding)
        if weight.requires_grad:
            gw_mat = backend.einsum("nijf,nijk->fk", g_nhwc, cols)
            gw = gw_mat.reshape(weight.shape)
        if bias is not None and bias.requires_grad:
            gb = g_nhwc.sum(axis=(0, 1, 2))
        if bias is None:
            return (gx, gw)
        return (gx, gw, gb)

    return _make_op(out, parents, backward)


def conv_bn_relu(x: Tensor, conv, bn, relu: bool = True) -> Tensor:
    """Convolution → batch norm (→ ReLU), fused when the backend can.

    ``conv`` and ``bn`` are :class:`~repro.nn.layers.Conv2d` /
    :class:`~repro.nn.layers.BatchNorm2d` modules (duck-typed).  The
    fused path applies only when the whole chain is gradient-free and
    ``bn`` runs on running statistics (eval mode): eval BN is a
    per-channel affine, so the backend folds it into the convolution
    and skips the separate normalization pass.  Every other case —
    training-mode BN, any parameter recording gradients, or a backend
    without fusion — composes the exact reference sequence
    ``bn(conv(x))`` (+ ``relu``), so autograd results are identical on
    every backend.
    """
    backend = get_backend()
    grad_live = is_grad_enabled() and (
        x.requires_grad
        or conv.weight.requires_grad
        or (conv.bias is not None and conv.bias.requires_grad)
        or bn.gamma.requires_grad
        or bn.beta.requires_grad
    )
    if backend.supports_fusion and not bn.training and not grad_live:
        scale, shift = bn_eval_affine(bn)
        out = backend.conv_bn_infer(
            x.data,
            conv.weight.data,
            None if conv.bias is None else conv.bias.data,
            conv.stride,
            conv.padding,
            scale,
            shift,
            relu,
        )
        if out is not None:
            return Tensor(out)
    out = bn(conv(x))
    return out.relu() if relu else out


def bn_eval_affine(bn) -> Tuple[np.ndarray, np.ndarray]:
    """The per-channel affine eval-mode batch norm reduces to.

    Returns ``(scale, shift)`` with ``scale = gamma / sqrt(var + eps)``
    and ``shift = beta - mean * scale`` — the fold the fused backends
    push into the preceding convolution's weights.
    """
    mean = bn._buffers["running_mean"]
    var = bn._buffers["running_var"]
    scale = bn.gamma.data / np.sqrt(var + bn.eps)
    return scale, bn.beta.data - mean * scale


def add_relu(a: Tensor, b: Tensor) -> Tensor:
    """``relu(a + b)`` — the residual-join epilogue.

    Gradient-free calls dispatch to the backend (which may run the
    rectification in place on the sum); autograd calls compose the
    reference ``(a + b).relu()``.
    """
    if is_grad_enabled() and (a.requires_grad or b.requires_grad):
        return (a + b).relu()
    return Tensor(get_backend().add_relu_infer(a.data, b.data))


def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Non-overlapping max pooling (``stride`` defaults to ``kernel``).

    Only ``stride == kernel`` is supported, which is the configuration
    ResNets use; overlapping pooling would complicate the gradient fold
    for no benefit here.
    """
    stride = kernel if stride is None else stride
    if stride != kernel:
        raise NotImplementedError("max_pool2d supports stride == kernel only")
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(
            f"input spatial dims {(h, w)} not divisible by pool kernel {kernel}"
        )
    oh, ow = h // kernel, w // kernel
    windows = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out = windows.max(axis=(3, 5))
    # Argmax mask (ties share gradient like Tensor.max).
    expanded = out[:, :, :, None, :, None]
    mask = (windows == expanded).astype(x.data.dtype)
    mask_sum = mask.sum(axis=(3, 5), keepdims=True)

    def backward(g: np.ndarray):
        g_exp = g[:, :, :, None, :, None] * mask / mask_sum
        return (g_exp.reshape(n, c, h, w),)

    return _make_op(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Non-overlapping average pooling (``stride`` defaults to ``kernel``)."""
    stride = kernel if stride is None else stride
    if stride != kernel:
        raise NotImplementedError("avg_pool2d supports stride == kernel only")
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(
            f"input spatial dims {(h, w)} not divisible by pool kernel {kernel}"
        )
    oh, ow = h // kernel, w // kernel
    windows = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out = windows.mean(axis=(3, 5))
    scale = 1.0 / (kernel * kernel)

    def backward(g: np.ndarray):
        g_exp = np.broadcast_to(
            g[:, :, :, None, :, None] * scale, (n, c, oh, kernel, ow, kernel)
        )
        return (g_exp.reshape(n, c, h, w),)

    return _make_op(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over all spatial positions: (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3))


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with weight shape (out, in)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` along ``axis``."""
    a = x
    backend = get_backend()
    m = backend.max(a.data, axis=axis, keepdims=True)
    shifted = backend.exp(a.data - m)
    total = backend.sum(shifted, axis=axis, keepdims=True)
    data = backend.log(total) + m
    softmax_vals = shifted / total
    if not keepdims:
        data = np.squeeze(data, axis=axis)

    def backward(g: np.ndarray):
        g_exp = g if keepdims else np.expand_dims(g, axis)
        return (g_exp * softmax_vals,)

    return _make_op(data, (a,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log of the softmax along ``axis`` (stable fused implementation)."""
    a = x
    backend = get_backend()
    m = backend.max(a.data, axis=axis, keepdims=True)
    shifted = a.data - m
    exp = backend.exp(shifted)
    total = backend.sum(exp, axis=axis, keepdims=True)
    data = shifted - backend.log(total)
    softmax_vals = exp / total

    def backward(g: np.ndarray):
        return (g - softmax_vals * g.sum(axis=axis, keepdims=True),)

    return _make_op(data, (a,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (stable fused implementation)."""
    a = x
    backend = get_backend()
    m = backend.max(a.data, axis=axis, keepdims=True)
    exp = backend.exp(a.data - m)
    data = exp / backend.sum(exp, axis=axis, keepdims=True)

    def backward(g: np.ndarray):
        dot = (g * data).sum(axis=axis, keepdims=True)
        return (data * (g - dot),)

    return _make_op(data, (a,), backward)


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Project rows of ``x`` onto the unit sphere: ``x / ||x||_2``.

    This is the normalization the paper applies to projection-head
    outputs (Eq. 3) so the dot product ``z_i^T z_i+`` lies in [-1, 1].
    """
    a = x
    backend = get_backend()
    norm = backend.sqrt(backend.sum(a.data * a.data, axis=axis, keepdims=True))
    norm = backend.maximum(norm, eps)
    data = a.data / norm

    def backward(g: np.ndarray):
        dot = (g * data).sum(axis=axis, keepdims=True)
        return ((g - data * dot) / norm,)

    return _make_op(data, (a,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout with keep-probability ``1-p``."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    a = x
    return _make_op(a.data * mask, (a,), lambda g: (g * mask,))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels (N,) -> one-hot float32 matrix (N, num_classes)."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels out of range [0, {num_classes}): "
            f"min={labels.min()}, max={labels.max()}"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def cosine_similarity(a: np.ndarray, b: np.ndarray, axis: int = -1) -> np.ndarray:
    """Cosine similarity between paired rows of two numpy arrays.

    Accumulated at the backend's loss-reduction precision (float64 on
    the built-ins; see the ``loss_reduction_dtype`` policy docs).
    """
    dtype = get_backend().loss_reduction_dtype
    a = np.asarray(a, dtype=dtype)
    b = np.asarray(b, dtype=dtype)
    na = np.linalg.norm(a, axis=axis)
    nb = np.linalg.norm(b, axis=axis)
    denom = np.maximum(na * nb, 1e-12)
    return (a * b).sum(axis=axis) / denom


def pad_channels(x: Tensor, extra: int) -> Tensor:
    """Zero-pad ``extra`` channels onto an NCHW tensor (for shortcut paths)."""
    if extra < 0:
        raise ValueError(f"extra channels must be non-negative, got {extra}")
    if extra == 0:
        return x
    a = x
    n, c, h, w = a.shape
    data = np.concatenate(
        [a.data, np.zeros((n, extra, h, w), dtype=a.data.dtype)], axis=1
    )

    def backward(g: np.ndarray):
        return (g[:, :c],)

    return _make_op(data, (a,), backward)
