"""The ``numpy`` reference backend.

A direct instantiation of the :class:`~repro.nn.backend.base.
ArrayBackend` reference semantics: plain numpy execution, float64
scoring (the historical precision), workspace-backed gradient-free
unfolds through the process-wide :func:`repro.nn.im2col.
default_workspace`, and no fusion.  Every other backend is defined —
and parity-tested — against this one.
"""

from __future__ import annotations

from repro.nn.backend.base import ArrayBackend
from repro.registry import register_backend

__all__ = ["NumpyBackend"]


@register_backend("numpy", label="NumPy reference", aliases=("np", "reference"))
class NumpyBackend(ArrayBackend):
    """Reference execution: unfused, float64 scoring, numpy semantics."""

    name = "numpy"
