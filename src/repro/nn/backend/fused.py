"""The ``fused`` optimized backend.

Same math as the :class:`~repro.nn.backend.numpy_backend.NumpyBackend`
reference, executed the way an on-device inference engine would run it:

* **conv → BN → ReLU fusion** — eval-mode batch norm is a per-channel
  affine, so it folds into the convolution weights once per call
  (``w' = w * scale``, a pass over the tiny filter tensor) and the GEMM
  emits normalized activations directly; the optional ReLU runs
  in-place on the GEMM buffer.  This collapses the reference path's
  per-layer sequence (conv repack, BN scale/shift temporaries, ReLU
  mask/where/astype) into GEMM + two in-place epilogues.
* **Buffer reuse** — the unfold scratch (padded input, columns) and the
  GEMM output land in a private :class:`~repro.nn.im2col.
  Im2colWorkspace` (``out=`` into the arena), so a steady-state
  inference forward allocates exactly one array per layer: the NCHW
  output it returns.  Returned arrays are always fresh copies — the
  caller-ownership invariant of the protocol holds.
* **float32 end-to-end** — gradient-free scoring forwards stay in the
  compute dtype instead of upcasting projections to float64
  (:attr:`scoring_dtype`); contrast scores have ~1e-3 gaps on a [0, 2]
  scale, far above float32 resolution, and the final score vector is
  still returned as float64 by the scorer for buffer compatibility.
  Per-sample *loss* reductions keep float64 (see the base class
  rationale on :attr:`~repro.nn.backend.base.ArrayBackend.
  loss_reduction_dtype`).

Fusion only ever applies to gradient-free forwards (the scoring /
probe-evaluation hot path); autograd training math is inherited
unchanged from the reference backend, so training trajectories are
bitwise identical across backends.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.backend.numpy_backend import NumpyBackend
from repro.nn.im2col import Im2colWorkspace, conv_output_size, im2col, im2col_nhwc
from repro.registry import register_backend

__all__ = ["FusedBackend"]


@register_backend("fused", label="Fused inference", aliases=("fast",))
class FusedBackend(NumpyBackend):
    """conv→BN→ReLU fusion + arena buffer reuse + float32 inference."""

    name = "fused"
    scoring_dtype = np.float32
    supports_fusion = True
    supports_nhwc_infer = True

    def __init__(self) -> None:
        # Private workspace (separate from the reference backend's
        # process-wide one): the fused path adds a "gemm" role, and
        # sharing arenas across backends would entangle their
        # invalidation windows.
        self._workspace = Im2colWorkspace()

    @property
    def workspace(self) -> Im2colWorkspace:
        """The private scratch workspace (stats/clear for benchmarks)."""
        return self._workspace

    # -- elementwise -----------------------------------------------------
    def relu(self, x: np.ndarray) -> np.ndarray:
        # Single-pass maximum instead of mask/where/astype; only zero
        # signs can differ from the reference, which no consumer
        # observes.
        return np.maximum(x, 0.0)

    # -- im2col ----------------------------------------------------------
    def im2col(
        self,
        x: np.ndarray,
        kernel: Tuple[int, int],
        stride: int,
        padding: int,
        grad_free: bool = False,
    ) -> np.ndarray:
        workspace = self._workspace if grad_free else None
        return im2col(x, kernel, stride, padding, workspace=workspace)

    # -- inference fast paths -------------------------------------------
    def conv2d_infer(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int,
        padding: int,
    ) -> np.ndarray:
        return self._conv_epilogue_infer(
            x, weight, bias, stride, padding, scale=None, shift=None, relu=False
        )

    def conv_bn_infer(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int,
        padding: int,
        scale: np.ndarray,
        shift: np.ndarray,
        relu: bool,
    ) -> np.ndarray:
        return self._conv_epilogue_infer(
            x, weight, bias, stride, padding, scale=scale, shift=shift, relu=relu
        )

    def add_relu_infer(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = a + b
        return np.maximum(out, 0.0, out=out)

    # -- NHWC inference chain -------------------------------------------
    def to_nhwc(self, x: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(x.transpose(0, 2, 3, 1))

    def conv_bn_nhwc(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int,
        padding: int,
        scale: Optional[np.ndarray],
        shift: Optional[np.ndarray],
        relu: bool,
    ) -> np.ndarray:
        """Channels-last fused conv: contiguous unfold, GEMM straight
        into the caller-owned NHWC output, in-place epilogues.

        Unlike the NCHW fast path there is no layout repack at all —
        the GEMM result *is* the output the next layer consumes — so a
        steady-state chain costs one gather (workspace), one GEMM, and
        two in-place vector passes per layer.
        """
        c_out, c_in, kh, kw = weight.shape
        n, h, w, _ = x.shape
        out_h = conv_output_size(h, kh, stride, padding)
        out_w = conv_output_size(w, kw, stride, padding)
        dtype = np.promote_types(x.dtype, self.compute_dtype)

        # (C_out, C_in, kh, kw) -> (C_out, kh*kw*C_in), matching the
        # (kh, kw, C) order of the NHWC columns; BN folds in here.
        w_mat = weight.transpose(0, 2, 3, 1).reshape(c_out, -1)
        if scale is not None:
            w_mat = w_mat * scale[:, None]
            b_vec = shift if bias is None else bias * scale + shift
        else:
            b_vec = bias
        w_mat = np.ascontiguousarray(w_mat, dtype=dtype)

        cols = im2col_nhwc(x, (kh, kw), stride, padding, workspace=self._workspace)
        out = np.empty((n, out_h, out_w, c_out), dtype=dtype)
        np.matmul(
            cols.reshape(n * out_h * out_w, kh * kw * c_in).astype(dtype, copy=False),
            w_mat.T,
            out=out.reshape(n * out_h * out_w, c_out),
        )
        if b_vec is not None:
            out += b_vec.astype(dtype, copy=False)
        if relu:
            np.maximum(out, 0.0, out=out)
        return out

    def pool_mean_nhwc(self, x: np.ndarray) -> np.ndarray:
        return x.mean(axis=(1, 2))

    # -- internals -------------------------------------------------------
    def _conv_epilogue_infer(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int,
        padding: int,
        scale: Optional[np.ndarray],
        shift: Optional[np.ndarray],
        relu: bool,
    ) -> np.ndarray:
        """One fused conv forward: unfold → GEMM(out=arena) → epilogue.

        The BN affine (``scale``/``shift``) folds into the weights and
        the bias term; the bias add and ReLU run in place on the GEMM
        arena.  Only the final NCHW repack allocates.
        """
        c_out, c_in, kh, kw = weight.shape
        n, _, h, w = x.shape
        out_h = conv_output_size(h, kh, stride, padding)
        out_w = conv_output_size(w, kw, stride, padding)
        # float32 for float32 inputs; float64 inputs (reference tests,
        # finite differences) keep their width.
        dtype = np.promote_types(x.dtype, self.compute_dtype)

        if scale is not None:
            w_mat = (weight.reshape(c_out, -1) * scale[:, None]).astype(
                dtype, copy=False
            )
            b_vec = shift if bias is None else bias * scale + shift
        else:
            w_mat = weight.reshape(c_out, -1).astype(dtype, copy=False)
            b_vec = bias
        cols = self.im2col(x, (kh, kw), stride, padding, grad_free=True)
        cols2 = cols.reshape(n * out_h * out_w, c_in * kh * kw)
        gemm = self._workspace.get("gemm", (n * out_h * out_w, c_out), dtype)
        np.matmul(cols2.astype(dtype, copy=False), w_mat.T, out=gemm)
        if b_vec is not None:
            gemm += b_vec.astype(dtype, copy=False)
        if relu:
            np.maximum(gemm, 0.0, out=gemm)
        # The one allocation of the call: the caller-owned NCHW output.
        return np.ascontiguousarray(
            gemm.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
        )
