"""Pluggable array-backend execution layer (see DESIGN.md §8).

One :class:`~repro.nn.backend.base.ArrayBackend` strategy object
decides how every numeric operation of the nn stack executes —
precision, scratch-buffer reuse, and inference fusion — while storage
stays ``numpy.ndarray`` everywhere.  Built-ins:

* ``numpy`` — the reference semantics (aliases ``np``, ``reference``);
* ``fused`` — conv→BN→ReLU fusion, arena buffer reuse, float32
  gradient-free forwards (alias ``fast``).

Select with the ``REPRO_BACKEND`` environment variable, the CLI's
``--backend`` flag, a config's ``backend`` field, or programmatically::

    from repro.nn.backend import use_backend

    with use_backend("fused"):
        scores = scorer.score(images)

New backends register through :func:`repro.registry.register_backend`
and plug into every surface (CLI, Session, sweeps) by name.
"""

from repro.nn.backend.base import (
    ArrayBackend,
    default_backend_name,
    get_backend,
    set_backend,
    use_backend,
)
from repro.nn.backend.fused import FusedBackend
from repro.nn.backend.numpy_backend import NumpyBackend

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "FusedBackend",
    "get_backend",
    "set_backend",
    "use_backend",
    "default_backend_name",
]
