"""The :class:`ArrayBackend` protocol and the active-backend state.

Every numeric operation of the nn stack — tensor arithmetic,
convolution unfolds, softmax reductions, loss precision — routes
through one *array backend*.  A backend is a strategy object: storage
is always a ``numpy.ndarray`` (that is the substrate contract the
autograd engine relies on), but the backend decides **how** compute
runs — which precision gradient-free forwards use, whether scratch
buffers are reused, and whether adjacent inference ops are fused.
Swapping the backend never changes *what* is computed, only how fast
and at which precision.

Protocol surface (see the method groups on :class:`ArrayBackend`):

* **creation** — ``asarray``, ``empty``, ``zeros``, ``ones``,
  ``zeros_like``;
* **elementwise** — arithmetic, transcendentals, ``maximum`` /
  ``where`` / ``clip`` / ``relu``;
* **reduction** — ``sum`` / ``mean`` / ``max`` / ``var``;
* **linear algebra** — ``matmul`` (with optional ``out=``) and
  ``einsum``;
* **im2col gather/scatter** — ``im2col`` / ``col2im``, with a
  ``grad_free`` flag that lets the backend substitute workspace-backed
  scratch for gradient-free forwards;
* **inference fast paths** — ``conv2d_infer`` plus the optional
  ``conv_bn_infer`` / ``add_relu_infer`` fusions advertised by
  ``supports_fusion``;
* **precision policy** — ``compute_dtype`` / ``scoring_dtype`` /
  ``loss_reduction_dtype`` (see the attribute docs; this is the
  explicit home of every "which float width?" decision that used to be
  hard-coded across the nn modules).

Two invariants every backend must keep (enforced by the parity tests in
``tests/nn/test_backend.py`` and ``tests/property/``):

1. **Autograd math is backend-independent.**  Operations recorded on
   the autograd graph (and every backward closure) must be bitwise
   reproducible across backends — training trajectories are part of the
   reproduction contract.  Backends therefore only specialize the
   *gradient-free* paths (``*_infer``, ``grad_free=True`` unfolds,
   scoring precision); the graph-building ops in the base class are the
   reference semantics and subclasses should not change their results.
2. **Returned arrays are caller-owned.**  A backend may reuse internal
   scratch arenas between calls, but any array it *returns* must remain
   valid until the caller drops it — never a view of an arena a later
   call overwrites.

Active-backend state
--------------------
The process has one active backend, resolved lazily from the
``REPRO_BACKEND`` environment variable (default ``"numpy"``) through
:data:`repro.registry.BACKENDS`.  :func:`set_backend` replaces the
process default; :func:`use_backend` overrides it for a ``with`` block
(the same module-level-switch pattern as
:class:`repro.nn.tensor.no_grad`).  Like the im2col workspace, the
state is per-process and not thread-safe; parallel-sweep workers each
resolve their own.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Tuple, Union

import numpy as np

__all__ = [
    "ArrayBackend",
    "get_backend",
    "set_backend",
    "use_backend",
    "default_backend_name",
]


class ArrayBackend:
    """Reference implementation and protocol of the execution layer.

    The base class *is* the reference numpy semantics: every method is
    implemented with plain ``numpy`` calls, bit-compatible with the
    pre-backend code.  Subclasses override the subset they accelerate
    (see :class:`repro.nn.backend.fused.FusedBackend`) and advertise
    optional fusions via :attr:`supports_fusion`.
    """

    #: Registry name of the backend (subclasses set it).
    name: str = "base"

    #: Parameter / activation dtype of the nn stack.  float32 matches
    #: the paper's on-device regime and every initializer in
    #: :mod:`repro.nn.init`.
    compute_dtype = np.float32

    #: Dtype of gradient-free *scoring* forwards and the projection
    #: normalization in :class:`repro.core.scoring.ContrastScorer`.
    #: The reference backend keeps the historical float64 (scores feed
    #: top-k selection, and float64 makes the reference maximally
    #: stable); the fused backend runs float32 end-to-end — contrast
    #: scores live in [0, 2] with meaningful gaps around 1e-3, five
    #: orders of magnitude above float32 resolution at that scale.
    scoring_dtype = np.float64

    #: Dtype of per-sample loss reductions (NT-Xent ``per_sample``,
    #: cosine similarity).  float64 on every backend: the
    #: log-sum-exp runs over 2N terms spanning the e^{±1/τ} dynamic
    #: range, where float32 cancellation would bias the small
    #: per-sample losses Selective-BP ranks by — and the similarity
    #: matrix is tiny next to the encoder forwards, so the wide
    #: accumulation is effectively free.
    loss_reduction_dtype = np.float64

    #: Whether :meth:`conv_bn_infer` / :meth:`add_relu_infer` implement
    #: real fusion.  When False the dispatch helpers in
    #: :mod:`repro.nn.functional` compose the unfused reference ops.
    supports_fusion = False

    #: Whether the backend implements the channels-last inference chain
    #: (:meth:`to_nhwc` / :meth:`conv_bn_nhwc` / :meth:`pool_mean_nhwc`).
    #: NHWC keeps every unfold gather contiguous and lets each
    #: convolution GEMM straight into its caller-owned output — the
    #: layout an inference engine wants.  Model drivers (e.g.
    #: :meth:`repro.nn.resnet.ResNetEncoder.forward`) check this flag
    #: before entering the chained path.
    supports_nhwc_infer = False

    # -- creation -------------------------------------------------------
    def asarray(self, value: Any, dtype: Optional[Any] = None) -> np.ndarray:
        return np.asarray(value, dtype=dtype)

    def empty(self, shape: Tuple[int, ...], dtype: Optional[Any] = None) -> np.ndarray:
        return np.empty(shape, dtype=self.compute_dtype if dtype is None else dtype)

    def zeros(self, shape: Tuple[int, ...], dtype: Optional[Any] = None) -> np.ndarray:
        return np.zeros(shape, dtype=self.compute_dtype if dtype is None else dtype)

    def ones(self, shape: Tuple[int, ...], dtype: Optional[Any] = None) -> np.ndarray:
        return np.ones(shape, dtype=self.compute_dtype if dtype is None else dtype)

    def zeros_like(self, x: np.ndarray) -> np.ndarray:
        return np.zeros_like(x)

    # -- elementwise ----------------------------------------------------
    def add(self, a, b, out: Optional[np.ndarray] = None) -> np.ndarray:
        return np.add(a, b, out=out) if out is not None else a + b

    def subtract(self, a, b) -> np.ndarray:
        return a - b

    def multiply(self, a, b) -> np.ndarray:
        return a * b

    def divide(self, a, b) -> np.ndarray:
        return a / b

    def negative(self, x: np.ndarray) -> np.ndarray:
        return -x

    def power(self, x: np.ndarray, exponent: float) -> np.ndarray:
        return x**exponent

    def exp(self, x: np.ndarray) -> np.ndarray:
        return np.exp(x)

    def log(self, x: np.ndarray) -> np.ndarray:
        return np.log(x)

    def sqrt(self, x: np.ndarray) -> np.ndarray:
        return np.sqrt(x)

    def tanh(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def sign(self, x: np.ndarray) -> np.ndarray:
        return np.sign(x)

    def absolute(self, x: np.ndarray) -> np.ndarray:
        return np.abs(x)

    def maximum(self, a, b, out: Optional[np.ndarray] = None) -> np.ndarray:
        return np.maximum(a, b, out=out) if out is not None else np.maximum(a, b)

    def where(self, cond, a, b) -> np.ndarray:
        return np.where(cond, a, b)

    def clip(self, x: np.ndarray, low: float, high: float) -> np.ndarray:
        return np.clip(x, low, high)

    def relu(self, x: np.ndarray) -> np.ndarray:
        """Reference ReLU: bit-compatible with ``where(x > 0, x, 0)``."""
        return np.where(x > 0, x, 0.0).astype(x.dtype)

    # -- reductions -----------------------------------------------------
    def sum(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.sum(axis=axis, keepdims=keepdims)

    def mean(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.mean(axis=axis, keepdims=keepdims)

    def max(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.max(axis=axis, keepdims=keepdims)

    def var(self, x: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.var(axis=axis, keepdims=keepdims)

    # -- linear algebra -------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        return np.matmul(a, b, out=out) if out is not None else a @ b

    def einsum(self, subscripts: str, *operands: np.ndarray) -> np.ndarray:
        return np.einsum(subscripts, *operands, optimize=True)

    # -- im2col gather / scatter ----------------------------------------
    def im2col(
        self,
        x: np.ndarray,
        kernel: Tuple[int, int],
        stride: int,
        padding: int,
        grad_free: bool = False,
    ) -> np.ndarray:
        """Unfold an NCHW batch into a GEMM-ready column matrix.

        ``grad_free=True`` tells the backend nothing will retain the
        columns past the next unfold, so it may serve them from a
        scratch workspace (see :mod:`repro.nn.im2col` invariants); the
        base class honors that with the process-wide default workspace.
        Autograd callers must pass ``grad_free=False`` — their backward
        closures retain the columns.
        """
        from repro.nn.im2col import default_workspace, im2col

        workspace = default_workspace() if grad_free else None
        return im2col(x, kernel, stride, padding, workspace=workspace)

    def col2im(
        self,
        cols: np.ndarray,
        input_shape: Tuple[int, int, int, int],
        kernel: Tuple[int, int],
        stride: int,
        padding: int,
    ) -> np.ndarray:
        """Fold columns back to NCHW, accumulating overlaps (im2col's
        gradient).  Never workspace-backed: the result becomes a
        gradient the autograd engine may retain indefinitely."""
        from repro.nn.im2col import col2im

        return col2im(cols, input_shape, kernel, stride, padding)

    # -- inference fast paths -------------------------------------------
    def conv2d_infer(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int,
        padding: int,
    ) -> np.ndarray:
        """Gradient-free 2-D convolution forward (NCHW in, NCHW out).

        The reference path: workspace-backed unfold, one GEMM, NCHW
        repack.  Bit-compatible with the autograd forward.
        """
        c_out = weight.shape[0]
        kh, kw = weight.shape[2], weight.shape[3]
        cols = self.im2col(x, (kh, kw), stride, padding, grad_free=True)
        w_mat = weight.reshape(c_out, -1)
        out = cols @ w_mat.T  # (N, oh, ow, C_out)
        if bias is not None:
            out = out + bias
        return np.ascontiguousarray(out.transpose(0, 3, 1, 2))

    def conv_bn_infer(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int,
        padding: int,
        scale: np.ndarray,
        shift: np.ndarray,
        relu: bool,
    ) -> Optional[np.ndarray]:
        """Fused conv → eval-mode batch-norm (→ ReLU) forward, or None.

        ``scale``/``shift`` are the per-output-channel affine that
        eval-mode BN reduces to (``gamma / sqrt(var + eps)`` and
        ``beta - mean * scale``).  Returning ``None`` means "no fused
        path here" and the caller composes the unfused reference ops —
        which is exactly what the base class does, so only backends
        with :attr:`supports_fusion` implement this.
        """
        return None

    def add_relu_infer(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Gradient-free ``relu(a + b)`` (the residual-join epilogue)."""
        return self.relu(a + b)

    # -- NHWC inference chain (optional; supports_nhwc_infer) ------------
    def to_nhwc(self, x: np.ndarray) -> np.ndarray:
        """Repack an NCHW batch as contiguous NHWC (chain entry)."""
        raise NotImplementedError(f"backend {self.name!r} has no NHWC chain")

    def conv_bn_nhwc(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int,
        padding: int,
        scale: Optional[np.ndarray],
        shift: Optional[np.ndarray],
        relu: bool,
    ) -> np.ndarray:
        """Fused conv(→BN)(→ReLU) on an NHWC batch, returning NHWC.

        ``weight`` stays in the canonical (C_out, C_in, kh, kw) layout;
        the backend reorders it for its GEMM.  ``scale``/``shift`` of
        None mean "no BN" (plain convolution).
        """
        raise NotImplementedError(f"backend {self.name!r} has no NHWC chain")

    def pool_mean_nhwc(self, x: np.ndarray) -> np.ndarray:
        """Global average pool (N, H, W, C) -> (N, C) (chain exit)."""
        raise NotImplementedError(f"backend {self.name!r} has no NHWC chain")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# Active-backend state (module-level, per-process)
# ----------------------------------------------------------------------
_ACTIVE: Optional[ArrayBackend] = None


def default_backend_name() -> str:
    """Backend the process starts on: ``REPRO_BACKEND`` env, else numpy."""
    return os.environ.get("REPRO_BACKEND", "numpy")


def _resolve(backend: Union[str, ArrayBackend]) -> ArrayBackend:
    if isinstance(backend, ArrayBackend):
        return backend
    from repro.registry import BACKENDS

    return BACKENDS.create(backend)


def get_backend() -> ArrayBackend:
    """The active backend, resolving the process default on first use."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _resolve(default_backend_name())
    return _ACTIVE


def set_backend(backend: Union[str, ArrayBackend, None]) -> ArrayBackend:
    """Replace the process-default backend (name, instance, or None).

    ``None`` re-resolves :func:`default_backend_name` — the way to
    honor a changed ``REPRO_BACKEND`` after import.  Returns the new
    active backend.
    """
    global _ACTIVE
    _ACTIVE = None if backend is None else _resolve(backend)
    return get_backend()


class use_backend:
    """Context manager running a block on another backend.

    ``use_backend(None)`` is a no-op (keeps the active backend) so
    callers can thread an optional selection without branching::

        with use_backend(config.backend):   # None = inherit
            session_body()

    Accepts a registry name (alias-resolved, "did you mean" errors on
    unknowns) or an :class:`ArrayBackend` instance.  Re-entrant but,
    like the rest of the state, not thread-safe.
    """

    def __init__(self, backend: Union[str, ArrayBackend, None]) -> None:
        self._target = backend
        self._prev: Optional[ArrayBackend] = None

    def __enter__(self) -> ArrayBackend:
        global _ACTIVE
        self._prev = get_backend()
        if self._target is not None:
            _ACTIVE = _resolve(self._target)
        return get_backend()

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        _ACTIVE = self._prev
