"""Neural-network substrate: autograd tensors, layers, ResNet encoder,
optimizers, and losses — the numpy stand-in for the paper's PyTorch stack.

All numeric compute routes through a pluggable array backend
(:mod:`repro.nn.backend`): ``numpy`` is the reference, ``fused`` the
buffer-reusing, conv→BN→ReLU-fusing inference engine.
"""

from repro.nn.backend import (
    ArrayBackend,
    get_backend,
    set_backend,
    use_backend,
)
from repro.nn.tensor import Tensor, no_grad
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
)
from repro.nn.resnet import BasicBlock, ResNetEncoder, resnet_micro, resnet_mini, resnet_small
from repro.nn.projection import ProjectionHead
from repro.nn.optim import SGD, Adam, Optimizer, sqrt_batch_lr_scale
from repro.nn.schedulers import (
    ConstantLR,
    CosineDecayLR,
    LRScheduler,
    StepDecayLR,
    WarmupCosineLR,
)
from repro.nn.losses import CrossEntropyLoss, NTXentLoss, cross_entropy, nt_xent_loss
from repro.nn.serialization import load_module, load_state, save_module, save_state

__all__ = [
    "Tensor",
    "no_grad",
    "ArrayBackend",
    "get_backend",
    "set_backend",
    "use_backend",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "Flatten",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Identity",
    "BasicBlock",
    "ResNetEncoder",
    "resnet_mini",
    "resnet_small",
    "resnet_micro",
    "ProjectionHead",
    "Optimizer",
    "SGD",
    "Adam",
    "sqrt_batch_lr_scale",
    "LRScheduler",
    "ConstantLR",
    "StepDecayLR",
    "CosineDecayLR",
    "WarmupCosineLR",
    "NTXentLoss",
    "nt_xent_loss",
    "CrossEntropyLoss",
    "cross_entropy",
    "load_module",
    "load_state",
    "save_module",
    "save_state",
]
