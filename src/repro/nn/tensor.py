"""Reverse-mode automatic differentiation on numpy arrays.

This module is the computational substrate for the whole reproduction:
the paper's framework only interacts with the model through forward
passes and gradients, so a correct, vectorized autograd engine on numpy
stands in for PyTorch.

Design
------
* A :class:`Tensor` wraps a ``numpy.ndarray`` (``data``) and, when
  ``requires_grad`` is set, accumulates a gradient of the same shape in
  ``grad`` during :meth:`Tensor.backward`.
* Every differentiable operation builds a new ``Tensor`` holding a
  closure (``_backward``) that routes the output gradient to the
  operation's inputs.  ``backward()`` topologically sorts the graph and
  runs the closures in reverse.
* Broadcasting follows numpy semantics; gradients of broadcast operands
  are reduced back to the operand's shape by :func:`unbroadcast`.
* Gradients are plain numpy arrays (no higher-order differentiation);
  this matches how the paper's training loops use gradients.
* Forward compute dispatches to the active
  :class:`~repro.nn.backend.base.ArrayBackend` (storage is always a
  numpy array; the backend decides execution strategy and precision).
  Backward closures use numpy directly: gradient math must be bitwise
  reproducible across backends (the cross-backend training-determinism
  invariant), with :meth:`Tensor.__matmul__` as the one exception —
  its backward GEMMs route through ``backend.matmul`` so a
  BLAS-swapping backend accelerates training too.  Pure layout ops
  (reshape, transpose, indexing, concat/stack) stay ndarray-native.

The engine is deliberately small but complete enough for ResNets with
batch normalization and the NT-Xent contrastive loss.  Convolution and
pooling live in :mod:`repro.nn.functional` and plug into this graph via
the same closure mechanism.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.backend.base import get_backend

__all__ = ["Tensor", "unbroadcast", "no_grad", "is_grad_enabled"]

ArrayLike = Union[np.ndarray, float, int, Sequence]

# Module-level switch consulted by every op; `no_grad()` flips it.
_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction.

    Inside the context, ops produce plain ``requires_grad=False``
    tensors with no backward closures — used for scoring, evaluation,
    and running-statistics updates where gradients are not needed.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Whether ops currently record backward closures."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shape of a broadcast result) back to ``shape``.

    Sums over axes that were added or expanded by numpy broadcasting so
    the returned array has exactly ``shape``.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes numpy added on the left.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original and expanded.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype: np.dtype) -> np.ndarray:
    arr = np.asarray(value, dtype=dtype)
    return arr


class Tensor:
    """A numpy array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array (or array-like) payload.  Stored as ``float32`` by default;
        pass an explicit numpy array to keep another float dtype (the
        test-suite uses ``float64`` for finite-difference checks).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            raise TypeError("wrapping a Tensor in a Tensor is almost always a bug")
        # Preserve float dtypes of arrays AND numpy scalars (numpy 2 returns
        # np.float64 scalars from 0-d array ops); everything else -> float32.
        if isinstance(data, (np.ndarray, np.generic)) and np.issubdtype(
            np.asarray(data).dtype, np.floating
        ):
            self.data = np.asarray(data)
        else:
            self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = _parents if self.requires_grad else ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy); treat as read-only."""
        return self.data

    def item(self) -> float:
        """The scalar payload of a 1-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _raise_item()

    def detach(self) -> "Tensor":
        """A view of the same data cut out of the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """A deep copy cut out of the autograd graph."""
        return Tensor(self.data.copy(), requires_grad=False)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value: Union["Tensor", ArrayLike], dtype: np.dtype) -> "Tensor":
        if isinstance(value, Tensor):
            return value
        return Tensor(_as_array(value, dtype))

    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=parents)
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad``, allocating on first use."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (i.e. ``d self / d self``); for
        non-scalar outputs an explicit seed gradient is usually what you
        want.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without a seed gradient requires a scalar output; "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}"
            )

        order = self._topological_order()
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            node._accumulate(node_grad)
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    def _topological_order(self) -> List["Tensor"]:
        """Nodes reachable from ``self``, outputs-first (reverse topo)."""
        order: List[Tensor] = []
        visited: set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    def zero_grad(self) -> None:
        """Drop the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor._lift(other, self.data.dtype)
        a, b = self, other
        data = get_backend().add(a.data, b.data)

        def backward(g: np.ndarray):
            return (unbroadcast(g, a.data.shape), unbroadcast(g, b.data.shape))

        return self._make(data, (a, b), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        a = self
        return self._make(get_backend().negative(a.data), (a,), lambda g: (-g,))

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-Tensor._lift(other, self.data.dtype))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor._lift(other, self.data.dtype) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor._lift(other, self.data.dtype)
        a, b = self, other
        data = get_backend().multiply(a.data, b.data)

        def backward(g: np.ndarray):
            ga = unbroadcast(g * b.data, a.data.shape) if a.requires_grad else None
            gb = unbroadcast(g * a.data, b.data.shape) if b.requires_grad else None
            return (ga, gb)

        return self._make(data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor._lift(other, self.data.dtype)
        a, b = self, other
        data = get_backend().divide(a.data, b.data)

        def backward(g: np.ndarray):
            ga = unbroadcast(g / b.data, a.data.shape) if a.requires_grad else None
            gb = (
                unbroadcast(-g * a.data / (b.data * b.data), b.data.shape)
                if b.requires_grad
                else None
            )
            return (ga, gb)

        return self._make(data, (a, b), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor._lift(other, self.data.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        a = self
        data = get_backend().power(a.data, exponent)

        def backward(g: np.ndarray):
            return (g * exponent * a.data ** (exponent - 1),)

        return self._make(data, (a,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = Tensor._lift(other, self.data.dtype)
        a, b = self, other
        backend = get_backend()
        data = backend.matmul(a.data, b.data)

        def backward(g: np.ndarray):
            # Promote 1-D operands to 2-D (numpy matmul semantics), compute
            # matrix gradients, then reduce/reshape back.
            a_d, b_d = a.data, b.data
            a2 = a_d[None, :] if a_d.ndim == 1 else a_d
            b2 = b_d[:, None] if b_d.ndim == 1 else b_d
            g2 = g
            if a_d.ndim == 1:
                g2 = np.expand_dims(g2, -2)
            if b_d.ndim == 1:
                g2 = np.expand_dims(g2, -1)
            ga = gb = None
            if a.requires_grad:
                ga = backend.matmul(g2, np.swapaxes(b2, -1, -2))
                ga = unbroadcast(ga, a2.shape).reshape(a_d.shape)
            if b.requires_grad:
                gb = backend.matmul(np.swapaxes(a2, -1, -2), g2)
                gb = unbroadcast(gb, b2.shape).reshape(b_d.shape)
            return (ga, gb)

        return self._make(data, (a, b), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        data = get_backend().exp(a.data)
        return self._make(data, (a,), lambda g: (g * data,))

    def log(self) -> "Tensor":
        a = self
        return self._make(get_backend().log(a.data), (a,), lambda g: (g / a.data,))

    def sqrt(self) -> "Tensor":
        a = self
        data = get_backend().sqrt(a.data)
        return self._make(data, (a,), lambda g: (g * 0.5 / data,))

    def tanh(self) -> "Tensor":
        a = self
        data = get_backend().tanh(a.data)
        return self._make(data, (a,), lambda g: (g * (1.0 - data * data),))

    def sigmoid(self) -> "Tensor":
        a = self
        data = 1.0 / (1.0 + get_backend().exp(-a.data))
        return self._make(data, (a,), lambda g: (g * data * (1.0 - data),))

    def relu(self) -> "Tensor":
        a = self
        if not (_GRAD_ENABLED and a.requires_grad):
            # Gradient-free: no mask to retain, let the backend pick the
            # cheapest single-pass rectification.
            return Tensor(get_backend().relu(a.data))
        mask = a.data > 0
        data = np.where(mask, a.data, 0.0).astype(a.data.dtype)
        return self._make(data, (a,), lambda g: (g * mask,))

    def abs(self) -> "Tensor":
        a = self
        backend = get_backend()
        sign = backend.sign(a.data)
        return self._make(backend.absolute(a.data), (a,), lambda g: (g * sign,))

    def maximum(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor._lift(other, self.data.dtype)
        a, b = self, other
        take_a = a.data >= b.data
        data = get_backend().where(take_a, a.data, b.data)

        def backward(g: np.ndarray):
            ga = unbroadcast(g * take_a, a.data.shape) if a.requires_grad else None
            gb = unbroadcast(g * ~take_a, b.data.shape) if b.requires_grad else None
            return (ga, gb)

        return self._make(data, (a, b), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        a = self
        data = get_backend().clip(a.data, low, high)
        mask = (a.data >= low) & (a.data <= high)
        return self._make(data, (a,), lambda g: (g * mask,))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(
        self, axis: Union[int, Tuple[int, ...], None] = None, keepdims: bool = False
    ) -> "Tensor":
        a = self
        data = get_backend().sum(a.data, axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            return (_expand_reduced(g, a.data.shape, axis, keepdims),)

        return self._make(np.asarray(data, dtype=a.data.dtype), (a,), backward)

    def mean(
        self, axis: Union[int, Tuple[int, ...], None] = None, keepdims: bool = False
    ) -> "Tensor":
        a = self
        count = _reduced_count(a.data.shape, axis)
        data = get_backend().mean(a.data, axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            return (_expand_reduced(g, a.data.shape, axis, keepdims) / count,)

        return self._make(np.asarray(data, dtype=a.data.dtype), (a,), backward)

    def max(
        self, axis: Union[int, None] = None, keepdims: bool = False
    ) -> "Tensor":
        a = self
        data = get_backend().max(a.data, axis=axis, keepdims=keepdims)
        # Ties split gradient equally, matching numpy-style subgradient.
        expanded = (
            data if keepdims or axis is None else np.expand_dims(data, axis)
        )
        mask = (a.data == expanded).astype(a.data.dtype)
        mask_sum = mask.sum(axis=axis, keepdims=True)

        def backward(g: np.ndarray):
            g_exp = _expand_reduced(g, a.data.shape, axis, keepdims)
            return (g_exp * mask / mask_sum,)

        return self._make(np.asarray(data, dtype=a.data.dtype), (a,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        data = a.data.reshape(shape)
        return self._make(data, (a,), lambda g: (g.reshape(a.data.shape),))

    def flatten(self, start_axis: int = 1) -> "Tensor":
        """Flatten all axes from ``start_axis`` onward (batch-preserving)."""
        lead = self.data.shape[:start_axis]
        return self.reshape(*lead, -1)

    def transpose(self, *axes: int) -> "Tensor":
        a = self
        if not axes:
            axes = tuple(reversed(range(a.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        data = a.data.transpose(axes)
        return self._make(data, (a,), lambda g: (g.transpose(inverse),))

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        a = self
        data = a.data[index]

        def backward(g: np.ndarray):
            full = np.zeros_like(a.data)
            np.add.at(full, index, g)
            return (full,)

        return self._make(data, (a,), backward)

    # ------------------------------------------------------------------
    # Comparison (non-differentiable, returns numpy)
    # ------------------------------------------------------------------
    def __gt__(self, other) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, dtype: np.dtype = np.float32, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, dtype: np.dtype = np.float32, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate tensors along ``axis`` with gradient routing."""
        tensors = list(tensors)
        if not tensors:
            raise ValueError("concat of an empty sequence")
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(g: np.ndarray):
            grads = []
            for i, t in enumerate(tensors):
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(offsets[i], offsets[i + 1])
                grads.append(g[tuple(sl)])
            return tuple(grads)

        requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
        out = Tensor(data, requires_grad=requires, _parents=tuple(tensors))
        if requires:
            out._backward = backward
        return out

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Stack tensors along a new axis with gradient routing."""
        tensors = list(tensors)
        if not tensors:
            raise ValueError("stack of an empty sequence")
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(g: np.ndarray):
            pieces = np.split(g, len(tensors), axis=axis)
            return tuple(np.squeeze(p, axis=axis) for p in pieces)

        requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
        out = Tensor(data, requires_grad=requires, _parents=tuple(tensors))
        if requires:
            out._backward = backward
        return out


def _raise_item() -> float:
    raise ValueError("item() requires a single-element tensor")


def _reduced_count(shape: Tuple[int, ...], axis) -> float:
    if axis is None:
        return float(np.prod(shape)) if shape else 1.0
    if isinstance(axis, int):
        axis = (axis,)
    return float(np.prod([shape[a] for a in axis]))


def _expand_reduced(
    grad: np.ndarray, shape: Tuple[int, ...], axis, keepdims: bool
) -> np.ndarray:
    """Broadcast a reduction's output-gradient back to the input shape."""
    grad = np.asarray(grad)
    if axis is None:
        if not keepdims:
            grad = grad.reshape((1,) * len(shape))
        return np.broadcast_to(grad, shape).copy()
    if isinstance(axis, int):
        axis = (axis,)
    if not keepdims:
        for a in sorted(a % len(shape) for a in axis):
            grad = np.expand_dims(grad, a)
    return np.broadcast_to(grad, shape).copy()
