"""Projection head ``g(·)`` mapping representations to the contrast space.

SimCLR-style 2-layer MLP.  The paper applies the contrastive loss (and
the contrast score, Eq. 2-3) to ``z = g(h) / ||g(h)||``; the classifier
of stage 2 sits on ``h`` directly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor

__all__ = ["ProjectionHead"]


class ProjectionHead(Module):
    """Two-layer MLP with ReLU, followed by l2 normalization.

    Parameters
    ----------
    in_dim: encoder representation dimension.
    hidden_dim: hidden width (defaults to ``in_dim``).
    out_dim: dimension of the projected space where similarity is taken.
    normalize: if True (default), outputs are l2-normalized per Eq. 3.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dim: Optional[int] = None,
        out_dim: int = 32,
        normalize: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        hidden_dim = hidden_dim if hidden_dim is not None else in_dim
        self.fc1 = Linear(in_dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, out_dim, rng=rng)
        self.normalize = normalize
        self.out_dim = out_dim

    def forward(self, h: Tensor) -> Tensor:
        z = self.fc2(self.fc1(h).relu())
        if self.normalize:
            z = F.l2_normalize(z, axis=-1)
        return z
