"""ResNet encoder ``f(·)`` — the paper's base encoder, CPU-scaled.

The paper trains a ResNet-18 on GPU; this substrate implements the same
architecture family (conv-BN-ReLU basic blocks with identity shortcuts,
strided downsampling between stages, global average pooling) with
configurable depth and width so experiments fit a CPU budget.  The
default ``resnet_mini`` is 3 stages × 2 blocks with widths (16, 32, 64),
the classic CIFAR-style ResNet-14 layout at reduced width.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.backend.base import ArrayBackend, get_backend
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Module,
    ModuleList,
    Sequential,
)
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.registry import register_encoder

__all__ = ["BasicBlock", "ResNetEncoder", "resnet_mini", "resnet_micro"]


class BasicBlock(Module):
    """Two 3×3 conv-BN pairs with an identity (or projected) shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.conv1 = Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, rng=rng
        )
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        self.needs_projection = stride != 1 or in_channels != out_channels
        if self.needs_projection:
            self.shortcut_conv = Conv2d(
                in_channels, out_channels, 1, stride=stride, padding=0, rng=rng
            )
            self.shortcut_bn = BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        # conv→BN(→ReLU) chains and the residual join go through the
        # functional dispatch helpers so gradient-free forwards (the
        # scoring/probe hot path) pick up the active backend's fusion;
        # autograd calls compose the reference ops unchanged.
        out = F.conv_bn_relu(x, self.conv1, self.bn1)
        out = F.conv_bn_relu(out, self.conv2, self.bn2, relu=False)
        shortcut = (
            F.conv_bn_relu(x, self.shortcut_conv, self.shortcut_bn, relu=False)
            if self.needs_projection
            else x
        )
        return F.add_relu(out, shortcut)

    def _infer_nhwc(self, h: np.ndarray, backend: ArrayBackend) -> np.ndarray:
        """Channels-last gradient-free forward (fused-chain leg).

        Mirrors :meth:`forward` exactly, on raw NHWC arrays; only
        entered by :meth:`ResNetEncoder.forward` when the active
        backend advertises ``supports_nhwc_infer``.
        """

        def conv_bn(x, conv, bn, relu):
            scale, shift = F.bn_eval_affine(bn)
            return backend.conv_bn_nhwc(
                x,
                conv.weight.data,
                None if conv.bias is None else conv.bias.data,
                conv.stride,
                conv.padding,
                scale,
                shift,
                relu,
            )

        out = conv_bn(h, self.conv1, self.bn1, relu=True)
        out = conv_bn(out, self.conv2, self.bn2, relu=False)
        shortcut = (
            conv_bn(h, self.shortcut_conv, self.shortcut_bn, relu=False)
            if self.needs_projection
            else h
        )
        return backend.add_relu_infer(out, shortcut)


class ResNetEncoder(Module):
    """Convolutional encoder producing representation vectors ``h = f(x)``.

    Parameters
    ----------
    in_channels:
        Image channels (3 for the synthetic RGB datasets).
    widths:
        Channel width per stage; the first stage keeps resolution, each
        later stage downsamples by 2.
    blocks_per_stage:
        Number of :class:`BasicBlock` per stage.
    rng:
        Generator used for all weight initialization.
    """

    def __init__(
        self,
        in_channels: int = 3,
        widths: Sequence[int] = (16, 32, 64),
        blocks_per_stage: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not widths:
            raise ValueError("widths must contain at least one stage")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.widths = tuple(int(w) for w in widths)
        self.blocks_per_stage = int(blocks_per_stage)
        self.feature_dim = self.widths[-1]

        self.stem_conv = Conv2d(in_channels, self.widths[0], 3, stride=1, padding=1, rng=rng)
        self.stem_bn = BatchNorm2d(self.widths[0])

        stages = []
        prev = self.widths[0]
        for stage_idx, width in enumerate(self.widths):
            blocks = []
            for block_idx in range(self.blocks_per_stage):
                stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
                blocks.append(BasicBlock(prev, width, stride=stride, rng=rng))
                prev = width
            stages.append(Sequential(*blocks))
        self.stages = ModuleList(stages)

    def forward(self, x: Tensor) -> Tensor:
        """Encode an NCHW batch to representation vectors (N, feature_dim).

        Gradient-free eval forwards (the scoring / probe hot path) run
        the whole encoder as one channels-last fused chain when the
        active backend advertises ``supports_nhwc_infer``: one NHWC
        repack at entry, conv→BN→ReLU fused per layer with contiguous
        unfolds, and a pooled (N, C) exit — no per-layer layout
        round-trips.  All other calls compose the reference modules
        (identical autograd math on every backend).
        """
        if x.ndim != 4:
            raise ValueError(f"encoder expects NCHW input, got shape {x.shape}")
        backend = get_backend()
        if backend.supports_nhwc_infer and not self.training and not is_grad_enabled():
            return Tensor(self._infer_nhwc_chain(x.data, backend))
        out = F.conv_bn_relu(x, self.stem_conv, self.stem_bn)
        for stage in self.stages:
            out = stage(out)
        return F.global_avg_pool2d(out)

    def _infer_nhwc_chain(self, x: np.ndarray, backend: ArrayBackend) -> np.ndarray:
        """The fused channels-last encoder forward (raw arrays)."""
        scale, shift = F.bn_eval_affine(self.stem_bn)
        h = backend.conv_bn_nhwc(
            backend.to_nhwc(x),
            self.stem_conv.weight.data,
            None if self.stem_conv.bias is None else self.stem_conv.bias.data,
            self.stem_conv.stride,
            self.stem_conv.padding,
            scale,
            shift,
            True,
        )
        for stage in self.stages:
            for block in stage.layers:
                h = block._infer_nhwc(h, backend)
        return backend.pool_mean_nhwc(h)

    def min_input_size(self) -> int:
        """Smallest square input the stage strides can downsample."""
        return 2 ** (len(self.widths) - 1)


@register_encoder("resnet", label="ResNet (config widths)")
def resnet_from_config(
    in_channels: int = 3,
    widths: Sequence[int] = (12, 24, 48),
    blocks_per_stage: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> ResNetEncoder:
    """Config-driven default: widths/depth come from the experiment config."""
    return ResNetEncoder(
        in_channels, widths=tuple(widths), blocks_per_stage=blocks_per_stage, rng=rng
    )


@register_encoder("resnet-mini", label="ResNet mini (16,32,64)x2")
def resnet_mini(
    in_channels: int = 3, rng: Optional[np.random.Generator] = None
) -> ResNetEncoder:
    """Large encoder: 3 stages × 2 blocks, widths (16, 32, 64)."""
    return ResNetEncoder(in_channels, widths=(16, 32, 64), blocks_per_stage=2, rng=rng)


@register_encoder("resnet-small", label="ResNet small (12,24,48)x1")
def resnet_small(
    in_channels: int = 3, rng: Optional[np.random.Generator] = None
) -> ResNetEncoder:
    """Experiment-default encoder: 3 stages × 1 block, widths (12, 24, 48).

    The calibrated CPU-budget operating point: reaches ~80% linear-probe
    accuracy on the cifar10-like stand-in after a few hundred
    contrastive steps, at ~130 ms per training step (batch 32, 12 px).
    """
    return ResNetEncoder(in_channels, widths=(12, 24, 48), blocks_per_stage=1, rng=rng)


@register_encoder("resnet-micro", label="ResNet micro (8,16)x1")
def resnet_micro(
    in_channels: int = 3, rng: Optional[np.random.Generator] = None
) -> ResNetEncoder:
    """Tiny encoder for tests: 2 stages × 1 block, widths (8, 16)."""
    return ResNetEncoder(in_channels, widths=(8, 16), blocks_per_stage=1, rng=rng)
