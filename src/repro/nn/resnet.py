"""ResNet encoder ``f(·)`` — the paper's base encoder, CPU-scaled.

The paper trains a ResNet-18 on GPU; this substrate implements the same
architecture family (conv-BN-ReLU basic blocks with identity shortcuts,
strided downsampling between stages, global average pooling) with
configurable depth and width so experiments fit a CPU budget.  The
default ``resnet_mini`` is 3 stages × 2 blocks with widths (16, 32, 64),
the classic CIFAR-style ResNet-14 layout at reduced width.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Module,
    ModuleList,
    Sequential,
)
from repro.nn.tensor import Tensor
from repro.registry import register_encoder

__all__ = ["BasicBlock", "ResNetEncoder", "resnet_mini", "resnet_micro"]


class BasicBlock(Module):
    """Two 3×3 conv-BN pairs with an identity (or projected) shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.conv1 = Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, rng=rng
        )
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        self.needs_projection = stride != 1 or in_channels != out_channels
        if self.needs_projection:
            self.shortcut_conv = Conv2d(
                in_channels, out_channels, 1, stride=stride, padding=0, rng=rng
            )
            self.shortcut_bn = BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        shortcut = (
            self.shortcut_bn(self.shortcut_conv(x)) if self.needs_projection else x
        )
        return (out + shortcut).relu()


class ResNetEncoder(Module):
    """Convolutional encoder producing representation vectors ``h = f(x)``.

    Parameters
    ----------
    in_channels:
        Image channels (3 for the synthetic RGB datasets).
    widths:
        Channel width per stage; the first stage keeps resolution, each
        later stage downsamples by 2.
    blocks_per_stage:
        Number of :class:`BasicBlock` per stage.
    rng:
        Generator used for all weight initialization.
    """

    def __init__(
        self,
        in_channels: int = 3,
        widths: Sequence[int] = (16, 32, 64),
        blocks_per_stage: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not widths:
            raise ValueError("widths must contain at least one stage")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.widths = tuple(int(w) for w in widths)
        self.blocks_per_stage = int(blocks_per_stage)
        self.feature_dim = self.widths[-1]

        self.stem_conv = Conv2d(in_channels, self.widths[0], 3, stride=1, padding=1, rng=rng)
        self.stem_bn = BatchNorm2d(self.widths[0])

        stages = []
        prev = self.widths[0]
        for stage_idx, width in enumerate(self.widths):
            blocks = []
            for block_idx in range(self.blocks_per_stage):
                stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
                blocks.append(BasicBlock(prev, width, stride=stride, rng=rng))
                prev = width
            stages.append(Sequential(*blocks))
        self.stages = ModuleList(stages)

    def forward(self, x: Tensor) -> Tensor:
        """Encode an NCHW batch to representation vectors (N, feature_dim)."""
        if x.ndim != 4:
            raise ValueError(f"encoder expects NCHW input, got shape {x.shape}")
        out = self.stem_bn(self.stem_conv(x)).relu()
        for stage in self.stages:
            out = stage(out)
        return F.global_avg_pool2d(out)

    def min_input_size(self) -> int:
        """Smallest square input the stage strides can downsample."""
        return 2 ** (len(self.widths) - 1)


@register_encoder("resnet", label="ResNet (config widths)")
def resnet_from_config(
    in_channels: int = 3,
    widths: Sequence[int] = (12, 24, 48),
    blocks_per_stage: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> ResNetEncoder:
    """Config-driven default: widths/depth come from the experiment config."""
    return ResNetEncoder(
        in_channels, widths=tuple(widths), blocks_per_stage=blocks_per_stage, rng=rng
    )


@register_encoder("resnet-mini", label="ResNet mini (16,32,64)x2")
def resnet_mini(
    in_channels: int = 3, rng: Optional[np.random.Generator] = None
) -> ResNetEncoder:
    """Large encoder: 3 stages × 2 blocks, widths (16, 32, 64)."""
    return ResNetEncoder(in_channels, widths=(16, 32, 64), blocks_per_stage=2, rng=rng)


@register_encoder("resnet-small", label="ResNet small (12,24,48)x1")
def resnet_small(
    in_channels: int = 3, rng: Optional[np.random.Generator] = None
) -> ResNetEncoder:
    """Experiment-default encoder: 3 stages × 1 block, widths (12, 24, 48).

    The calibrated CPU-budget operating point: reaches ~80% linear-probe
    accuracy on the cifar10-like stand-in after a few hundred
    contrastive steps, at ~130 ms per training step (batch 32, 12 px).
    """
    return ResNetEncoder(in_channels, widths=(12, 24, 48), blocks_per_stage=1, rng=rng)


@register_encoder("resnet-micro", label="ResNet micro (8,16)x1")
def resnet_micro(
    in_channels: int = 3, rng: Optional[np.random.Generator] = None
) -> ResNetEncoder:
    """Tiny encoder for tests: 2 stages × 1 block, widths (8, 16)."""
    return ResNetEncoder(in_channels, widths=(8, 16), blocks_per_stage=1, rng=rng)
