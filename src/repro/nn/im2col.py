"""im2col / col2im transforms used by convolution and pooling.

``im2col`` unfolds sliding windows of an NCHW batch into a matrix so
convolution becomes a single GEMM; ``col2im`` folds gradients back,
accumulating where windows overlap.  Both are pure numpy functions with
no autograd involvement — :mod:`repro.nn.functional` wires them into the
graph.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["conv_output_size", "im2col", "col2im"]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output size is {out} for input={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int
) -> np.ndarray:
    """Unfold ``x`` (N, C, H, W) into (N, out_h, out_w, C*kh*kw).

    The last axis is ordered (C, kh, kw) — the same layout a weight
    tensor ``(F, C, kh, kw)`` flattens to, so the convolution GEMM is
    ``cols @ w.reshape(F, -1).T``.
    """
    if x.ndim != 4:
        raise ValueError(f"expected NCHW input, got shape {x.shape}")
    kh, kw = kernel
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (N, out_h, out_w, C, kh, kw) -> (N, out_h, out_w, C*kh*kw)
    cols = np.ascontiguousarray(windows.transpose(0, 2, 3, 1, 4, 5))
    return cols.reshape(n, out_h, out_w, c * kh * kw)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold (N, out_h, out_w, C*kh*kw) columns back to (N, C, H, W).

    Overlapping windows accumulate, which is exactly the gradient of
    :func:`im2col`.
    """
    kh, kw = kernel
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    if cols.shape != (n, out_h, out_w, c * kh * kw):
        raise ValueError(
            f"cols shape {cols.shape} does not match expected "
            f"{(n, out_h, out_w, c * kh * kw)}"
        )
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols6 = cols.reshape(n, out_h, out_w, c, kh, kw)
    # Accumulate each kernel offset with one strided slice assignment.
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols6[
                :, :, :, :, i, j
            ].transpose(0, 3, 1, 2)
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded
