"""im2col / col2im transforms used by convolution and pooling.

``im2col`` unfolds sliding windows of an NCHW batch into a matrix so
convolution becomes a single GEMM; ``col2im`` folds gradients back,
accumulating where windows overlap.  Both are pure numpy functions with
no autograd involvement — :mod:`repro.nn.functional` wires them into the
graph.

Workspace reuse
---------------
The unfold allocates two large scratch arrays per call (the padded
input and the contiguous column matrix).  On the scoring/eval hot path
— where every forward runs under ``no_grad`` and nothing retains the
columns — those allocations dominate small-model conv time, so
:class:`Im2colWorkspace` caches them keyed by (role, shape, dtype) and
:func:`im2col` reuses them when a workspace is passed.

Cache invariants (see DESIGN.md §7):

1. An array returned by a workspace-backed :func:`im2col` call is
   **owned by the workspace** and invalidated by the next call using
   the same workspace (each role is one flat arena).  Callers must
   fully consume it before triggering another unfold and must never
   store it.
2. Consequently a workspace may only be used for gradient-free
   forwards: autograd convolutions retain their columns until
   ``backward`` runs, so they always allocate fresh arrays.
   :func:`repro.nn.functional.conv2d` enforces this automatically.
3. ``col2im`` never uses the workspace: its output (or a view of it) is
   returned as a *gradient* and may be retained by the autograd engine
   indefinitely.
4. Workspaces are not thread-safe; the module-level default is
   per-process (each parallel-sweep worker has its own).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "conv_output_size",
    "im2col",
    "im2col_nhwc",
    "col2im",
    "Im2colWorkspace",
    "default_workspace",
]


class Im2colWorkspace:
    """Per-role scratch arenas for im2col (padded input, columns).

    ``get(role, shape, dtype)`` returns a view of the role's flat byte
    arena, grown (never shrunk) to the largest request seen, so memory
    stays bounded at one arena per role no matter how many distinct
    shapes pass through — the fused scoring path produces a different
    batch size almost every iteration, and caching per exact shape
    would leak a buffer pair per size for the process lifetime.  By
    invariant 1 (module docstring) only the most recent view per role
    is ever live, which is what makes a single arena sufficient.
    Contents are undefined on return — callers overwrite every element
    they read.  A "hit" is a request served without growing the arena.
    """

    def __init__(self) -> None:
        self._arenas: Dict[str, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def get(self, role: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        arena = self._arenas.get(role)
        if arena is None or arena.nbytes < nbytes:
            arena = np.empty(nbytes, dtype=np.uint8)
            self._arenas[role] = arena
            self.misses += 1
        else:
            self.hits += 1
        return arena[:nbytes].view(dtype).reshape(shape)

    def clear(self) -> None:
        """Drop every arena and reset the counters."""
        self._arenas.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, float]:
        """Hit/miss counters plus retained bytes (for the perf suite)."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "buffers": len(self._arenas),
            "bytes": int(sum(a.nbytes for a in self._arenas.values())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Im2colWorkspace({self.stats()})"


#: Process-wide workspace used by gradient-free convolutions.
_DEFAULT_WORKSPACE = Im2colWorkspace()


def default_workspace() -> Im2colWorkspace:
    """The process-wide workspace gradient-free convolutions reuse."""
    return _DEFAULT_WORKSPACE


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output size is {out} for input={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
    workspace: Optional[Im2colWorkspace] = None,
) -> np.ndarray:
    """Unfold ``x`` (N, C, H, W) into (N, out_h, out_w, C*kh*kw).

    The last axis is ordered (C, kh, kw) — the same layout a weight
    tensor ``(F, C, kh, kw)`` flattens to, so the convolution GEMM is
    ``cols @ w.reshape(F, -1).T``.

    When ``workspace`` is given, the padded input and the returned
    column matrix are views of its per-role arenas instead of fresh
    allocations.  The return value is then owned by the workspace and
    invalidated by the next workspace-backed call — only pass a
    workspace when the result is fully consumed before the next unfold
    (the gradient-free convolution path; see the module docstring).
    """
    if x.ndim != 4:
        raise ValueError(f"expected NCHW input, got shape {x.shape}")
    kh, kw = kernel
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        if workspace is not None:
            padded = workspace.get(
                "pad", (n, c, h + 2 * padding, w + 2 * padding), x.dtype
            )
            # Zero only the border slabs: the interior is overwritten.
            padded[:, :, :padding, :] = 0
            padded[:, :, -padding:, :] = 0
            padded[:, :, padding:-padding, :padding] = 0
            padded[:, :, padding:-padding, -padding:] = 0
            padded[:, :, padding:-padding, padding:-padding] = x
            x = padded
        else:
            x = np.pad(
                x,
                ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                mode="constant",
            )
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (N, out_h, out_w, C, kh, kw) -> (N, out_h, out_w, C*kh*kw)
    if workspace is not None:
        cols = workspace.get("cols", (n, out_h, out_w, c, kh, kw), x.dtype)
        np.copyto(cols, windows.transpose(0, 2, 3, 1, 4, 5))
    else:
        cols = np.ascontiguousarray(windows.transpose(0, 2, 3, 1, 4, 5))
    return cols.reshape(n, out_h, out_w, c * kh * kw)


def im2col_nhwc(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
    workspace: Optional[Im2colWorkspace] = None,
) -> np.ndarray:
    """Unfold an NHWC batch (N, H, W, C) into (N, out_h, out_w, kh*kw*C).

    The channels-last sibling of :func:`im2col`, used by the fused
    backend's inference path.  The last axis is ordered (kh, kw, C) —
    weights must be flattened ``w.transpose(0, 2, 3, 1).reshape(F, -1)``
    to match.  The layout is what makes this fast: a window row
    (``kw`` consecutive pixels × C channels) is one contiguous run of
    the source, so the gather copies runs of ``kw*C`` elements instead
    of the ``kw``-element runs the NCHW unfold is limited to.

    The workspace contract is identical to :func:`im2col`: a
    workspace-backed result is owned by the workspace and invalidated
    by its next call.
    """
    if x.ndim != 4:
        raise ValueError(f"expected NHWC input, got shape {x.shape}")
    kh, kw = kernel
    n, h, w, c = x.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        if workspace is not None:
            padded = workspace.get(
                "pad", (n, h + 2 * padding, w + 2 * padding, c), x.dtype
            )
            # Zero only the border slabs: the interior is overwritten.
            padded[:, :padding, :, :] = 0
            padded[:, -padding:, :, :] = 0
            padded[:, padding:-padding, :padding, :] = 0
            padded[:, padding:-padding, -padding:, :] = 0
            padded[:, padding:-padding, padding:-padding, :] = x
            x = padded
        else:
            x = np.pad(
                x,
                ((0, 0), (padding, padding), (padding, padding), (0, 0)),
                mode="constant",
            )
    sn, sh, sw, sc = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, out_h, out_w, kh, kw, c),
        strides=(sn, sh * stride, sw * stride, sh, sw, sc),
        writeable=False,
    )
    # Already output-ordered: (N, out_h, out_w, kh, kw, C) -> flatten tail.
    if workspace is not None:
        cols = workspace.get("cols", (n, out_h, out_w, kh, kw, c), x.dtype)
        np.copyto(cols, windows)
    else:
        cols = np.ascontiguousarray(windows)
    return cols.reshape(n, out_h, out_w, kh * kw * c)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold (N, out_h, out_w, C*kh*kw) columns back to (N, C, H, W).

    Overlapping windows accumulate, which is exactly the gradient of
    :func:`im2col`.
    """
    kh, kw = kernel
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    if cols.shape != (n, out_h, out_w, c * kh * kw):
        raise ValueError(
            f"cols shape {cols.shape} does not match expected "
            f"{(n, out_h, out_w, c * kh * kw)}"
        )
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols6 = cols.reshape(n, out_h, out_w, c, kh, kw)
    # Accumulate each kernel offset with one strided slice assignment.
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols6[
                :, :, :, :, i, j
            ].transpose(0, 3, 1, 2)
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded
