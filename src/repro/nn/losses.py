"""Loss functions: the NT-Xent contrastive loss (paper Eq. 1) and
cross-entropy for the stage-2 classifier / supervised baselines.

Precision policy
----------------
The differentiable losses compute at the dtype of their inputs (the
backend's ``compute_dtype``, float32 throughout the nn stack).  The
*gradient-free* per-sample reduction :meth:`NTXentLoss.per_sample`
accumulates at the active backend's ``loss_reduction_dtype`` instead of
a hard-coded float64: the log-sum-exp runs over 2N similarity terms
spanning the e^{±1/τ} dynamic range, and Selective-BP ranks samples by
the small differences between those per-sample losses, so the
accumulation width is an explicit, documented backend decision rather
than a silent upcast (both built-in backends choose float64 — see
:class:`repro.nn.backend.base.ArrayBackend` for the rationale).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.backend.base import get_backend
from repro.nn.tensor import Tensor

__all__ = ["nt_xent_loss", "NTXentLoss", "cross_entropy", "CrossEntropyLoss"]


def nt_xent_loss(
    z1: Tensor, z2: Tensor, temperature: float = 0.5
) -> Tensor:
    """Normalized-temperature cross-entropy loss over a batch of pairs.

    Implements paper Eq. 1 summed symmetrically over both view orders,
    averaged over the 2N anchor rows (the SimCLR convention).

    Parameters
    ----------
    z1, z2:
        ``(N, d)`` l2-normalized projections of two augmented views,
        row-aligned (``z1[i]`` and ``z2[i]`` are views of the same image).
    temperature:
        Softmax temperature ``τ``.

    Returns
    -------
    Scalar loss tensor.
    """
    if z1.shape != z2.shape:
        raise ValueError(f"view shapes differ: {z1.shape} vs {z2.shape}")
    if z1.ndim != 2:
        raise ValueError(f"projections must be (N, d), got {z1.shape}")
    n = z1.shape[0]
    if n < 2:
        raise ValueError("NT-Xent needs at least 2 pairs to form negatives")
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")

    z = Tensor.concat([z1, z2], axis=0)  # (2N, d)
    sim = (z @ z.T) / temperature  # (2N, 2N)

    # Mask self-similarity with a large negative constant (non-differentiable
    # additive constant, so gradients are unaffected on the kept entries).
    mask = get_backend().zeros((2 * n, 2 * n), dtype=z.data.dtype)
    np.fill_diagonal(mask, -1e9)
    sim = sim + mask

    log_probs = F.log_softmax(sim, axis=1)
    pos_index = np.concatenate([np.arange(n, 2 * n), np.arange(0, n)])
    rows = np.arange(2 * n)
    pos_log_probs = log_probs[rows, pos_index]
    return -(pos_log_probs.mean())


class NTXentLoss:
    """Callable wrapper around :func:`nt_xent_loss` with a fixed τ."""

    def __init__(self, temperature: float = 0.5) -> None:
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.temperature = temperature

    def __call__(self, z1: Tensor, z2: Tensor) -> Tensor:
        return nt_xent_loss(z1, z2, self.temperature)

    def per_sample(self, z1: Tensor, z2: Tensor) -> np.ndarray:
        """Per-pair loss values ℓ(i, i+) (no gradient), used by Selective-BP.

        Returns the symmetric per-pair loss
        ``(ℓ_{i,i+} + ℓ_{i+,i}) / 2`` as a length-N float64 vector.
        Internally accumulates at the backend's ``loss_reduction_dtype``
        (see the module docstring); the returned dtype stays float64 —
        the buffer-score contract.
        """
        backend = get_backend()
        dtype = backend.loss_reduction_dtype
        z1d = np.asarray(z1.data, dtype=dtype)
        z2d = np.asarray(z2.data, dtype=dtype)
        n = z1d.shape[0]
        z = np.concatenate([z1d, z2d], axis=0)
        sim = backend.matmul(z, z.T) / self.temperature
        np.fill_diagonal(sim, -np.inf)
        sim = sim - backend.max(sim, axis=1, keepdims=True)
        log_denominator = backend.log(backend.sum(backend.exp(sim), axis=1))
        pos_index = np.concatenate([np.arange(n, 2 * n), np.arange(0, n)])
        rows = np.arange(2 * n)
        log_numerator = sim[rows, pos_index]
        losses = log_denominator - log_numerator
        return ((losses[:n] + losses[n:]) / 2.0).astype(np.float64)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer labels (N,)."""
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got {logits.shape}")
    labels = np.asarray(labels)
    if labels.shape[0] != logits.shape[0]:
        raise ValueError(
            f"batch mismatch: {logits.shape[0]} logits vs {labels.shape[0]} labels"
        )
    log_probs = F.log_softmax(logits, axis=1)
    picked = log_probs[np.arange(labels.shape[0]), labels]
    return -(picked.mean())


class CrossEntropyLoss:
    """Callable mean cross-entropy."""

    def __call__(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        return cross_entropy(logits, labels)
