"""Learning-rate schedules.

The paper trains with a fixed Adam learning rate; these schedulers are
library extensions for longer on-device runs (cosine decay is the
de-facto standard for SimCLR-style training and is used by the
scaled-up benchmark configurations via ``REPRO_BENCH_SCALE``).

A scheduler wraps an optimizer and mutates its ``lr`` on ``step()``.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.nn.optim import Optimizer

__all__ = ["LRScheduler", "ConstantLR", "StepDecayLR", "CosineDecayLR", "WarmupCosineLR"]


class LRScheduler:
    """Base class: tracks the step count and the optimizer's base lr."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def get_lr(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step; sets and returns the new learning rate."""
        lr = self.get_lr(self.step_count)
        if lr <= 0:
            raise ValueError(f"scheduler produced non-positive lr {lr}")
        self.optimizer.lr = lr
        self.step_count += 1
        return lr

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class ConstantLR(LRScheduler):
    """No-op schedule (explicit is better than implicit)."""

    def get_lr(self, step: int) -> float:
        return self.base_lr


class StepDecayLR(LRScheduler):
    """Multiply the lr by ``gamma`` every ``period`` steps."""

    def __init__(self, optimizer: Optimizer, period: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.period = period
        self.gamma = gamma

    def get_lr(self, step: int) -> float:
        return self.base_lr * (self.gamma ** (step // self.period))


class CosineDecayLR(LRScheduler):
    """Cosine annealing from the base lr to ``min_lr`` over ``total_steps``."""

    def __init__(
        self, optimizer: Optimizer, total_steps: int, min_lr: float = 1e-6
    ) -> None:
        super().__init__(optimizer)
        if total_steps < 1:
            raise ValueError(f"total_steps must be >= 1, got {total_steps}")
        if min_lr <= 0 or min_lr > self.base_lr:
            raise ValueError(
                f"min_lr must be in (0, base_lr={self.base_lr}], got {min_lr}"
            )
        self.total_steps = total_steps
        self.min_lr = min_lr

    def get_lr(self, step: int) -> float:
        progress = min(step, self.total_steps) / self.total_steps
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupCosineLR(LRScheduler):
    """Linear warmup from near zero, then cosine decay to ``min_lr``."""

    def __init__(
        self,
        optimizer: Optimizer,
        total_steps: int,
        warmup_steps: int,
        min_lr: float = 1e-6,
    ) -> None:
        super().__init__(optimizer)
        if total_steps < 1:
            raise ValueError(f"total_steps must be >= 1, got {total_steps}")
        if not 0 <= warmup_steps < total_steps:
            raise ValueError(
                f"warmup_steps must be in [0, total_steps), got {warmup_steps}"
            )
        if min_lr <= 0 or min_lr > self.base_lr:
            raise ValueError(
                f"min_lr must be in (0, base_lr={self.base_lr}], got {min_lr}"
            )
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.min_lr = min_lr

    def get_lr(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        span = self.total_steps - self.warmup_steps
        progress = min(step - self.warmup_steps, span) / span
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
