"""Weight-initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so model
construction is reproducible under :class:`repro.utils.RngRegistry`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["kaiming_normal", "kaiming_uniform", "xavier_uniform", "zeros", "ones"]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Fan-in / fan-out for linear (out, in) or conv (out, in, kh, kw) weights."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        out_c, in_c, kh, kw = shape
        receptive = kh * kw
        return in_c * receptive, out_c * receptive
    raise ValueError(f"unsupported weight shape for fan computation: {shape}")


def kaiming_normal(
    shape: Tuple[int, ...], rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He-normal initialization (appropriate before ReLU)."""
    fan_in, _ = _fan_in_out(shape)
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(
    shape: Tuple[int, ...], rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He-uniform initialization."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialization (appropriate for linear heads)."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero float32 array."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one float32 array."""
    return np.ones(shape, dtype=np.float32)
