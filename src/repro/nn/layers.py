"""Layer / module abstraction on top of the autograd tensor.

A :class:`Module` owns named :class:`Parameter` tensors and child
modules, discovered by attribute inspection (the same convention as
PyTorch).  Modules carry a ``training`` flag that :class:`BatchNorm2d`
consults to switch between batch statistics and running statistics.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init as init_mod
from repro.nn.backend import base as backend_mod
from repro.nn.tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "ModuleList",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "Flatten",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Identity",
]


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``)."""

    def __init__(self, data: np.ndarray, name: Optional[str] = None) -> None:
        super().__init__(np.asarray(data, dtype=np.float32), requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter`, :class:`Module`, or
    :class:`ModuleList` instances as attributes; traversal methods
    (:meth:`parameters`, :meth:`state_dict`, ...) discover them by
    inspecting ``__dict__`` in assignment order.
    """

    def __init__(self) -> None:
        self.training = True

    # -- forward ------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- traversal ----------------------------------------------------
    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, ModuleList):
                for i, child in enumerate(value):
                    yield f"{name}.{i}", child

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, ModuleList):
                for i, child in enumerate(value):
                    yield from child.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    # -- buffers (non-trainable state, e.g. BN running stats) ----------
    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        own = getattr(self, "_buffers", {})
        for name, value in own.items():
            yield f"{prefix}{name}", value
        for name, child in self.named_children():
            yield from child.named_buffers(prefix=f"{prefix}{name}.")

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        if not hasattr(self, "_buffers"):
            self._buffers: Dict[str, np.ndarray] = {}
        self._buffers[name] = value

    def get_buffer(self, name: str) -> np.ndarray:
        return self._buffers[name]

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in self._buffers:
            raise KeyError(f"unknown buffer {name!r}")
        self._buffers[name] = value

    # -- train / eval mode ---------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for _, child in self.named_children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- state dict -----------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """All parameters and buffers as name -> array (copies)."""
        out: Dict[str, np.ndarray] = {}
        for name, p in self.named_parameters():
            out[name] = p.data.copy()
        for name, b in self.named_buffers():
            out[f"{name}"] = np.asarray(b).copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters/buffers in place; shapes must match exactly."""
        params = dict(self.named_parameters())
        buffer_owners = self._buffer_owners()
        missing = []
        for name in list(params) + list(buffer_owners):
            if name not in state:
                missing.append(name)
        unexpected = [k for k in state if k not in params and k not in buffer_owners]
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        for name, p in params.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"checkpoint {value.shape} vs model {p.data.shape}"
                )
            p.data = value.copy()
        for name, (owner, local) in buffer_owners.items():
            value = np.asarray(state[name])
            if value.shape != np.asarray(owner._buffers[local]).shape:
                raise ValueError(f"shape mismatch for buffer {name}")
            owner._buffers[local] = value.copy()

    def _buffer_owners(self) -> Dict[str, Tuple["Module", str]]:
        """Map full buffer name -> (owning module, local name)."""
        out: Dict[str, Tuple[Module, str]] = {}

        def visit(module: Module, prefix: str) -> None:
            for name in getattr(module, "_buffers", {}):
                out[f"{prefix}{name}"] = (module, name)
            for name, child in module.named_children():
                visit(child, f"{prefix}{name}.")

        visit(self, "")
        return out

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def __repr__(self) -> str:
        children = ", ".join(name for name, _ in self.named_children())
        return f"{type(self).__name__}({children})"


class ModuleList:
    """A plain list of modules that participates in traversal."""

    def __init__(self, modules: Optional[Sequence[Module]] = None) -> None:
        self._modules: List[Module] = list(modules or [])

    def append(self, module: Module) -> None:
        self._modules.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return self._modules[idx]


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = ModuleList(list(modules))

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]


class Identity(Module):
    """Pass-through module (handy for optional shortcut paths)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with weight shape (out, in)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"Linear dims must be positive, got {in_features} -> {out_features}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init_mod.kaiming_uniform((out_features, in_features), rng, gain=1.0)
        )
        self.bias = Parameter(init_mod.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected last dim {self.in_features}, got {x.shape}"
            )
        return F.linear(x, self.weight, self.bias)


class Conv2d(Module):
    """2-D convolution layer (square kernel).

    Forward delegates to :func:`repro.nn.functional.conv2d`, which
    dispatches gradient-free passes (``no_grad`` scoring/eval) to the
    active backend's ``conv2d_infer`` fast path — workspace-backed
    unfolds, so repeated forwards of the same shape (the
    contrast-scoring hot path) stop reallocating their scratch.  See
    :mod:`repro.nn.im2col` for the cache invariants and
    :mod:`repro.nn.backend` for the backend surface.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init_mod.kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), rng
            )
        )
        self.bias = Parameter(init_mod.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)


class BatchNorm2d(Module):
    """Batch normalization over (N, H, W) per channel, with running stats.

    In training mode normalizes with batch statistics and updates the
    exponential running mean/variance; in eval mode normalizes with the
    running statistics (so scoring and evaluation are deterministic, a
    requirement of the paper's contrast-score design principle).
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init_mod.ones((num_features,)))
        self.beta = Parameter(init_mod.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d({self.num_features}) got input shape {x.shape}"
            )
        if self.training:
            backend = backend_mod.get_backend()
            mean = backend.mean(x.data, axis=(0, 2, 3))
            var = backend.var(x.data, axis=(0, 2, 3))
            n = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]
            # Unbiased variance for the running estimate (PyTorch convention).
            unbiased = var * n / max(n - 1, 1)
            self._buffers["running_mean"] = (
                (1 - self.momentum) * self._buffers["running_mean"]
                + self.momentum * mean
            ).astype(np.float32)
            self._buffers["running_var"] = (
                (1 - self.momentum) * self._buffers["running_var"]
                + self.momentum * unbiased
            ).astype(np.float32)
            return self._normalize_train(x, mean, var)
        mean = self._buffers["running_mean"]
        var = self._buffers["running_var"]
        return self._normalize_eval(x, mean, var)

    def _normalize_train(self, x: Tensor, mean: np.ndarray, var: np.ndarray) -> Tensor:
        """Batch-stat normalization with the full BN backward."""
        from repro.nn.functional import _make_op  # local import avoids cycle at load

        eps = self.eps
        mu = mean.reshape(1, -1, 1, 1)
        v = var.reshape(1, -1, 1, 1)
        inv_std = 1.0 / np.sqrt(v + eps)
        x_hat = (x.data - mu) * inv_std
        gamma, beta = self.gamma, self.beta
        out = x_hat * gamma.data.reshape(1, -1, 1, 1) + beta.data.reshape(1, -1, 1, 1)
        n = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]

        def backward(g: np.ndarray):
            gx = ggamma = gbeta = None
            g_hat = g * gamma.data.reshape(1, -1, 1, 1)
            if x.requires_grad:
                sum_g = g_hat.sum(axis=(0, 2, 3), keepdims=True)
                sum_gx = (g_hat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
                gx = inv_std / n * (n * g_hat - sum_g - x_hat * sum_gx)
            if gamma.requires_grad:
                ggamma = (g * x_hat).sum(axis=(0, 2, 3))
            if beta.requires_grad:
                gbeta = g.sum(axis=(0, 2, 3))
            return (gx, ggamma, gbeta)

        return _make_op(
            out.astype(x.data.dtype, copy=False), (x, gamma, beta), backward
        )

    def _normalize_eval(self, x: Tensor, mean: np.ndarray, var: np.ndarray) -> Tensor:
        """Running-stat normalization (mean/var are constants)."""
        inv_std = 1.0 / np.sqrt(var + self.eps)
        scale = (self.gamma.data * inv_std).reshape(1, -1, 1, 1)
        shift = (self.beta.data - self.gamma.data * mean * inv_std).reshape(1, -1, 1, 1)
        from repro.nn.functional import _make_op
        from repro.nn.tensor import is_grad_enabled

        gamma, beta = self.gamma, self.beta
        out = x.data * scale + shift
        # The normalized input only feeds the gamma gradient — don't pay
        # the extra full-map pass on gradient-free (scoring/eval) calls.
        # The backward recomputes it on demand, so a gamma whose
        # requires_grad flips between forward and backward still gets a
        # correct gradient.
        x_hat_const = (
            (x.data - mean.reshape(1, -1, 1, 1)) * inv_std.reshape(1, -1, 1, 1)
            if is_grad_enabled() and gamma.requires_grad
            else None
        )

        def backward(g: np.ndarray):
            gx = g * scale if x.requires_grad else None
            ggamma = None
            if gamma.requires_grad:
                x_hat = (
                    x_hat_const
                    if x_hat_const is not None
                    else (x.data - mean.reshape(1, -1, 1, 1))
                    * inv_std.reshape(1, -1, 1, 1)
                )
                ggamma = (g * x_hat).sum(axis=(0, 2, 3))
            gbeta = g.sum(axis=(0, 2, 3)) if beta.requires_grad else None
            return (gx, ggamma, gbeta)

        return _make_op(out.astype(x.data.dtype, copy=False), (x, gamma, beta), backward)


class ReLU(Module):
    """ReLU activation as a module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten()


class MaxPool2d(Module):
    """Non-overlapping max pooling."""

    def __init__(self, kernel: int = 2) -> None:
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel)


class AvgPool2d(Module):
    """Non-overlapping average pooling."""

    def __init__(self, kernel: int = 2) -> None:
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel)


class GlobalAvgPool2d(Module):
    """Global average pooling to (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)
