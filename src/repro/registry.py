"""Typed, decorator-based component registries — the extension surface.

Every pluggable ingredient of the framework (replacement policies,
dataset recipes, encoder architectures, augmentation pipelines, array
execution backends, stream scenarios, fleet model aggregators, serve
admission policies) is
registered by name in one of
the module-level registries below.  New
components plug in with a decorator and zero edits to ``repro``
internals::

    from repro.registry import register_policy

    @register_policy("my-policy", label="My Policy", aliases=("mine",))
    class MyPolicy(ReplacementPolicy):
        def __init__(self, capacity, **_):
            ...

The registered name is then accepted everywhere a built-in name is:
``Session.from_config(cfg).with_policy("my-policy")``, the CLI's
``--policy`` flag, and :func:`create_policy`.

Factories are invoked through :meth:`Registry.create`, which filters
the standard keyword set down to what the factory's signature accepts,
so a policy that needs only ``capacity`` simply declares ``capacity``
(plus ``**_`` or nothing) and never sees the scorer or RNG.

Names are validated (lowercase kebab-case), duplicates are rejected,
and unknown names raise a :class:`KeyError` with a "did you mean ...?"
suggestion (see DESIGN.md §6).
"""

from __future__ import annotations

import difflib
import inspect
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Registry",
    "RegistryEntry",
    "UnknownComponentError",
    "POLICIES",
    "DATASETS",
    "ENCODERS",
    "AUGMENTS",
    "BACKENDS",
    "SCENARIOS",
    "AGGREGATORS",
    "SERVE_POLICIES",
    "WIRE_FORMATS",
    "CLIENT_SAMPLERS",
    "EXPORTERS",
    "register_policy",
    "register_dataset",
    "register_encoder",
    "register_augment",
    "register_backend",
    "register_scenario",
    "register_aggregator",
    "register_serve_policy",
    "register_wire_format",
    "register_client_sampler",
    "register_exporter",
    "create_policy",
    "canonical_policy_names",
    "policy_names",
    "policy_labels",
    "dataset_names",
    "encoder_names",
    "augment_names",
    "backend_names",
    "scenario_names",
    "scenario_wrapper_names",
    "scenario_base_names",
    "aggregator_names",
    "serve_policy_names",
    "wire_format_names",
    "client_sampler_names",
    "exporter_names",
]

#: Valid component names: lowercase kebab-case, digits allowed.
_NAME_RE = re.compile(r"^[a-z0-9]+(?:-[a-z0-9]+)*$")


class UnknownComponentError(KeyError, ValueError):
    """Raised on unknown registry names.

    Subclasses both ``KeyError`` (it is a failed lookup) and
    ``ValueError`` (the pre-registry ``make_policy`` raised ValueError,
    and existing call sites catch that).
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


@dataclass
class RegistryEntry:
    """One registered component factory plus its display metadata."""

    name: str
    factory: Callable[..., Any]
    label: Optional[str] = None
    aliases: Tuple[str, ...] = ()
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def display_label(self) -> str:
        return self.label if self.label is not None else self.name


class Registry:
    """A named collection of component factories.

    Parameters
    ----------
    kind:
        Human-readable component kind ("policy", "dataset", ...) used in
        error messages.
    ensure:
        Optional callable importing the modules that register the
        built-in components.  Invoked lazily before any lookup or
        listing so import order never matters.
    """

    def __init__(self, kind: str, ensure: Optional[Callable[[], None]] = None) -> None:
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}
        self._aliases: Dict[str, str] = {}
        self._ensure = ensure
        self._ensured = False
        self._ensuring = False

    # -- registration ---------------------------------------------------
    def register(
        self,
        name: str,
        *,
        label: Optional[str] = None,
        aliases: Sequence[str] = (),
        **metadata: Any,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering ``factory`` (a class or callable) as ``name``."""

        def decorate(factory: Callable[..., Any]) -> Callable[..., Any]:
            self.add(name, factory, label=label, aliases=aliases, **metadata)
            return factory

        return decorate

    def add(
        self,
        name: str,
        factory: Callable[..., Any],
        *,
        label: Optional[str] = None,
        aliases: Sequence[str] = (),
        **metadata: Any,
    ) -> RegistryEntry:
        """Imperative registration (the decorator's workhorse)."""
        self._validate_name(name)
        for alias in aliases:
            self._validate_name(alias)
        if not callable(factory):
            raise TypeError(f"{self.kind} factory for {name!r} is not callable")
        self._reject_positional_only(name, factory)
        taken = self._taken(name)
        if taken:
            raise ValueError(
                f"{self.kind} name {name!r} is already registered ({taken})"
            )
        for alias in aliases:
            taken = self._taken(alias)
            if taken:
                raise ValueError(
                    f"{self.kind} alias {alias!r} is already registered ({taken})"
                )
        entry = RegistryEntry(
            name=name,
            factory=factory,
            label=label,
            aliases=tuple(aliases),
            metadata=dict(metadata),
        )
        self._entries[name] = entry
        for alias in entry.aliases:
            self._aliases[alias] = name
        return entry

    def unregister(self, name: str) -> None:
        """Remove a registered component (test/plugin teardown helper).

        Given an alias, only the alias mapping is removed; given a
        canonical name, the entry and all its aliases are removed.
        """
        self.ensure_builtins()
        if name in self._aliases:
            canonical = self._aliases.pop(name)
            entry = self._entries[canonical]
            entry.aliases = tuple(a for a in entry.aliases if a != name)
            return
        entry = self._entries.pop(name, None)
        if entry is None:
            raise KeyError(f"{self.kind} {name!r} is not registered")
        for alias in entry.aliases:
            self._aliases.pop(alias, None)

    # -- lookup ---------------------------------------------------------
    def get(self, name: str) -> RegistryEntry:
        """Resolve ``name`` (canonical or alias) to its entry.

        Raises :class:`UnknownComponentError` (a ``KeyError`` and
        ``ValueError``) with a "did you mean ...?" suggestion when the
        name is unknown.
        """
        self.ensure_builtins()
        canonical = self._aliases.get(name, name)
        entry = self._entries.get(canonical)
        if entry is None:
            raise UnknownComponentError(self._unknown_message(name))
        return entry

    def create(self, name: str, /, **kwargs: Any) -> Any:
        """Instantiate the component, passing only accepted keywords.

        The factory's signature decides which of ``kwargs`` it receives:
        a ``**kwargs`` catch-all receives everything, otherwise the set
        is filtered down to declared parameter names.
        """
        return self.create_with_required(name, (), **kwargs)

    def create_with_required(
        self, name: str, required: Sequence[str], /, **kwargs: Any
    ) -> Any:
        """Like :meth:`create`, but the keys named in ``required`` must
        be accepted by the factory — they are explicit caller options,
        not offers, and silently dropping one would misconfigure the
        component.  Raises ``TypeError`` naming the rejected keys.
        """
        entry = self.get(name)
        accepted = self._accepted_kwargs(entry.factory, kwargs)
        rejected = sorted(set(required) - set(accepted))
        if rejected:
            raise TypeError(
                f"{self.kind} {name!r} does not accept option(s): "
                f"{', '.join(rejected)}"
            )
        return entry.factory(**accepted)

    @staticmethod
    def _accepted_kwargs(
        factory: Callable[..., Any], kwargs: Dict[str, Any]
    ) -> Dict[str, Any]:
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):  # builtins without introspection
            return dict(kwargs)
        params = signature.parameters.values()
        if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params):
            return dict(kwargs)
        accepted = {
            p.name
            for p in params
            if p.kind
            in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
        }
        return {k: v for k, v in kwargs.items() if k in accepted}

    # -- introspection --------------------------------------------------
    def names(self) -> List[str]:
        """Sorted canonical names of all registered components."""
        self.ensure_builtins()
        return sorted(self._entries)

    def labels(self) -> Dict[str, str]:
        """Canonical name -> display label."""
        self.ensure_builtins()
        return {name: entry.display_label for name, entry in self._entries.items()}

    def aliases(self) -> Dict[str, str]:
        """Alias -> canonical name."""
        self.ensure_builtins()
        return dict(self._aliases)

    def entries(self) -> List[RegistryEntry]:
        self.ensure_builtins()
        return [self._entries[name] for name in sorted(self._entries)]

    def __contains__(self, name: str) -> bool:
        self.ensure_builtins()
        return name in self._entries or name in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self.ensure_builtins()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry(kind={self.kind!r}, names={self.names()})"

    # -- internals ------------------------------------------------------
    def ensure_builtins(self) -> None:
        """Import the modules registering built-in components (once).

        Marked done only on success, so a failed import (transient or
        environmental) surfaces again on the next lookup instead of
        leaving a permanently empty registry.  A separate in-progress
        flag guards against re-entry while the imports run.
        """
        if self._ensured or self._ensure is None or self._ensuring:
            return
        self._ensuring = True
        try:
            self._ensure()
            self._ensured = True
        finally:
            self._ensuring = False

    def _reject_positional_only(self, name: str, factory: Callable[..., Any]) -> None:
        """Registry factories are invoked with keywords only; a required
        positional-only parameter could never be supplied, so reject it
        at registration instead of failing confusingly at create()."""
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):
            return
        bad = [
            p.name
            for p in signature.parameters.values()
            if p.kind is inspect.Parameter.POSITIONAL_ONLY
            and p.default is inspect.Parameter.empty
        ]
        if bad:
            raise ValueError(
                f"{self.kind} factory for {name!r} has required positional-only "
                f"parameter(s) {', '.join(bad)}; registry factories are called "
                "with keyword arguments only"
            )

    def _validate_name(self, name: str) -> None:
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ValueError(
                f"invalid {self.kind} name {name!r}: names must be lowercase "
                "kebab-case (letters, digits, single dashes)"
            )

    def _taken(self, name: str) -> Optional[str]:
        if name in self._entries:
            return "as a name"
        if name in self._aliases:
            return f"as an alias of {self._aliases[name]!r}"
        return None

    def _unknown_message(self, name: str) -> str:
        known = sorted(set(self._entries) | set(self._aliases))
        message = f"unknown {self.kind} {name!r}; known: {', '.join(known) or '(none)'}"
        close = difflib.get_close_matches(name, known, n=1, cutoff=0.5)
        if close:
            message += f" — did you mean {close[0]!r}?"
        return message


# ----------------------------------------------------------------------
# The built-in registries.  ``ensure`` imports the defining modules so
# that looking up or listing built-ins works regardless of what the
# caller imported first.
# ----------------------------------------------------------------------
def _ensure_policies() -> None:
    import repro.core.replacement  # noqa: F401  (registers contrast-scoring)
    import repro.selection  # noqa: F401  (registers the four baselines)


def _ensure_datasets() -> None:
    import repro.data.datasets  # noqa: F401


def _ensure_encoders() -> None:
    import repro.nn.resnet  # noqa: F401


def _ensure_augments() -> None:
    import repro.data.augment  # noqa: F401


def _ensure_backends() -> None:
    import repro.nn.backend  # noqa: F401  (registers numpy + fused)


def _ensure_scenarios() -> None:
    import repro.data.scenarios  # noqa: F401  (registers the built-in streams)


def _ensure_aggregators() -> None:
    import repro.fleet.aggregators  # noqa: F401  (registers the built-in rules)


def _ensure_serve_policies() -> None:
    import repro.serve.policies  # noqa: F401  (registers block/shed/degrade)


def _ensure_wire_formats() -> None:
    import repro.experiments.wire  # noqa: F401  (registers json-b64/shm/delta + compressed deltas)


def _ensure_client_samplers() -> None:
    import repro.fleet.sampling  # noqa: F401  (registers uniform/weighted/round-robin)


def _ensure_exporters() -> None:
    import repro.obs.exporters  # noqa: F401  (registers console/jsonl/prometheus)


POLICIES = Registry("policy", ensure=_ensure_policies)
DATASETS = Registry("dataset", ensure=_ensure_datasets)
ENCODERS = Registry("encoder", ensure=_ensure_encoders)
AUGMENTS = Registry("augment", ensure=_ensure_augments)
BACKENDS = Registry("backend", ensure=_ensure_backends)
SCENARIOS = Registry("scenario", ensure=_ensure_scenarios)
AGGREGATORS = Registry("aggregator", ensure=_ensure_aggregators)
SERVE_POLICIES = Registry("serve policy", ensure=_ensure_serve_policies)
WIRE_FORMATS = Registry("wire format", ensure=_ensure_wire_formats)
CLIENT_SAMPLERS = Registry("client sampler", ensure=_ensure_client_samplers)
EXPORTERS = Registry("exporter", ensure=_ensure_exporters)

register_policy = POLICIES.register
register_dataset = DATASETS.register
register_encoder = ENCODERS.register
register_augment = AUGMENTS.register
register_backend = BACKENDS.register
register_scenario = SCENARIOS.register
register_aggregator = AGGREGATORS.register
register_serve_policy = SERVE_POLICIES.register
register_wire_format = WIRE_FORMATS.register
register_client_sampler = CLIENT_SAMPLERS.register
register_exporter = EXPORTERS.register


def create_policy(
    name: str,
    *,
    capacity: int,
    scorer: Any = None,
    rng: Any = None,
    temperature: float = 0.5,
    lazy_interval: Optional[int] = None,
    score_momentum: float = 0.0,
    **extra: Any,
) -> Any:
    """Construct a replacement policy by registered name.

    ``capacity`` (the buffer size the policy must match) is required;
    everything else has a sensible default for policies that don't use
    it.

    This is the canonical successor of the old ``make_policy`` if/elif
    chain: the standard keyword set (scorer, capacity, rng, temperature,
    lazy_interval, score_momentum) is offered to the registered factory,
    which receives only the keywords its signature declares.  Keys the
    *caller* adds via ``extra`` are explicit options, not offers: a
    factory that does not accept one raises ``TypeError`` (so a typo'd
    option cannot silently configure nothing).
    """
    return POLICIES.create_with_required(
        name,
        tuple(extra),
        scorer=scorer,
        capacity=capacity,
        rng=rng,
        temperature=temperature,
        lazy_interval=lazy_interval,
        score_momentum=score_momentum,
        **extra,
    )


def canonical_policy_names(names: Sequence[str]) -> Tuple[str, ...]:
    """Resolve a policy roster to canonical names (aliases collapsed).

    Harnesses that key result dicts by policy name use this so an
    aliased roster entry ("cs") lands under the same key the run's
    :class:`~repro.session.StreamRunResult` reports.
    """
    return tuple(POLICIES.get(name).name for name in names)


def policy_names() -> List[str]:
    """Sorted names of all registered policies."""
    return POLICIES.names()


def policy_labels() -> Dict[str, str]:
    """Policy name -> pretty label (paper figure captions)."""
    return POLICIES.labels()


def dataset_names() -> List[str]:
    """Sorted names of all registered datasets."""
    return DATASETS.names()


def encoder_names() -> List[str]:
    """Sorted names of all registered encoders."""
    return ENCODERS.names()


def augment_names() -> List[str]:
    """Sorted names of all registered augmentation pipelines."""
    return AUGMENTS.names()


def backend_names() -> List[str]:
    """Sorted names of all registered array backends."""
    return BACKENDS.names()


def scenario_names() -> List[str]:
    """Sorted names of all registered stream scenarios."""
    return SCENARIOS.names()


def scenario_wrapper_names() -> List[str]:
    """Sorted names of scenarios registered as wrappers.

    Wrappers pass ``kind="wrapper"`` metadata at registration and
    compose over any scenario via composition syntax
    (``"corrupted(bursty(imbalanced))"``); see
    :mod:`repro.data.scenarios`.
    """
    return [
        entry.name
        for entry in SCENARIOS.entries()
        if entry.metadata.get("kind") == "wrapper"
    ]


def scenario_base_names() -> List[str]:
    """Sorted names of scenarios that are base streams (not wrappers)."""
    return [
        entry.name
        for entry in SCENARIOS.entries()
        if entry.metadata.get("kind") != "wrapper"
    ]


def aggregator_names() -> List[str]:
    """Sorted names of all registered fleet model aggregators."""
    return AGGREGATORS.names()


def serve_policy_names() -> List[str]:
    """Sorted names of all registered serve admission policies."""
    return SERVE_POLICIES.names()


def wire_format_names() -> List[str]:
    """Sorted names of all registered array wire formats."""
    return WIRE_FORMATS.names()


def client_sampler_names() -> List[str]:
    """Sorted names of all registered fleet client samplers."""
    return CLIENT_SAMPLERS.names()


def exporter_names() -> List[str]:
    """Sorted names of all registered metric exporters."""
    return EXPORTERS.names()
