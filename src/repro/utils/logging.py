"""Minimal logging helpers.

The library logs through the standard :mod:`logging` module under the
``repro`` namespace; nothing configures the root logger, so applications
keep full control of handlers and levels.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]

_BASE = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("train")`` returns the ``repro.train`` logger;
    ``get_logger()`` returns the package root logger.
    """
    if name is None:
        return logging.getLogger(_BASE)
    if name.startswith(_BASE):
        return logging.getLogger(name)
    return logging.getLogger(f"{_BASE}.{name}")
