"""Shared utilities: seeded RNG management, configs, logging, tables."""

from repro.utils.rng import RngRegistry, new_rng, spawn_rngs
from repro.utils.tables import format_table, format_markdown_table
from repro.utils.logging import get_logger

__all__ = [
    "RngRegistry",
    "new_rng",
    "spawn_rngs",
    "format_table",
    "format_markdown_table",
    "get_logger",
]
