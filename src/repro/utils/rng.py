"""Seeded random-number management.

Every stochastic component in the library draws from a ``numpy.random.
Generator`` that is injected explicitly.  Nothing in the library touches
the global numpy RNG, which keeps experiments reproducible and lets the
test-suite pin seeds per test.

The :class:`RngRegistry` hands out independent child generators derived
from a single experiment seed so that, e.g., the data stream and the
model initialization do not share a sequence (changing the stream length
must not perturb the weights).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

__all__ = ["new_rng", "spawn_rngs", "RngRegistry"]


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Create a fresh ``numpy.random.Generator`` from ``seed``.

    ``None`` produces OS-entropy seeding (only appropriate in examples,
    never in tests or benchmarks).
    """
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Uses ``SeedSequence.spawn`` so the children are independent streams
    rather than offsets of one stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class RngRegistry:
    """Named, lazily created child generators under one experiment seed.

    Example
    -------
    >>> rngs = RngRegistry(seed=0)
    >>> stream_rng = rngs.get("stream")
    >>> model_rng = rngs.get("model")

    Requesting the same name twice returns the same generator object, so
    components can re-fetch their stream by name.  Child seeds depend
    only on ``(seed, name)``, never on the order of ``get`` calls.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._generators: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator registered under ``name``, creating it if new."""
        if name not in self._generators:
            # Hash the name into entropy so ordering of get() calls is irrelevant.
            name_entropy = [ord(c) for c in name]
            seq = np.random.SeedSequence([self.seed] + name_entropy)
            self._generators[name] = np.random.default_rng(seq)
        return self._generators[name]

    def names(self) -> Iterable[str]:
        """Names of all generators created so far."""
        return tuple(self._generators)

    def state(self) -> Dict[str, dict]:
        """Bit-generator states of every generator created so far.

        The returned mapping is JSON-serializable (nested dicts and
        ints) and, together with :meth:`set_state`, makes a run's
        randomness checkpointable: child seeds depend only on
        ``(seed, name)``, so a restored registry hands out generators
        whose future draws match the original run exactly.
        """
        return {
            name: gen.bit_generator.state for name, gen in self._generators.items()
        }

    def set_state(self, states: Dict[str, dict]) -> None:
        """Restore generator states written by :meth:`state`.

        Generators are created on demand (same ``(seed, name)``
        derivation as :meth:`get`) and then fast-forwarded to the saved
        state, so restore order is irrelevant.
        """
        for name, state in states.items():
            self.get(name).bit_generator.state = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self.seed}, names={list(self._generators)})"
