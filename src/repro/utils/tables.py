"""Plain-text and markdown table rendering for benchmark reports.

The benchmark harnesses print the same rows the paper's tables/figures
report; these helpers keep that output aligned and copy-pasteable into
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_markdown_table"]


def _stringify(rows: Iterable[Sequence[object]]) -> List[List[str]]:
    out: List[List[str]] = []
    for row in rows:
        out.append(["" if cell is None else str(cell) for cell in row])
    return out


def _column_widths(header: Sequence[str], rows: List[List[str]]) -> List[int]:
    widths = [len(h) for h in header]
    for row in rows:
        if len(row) != len(header):
            raise ValueError(
                f"row has {len(row)} cells but header has {len(header)}: {row!r}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    return widths


def format_table(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    str_rows = _stringify(rows)
    widths = _column_widths(list(header), str_rows)
    head = " | ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()
    sep = "-+-".join("-" * w for w in widths)
    lines = [head, sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_markdown_table(
    header: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a GitHub-flavoured markdown table."""
    str_rows = _stringify(rows)
    widths = _column_widths(list(header), str_rows)
    head = "| " + " | ".join(h.ljust(w) for h, w in zip(header, widths)) + " |"
    sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    lines = [head, sep]
    for row in str_rows:
        lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
    return "\n".join(lines)
