"""Training harnesses: stage-2 classifier probes and the supervised
baseline (stage-1 streaming lives in :mod:`repro.core.framework`).
"""

from repro.train.classifier import LinearProbe, ProbeResult, evaluate_encoder
from repro.train.knn import KnnProbe, knn_predict
from repro.train.supervised import SupervisedBaseline, SupervisedResult

__all__ = [
    "LinearProbe",
    "ProbeResult",
    "evaluate_encoder",
    "KnnProbe",
    "knn_predict",
    "SupervisedBaseline",
    "SupervisedResult",
]
