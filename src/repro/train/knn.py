"""k-nearest-neighbour readout on frozen encoder features.

A training-free alternative to the stage-2 linear probe, standard in
the self-supervised literature for monitoring representation quality
along a run: classify each test feature by majority vote of its k
nearest (cosine similarity) labeled features.  Cheaper than the linear
probe, so experiment harnesses can evaluate more checkpoints.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.metrics.accuracy import top1_accuracy
from repro.nn.layers import Module

__all__ = ["knn_predict", "KnnProbe"]


def knn_predict(
    train_features: np.ndarray,
    train_labels: np.ndarray,
    test_features: np.ndarray,
    k: int = 5,
    num_classes: Optional[int] = None,
) -> np.ndarray:
    """Cosine-similarity kNN class predictions.

    Parameters
    ----------
    train_features: ``(N, d)`` labeled bank.
    train_labels: ``(N,)`` integer labels.
    test_features: ``(M, d)`` queries.
    k: neighbours per vote (clamped to N).
    num_classes: vote space size (inferred from labels when None).
    """
    train_features = np.asarray(train_features, dtype=np.float64)
    test_features = np.asarray(test_features, dtype=np.float64)
    train_labels = np.asarray(train_labels)
    if train_features.ndim != 2 or test_features.ndim != 2:
        raise ValueError("features must be 2-D (N, d)")
    if train_features.shape[0] != train_labels.shape[0]:
        raise ValueError(
            f"bank size mismatch: {train_features.shape[0]} features vs "
            f"{train_labels.shape[0]} labels"
        )
    if train_features.shape[0] == 0:
        raise ValueError("empty feature bank")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, train_features.shape[0])
    if num_classes is None:
        num_classes = int(train_labels.max()) + 1

    def normalize(x: np.ndarray) -> np.ndarray:
        return x / np.maximum(np.linalg.norm(x, axis=1, keepdims=True), 1e-12)

    sims = normalize(test_features) @ normalize(train_features).T  # (M, N)
    top = np.argpartition(-sims, kth=k - 1, axis=1)[:, :k]
    votes = train_labels[top]  # (M, k)
    predictions = np.empty(test_features.shape[0], dtype=np.int64)
    for i in range(votes.shape[0]):
        counts = np.bincount(votes[i], minlength=num_classes)
        predictions[i] = counts.argmax()
    return predictions


class KnnProbe:
    """Training-free encoder evaluation via kNN on features."""

    def __init__(self, encoder: Module, k: int = 5, max_batch: int = 512) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.encoder = encoder
        self.k = k
        self.max_batch = max_batch

    def _features(self, images: np.ndarray) -> np.ndarray:
        from repro.core.scoring import ContrastScorer
        from repro.nn.layers import Identity

        scorer = ContrastScorer(self.encoder, Identity(), max_batch=self.max_batch)
        return scorer.features(images)

    def score(
        self,
        train_images: np.ndarray,
        train_labels: np.ndarray,
        test_images: np.ndarray,
        test_labels: np.ndarray,
        num_classes: Optional[int] = None,
    ) -> float:
        """Top-1 kNN accuracy of the frozen encoder."""
        bank = self._features(train_images)
        queries = self._features(test_images)
        predictions = knn_predict(
            bank, train_labels, queries, k=self.k, num_classes=num_classes
        )
        return top1_accuracy(predictions, test_labels)
