"""Supervised baseline: train encoder + classifier directly on the few
labeled samples (no contrastive pre-training).

The paper's §IV-B compares against this to motivate the framework: with
1% labels, direct supervised training reaches 32.11% on CIFAR-10 versus
60.47% for the proposed pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.accuracy import top1_accuracy
from repro.nn.layers import Linear, Module
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad

__all__ = ["SupervisedBaseline", "SupervisedResult"]


@dataclass
class SupervisedResult:
    """Outcome of direct supervised training."""

    accuracy: float
    train_accuracy: float
    num_labeled: int
    epochs: int


class SupervisedBaseline:
    """End-to-end cross-entropy training of encoder + linear head."""

    def __init__(
        self,
        encoder: Module,
        num_classes: int,
        rng: np.random.Generator,
        lr: float = 1e-3,
        weight_decay: float = 1e-4,
        epochs: int = 30,
        batch_size: int = 32,
    ) -> None:
        if num_classes < 2:
            raise ValueError(f"need >= 2 classes, got {num_classes}")
        feature_dim = getattr(encoder, "feature_dim", None)
        if feature_dim is None:
            raise ValueError("encoder must expose feature_dim")
        self.encoder = encoder
        self.head = Linear(feature_dim, num_classes, rng=rng)
        self.rng = rng
        self.epochs = epochs
        self.batch_size = batch_size
        self.optimizer = Adam(
            [*encoder.parameters(), *self.head.parameters()],
            lr=lr,
            weight_decay=weight_decay,
        )

    # ------------------------------------------------------------------
    def fit(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Train on the labeled set; returns final training accuracy."""
        n = images.shape[0]
        if n != labels.shape[0]:
            raise ValueError(f"images/labels mismatch: {n} vs {labels.shape[0]}")
        if n < 2:
            raise ValueError("need at least 2 labeled samples")
        batch = min(self.batch_size, n)
        for _ in range(self.epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                if idx.size < 2:
                    continue  # BatchNorm needs more than one sample
                self.encoder.train()
                logits = self.head(self.encoder(Tensor(images[idx])))
                loss = cross_entropy(logits, labels[idx])
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
        return self.score(images, labels)

    def predict(self, images: np.ndarray, max_batch: int = 512) -> np.ndarray:
        """Predicted class ids (eval mode)."""
        self.encoder.eval()
        outputs = []
        with no_grad():
            for start in range(0, images.shape[0], max_batch):
                chunk = Tensor(images[start : start + max_batch])
                logits = self.head(self.encoder(chunk)).data
                outputs.append(logits.argmax(axis=1))
        self.encoder.train()
        return np.concatenate(outputs)

    def score(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy."""
        return top1_accuracy(self.predict(images), labels)
