"""Stage 2: classifier training on top of the frozen encoder (paper
Fig. 1, right).

After stage-1 contrastive learning improves the encoder, a linear
classifier is trained on encoder features using the few labeled samples
sent to the server (1% / 10% / 100% of a labeled pool).  The encoder is
frozen and run in eval mode, matching the paper's evaluation protocol
("train a classifier with 1%, 10%, or 100% labeled data on the learned
encoder").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.scoring import ContrastScorer
from repro.data.splits import labeled_subset
from repro.metrics.accuracy import top1_accuracy
from repro.nn.layers import Linear, Module
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad

__all__ = ["LinearProbe", "ProbeResult", "evaluate_encoder"]


@dataclass
class ProbeResult:
    """Outcome of one stage-2 training run."""

    accuracy: float
    train_accuracy: float
    num_labeled: int
    label_fraction: float
    epochs: int


class LinearProbe:
    """Linear classifier trained on frozen encoder features.

    Parameters
    ----------
    encoder: frozen stage-1 encoder (eval mode enforced internally).
    num_classes: classifier output dimension.
    lr, epochs, batch_size: Adam training schedule (paper: Adam,
        lr 3e-4, hundreds of epochs; scaled here).
    rng: initialization and shuffling randomness.
    """

    def __init__(
        self,
        encoder: Module,
        num_classes: int,
        rng: np.random.Generator,
        lr: float = 3e-3,
        epochs: int = 60,
        batch_size: int = 64,
    ) -> None:
        if num_classes < 2:
            raise ValueError(f"need >= 2 classes, got {num_classes}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.encoder = encoder
        self.num_classes = num_classes
        self.rng = rng
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        feature_dim = getattr(encoder, "feature_dim", None)
        if feature_dim is None:
            raise ValueError("encoder must expose feature_dim")
        self.head = Linear(feature_dim, num_classes, rng=rng)

    # ------------------------------------------------------------------
    def extract_features(self, images: np.ndarray, max_batch: int = 512) -> np.ndarray:
        """Frozen-encoder features for ``images`` (eval mode, no grads)."""
        scorer = ContrastScorer(self.encoder, self.head, max_batch=max_batch)
        return scorer.features(images)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Train the linear head on precomputed features; returns final
        training accuracy."""
        if features.shape[0] != labels.shape[0]:
            raise ValueError(
                f"features/labels mismatch: {features.shape[0]} vs {labels.shape[0]}"
            )
        if features.shape[0] < 1:
            raise ValueError("no training data")
        optimizer = Adam(self.head.parameters(), lr=self.lr)
        n = features.shape[0]
        batch = min(self.batch_size, n)
        for _ in range(self.epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                logits = self.head(Tensor(features[idx]))
                loss = cross_entropy(logits, labels[idx])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        return self.score_features(features, labels)

    def predict_features(self, features: np.ndarray) -> np.ndarray:
        """Predicted class ids for precomputed features."""
        with no_grad():
            logits = self.head(Tensor(features)).data
        return logits.argmax(axis=1)

    def score_features(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy on precomputed features."""
        return top1_accuracy(self.predict_features(features), labels)

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted class ids for raw images."""
        return self.predict_features(self.extract_features(images))

    def score(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy on raw images."""
        return top1_accuracy(self.predict(images), labels)


def evaluate_encoder(
    encoder: Module,
    train_images: np.ndarray,
    train_labels: np.ndarray,
    test_images: np.ndarray,
    test_labels: np.ndarray,
    num_classes: int,
    rng: np.random.Generator,
    label_fraction: float = 1.0,
    lr: float = 3e-3,
    epochs: int = 60,
    batch_size: int = 64,
) -> ProbeResult:
    """Full stage-2 evaluation: select a label fraction, probe, test.

    This is the paper's measurement protocol for every figure/table:
    contrastive learning quality is read out as the test accuracy of a
    classifier trained on ``label_fraction`` of the labeled pool.
    """
    probe = LinearProbe(
        encoder, num_classes, rng, lr=lr, epochs=epochs, batch_size=batch_size
    )
    subset = labeled_subset(train_labels, label_fraction, rng)
    train_features = probe.extract_features(train_images[subset])
    train_acc = probe.fit(train_features, train_labels[subset])
    test_features = probe.extract_features(test_images)
    accuracy = probe.score_features(test_features, test_labels)
    return ProbeResult(
        accuracy=accuracy,
        train_accuracy=train_acc,
        num_labeled=int(subset.size),
        label_fraction=label_fraction,
        epochs=epochs,
    )
