"""Contrast scoring — paper Eq. 2-3.

For each candidate image ``x`` the scorer builds the deterministic weak
view ``x+`` (horizontal flip), embeds both through the encoder ``f`` and
projection head ``g``, l2-normalizes, and returns

    S(x) = 1 - z^T z+          with z = g(f(x)) / ||g(f(x))||

so ``S`` lies in [0, 2].  High score = the two views embed differently =
the encoder has not learned an invariant representation of ``x`` yet =
``x`` is valuable training data (and, by the paper's §III-C analysis,
produces a large NT-Xent gradient).

Design principle (paper §III-B): the scoring view must be
*deterministic*.  Randomized strong augmentation would make the score
reflect augmentation luck rather than encoder capability.  Accordingly
the scorer also runs the model in eval mode (batch-norm running
statistics), so a sample's score does not depend on which other samples
happen to share its scoring batch.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.data.augment import horizontal_flip
from repro.nn.layers import Module
from repro.nn.tensor import Tensor, no_grad

__all__ = ["ContrastScorer"]


class ContrastScorer:
    """Compute contrast scores S(x) for batches of images.

    Parameters
    ----------
    encoder:
        The base encoder ``f(·)`` mapping NCHW images to representation
        vectors.
    projector:
        The projection head ``g(·)``; its output is l2-normalized (if the
        head does not normalize, the scorer normalizes defensively).
    view_fn:
        The deterministic weak augmentation producing ``x+``.  Defaults
        to horizontal flip, the paper's choice.  Must be deterministic —
        pass a pure function of the image batch only.
    max_batch:
        Upper bound on images pushed through the model at once (keeps
        peak memory flat when scoring large candidate pools).
    """

    def __init__(
        self,
        encoder: Module,
        projector: Module,
        view_fn: Callable[[np.ndarray], np.ndarray] = horizontal_flip,
        max_batch: int = 512,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.encoder = encoder
        self.projector = projector
        self.view_fn = view_fn
        self.max_batch = max_batch

    # ------------------------------------------------------------------
    def project(self, images: np.ndarray) -> np.ndarray:
        """Normalized projections z = g(f(x))/||g(f(x))|| (no gradient)."""
        if images.ndim != 4:
            raise ValueError(f"expected NCHW batch, got shape {images.shape}")
        outputs = []
        enc_training = self.encoder.training
        proj_training = self.projector.training
        self.encoder.eval()
        self.projector.eval()
        try:
            with no_grad():
                for start in range(0, images.shape[0], self.max_batch):
                    chunk = images[start : start + self.max_batch]
                    z = self.projector(self.encoder(Tensor(chunk))).data
                    outputs.append(np.asarray(z, dtype=np.float64))
        finally:
            self.encoder.train(enc_training)
            self.projector.train(proj_training)
        z = np.concatenate(outputs, axis=0) if outputs else np.zeros((0, 1))
        norms = np.linalg.norm(z, axis=1, keepdims=True)
        return z / np.maximum(norms, 1e-12)

    def score(self, images: np.ndarray) -> np.ndarray:
        """Contrast scores S(x) in [0, 2] for every image in the batch."""
        if images.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        z = self.project(images)
        z_flip = self.project(self.view_fn(images))
        scores = 1.0 - (z * z_flip).sum(axis=1)
        return np.clip(scores, 0.0, 2.0)

    def features(self, images: np.ndarray) -> np.ndarray:
        """Encoder representations h = f(x) (no gradient, eval mode).

        Used by feature-space baselines (K-Center) and the stage-2
        classifier.
        """
        if images.ndim != 4:
            raise ValueError(f"expected NCHW batch, got shape {images.shape}")
        outputs = []
        enc_training = self.encoder.training
        self.encoder.eval()
        try:
            with no_grad():
                for start in range(0, images.shape[0], self.max_batch):
                    chunk = images[start : start + self.max_batch]
                    outputs.append(np.asarray(self.encoder(Tensor(chunk)).data))
        finally:
            self.encoder.train(enc_training)
        return (
            np.concatenate(outputs, axis=0)
            if outputs
            else np.zeros((0, getattr(self.encoder, "feature_dim", 1)))
        )
