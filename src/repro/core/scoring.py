"""Contrast scoring — paper Eq. 2-3.

For each candidate image ``x`` the scorer builds the deterministic weak
view ``x+`` (horizontal flip), embeds both through the encoder ``f`` and
projection head ``g``, l2-normalizes, and returns

    S(x) = 1 - z^T z+          with z = g(f(x)) / ||g(f(x))||

so ``S`` lies in [0, 2].  High score = the two views embed differently =
the encoder has not learned an invariant representation of ``x`` yet =
``x`` is valuable training data (and, by the paper's §III-C analysis,
produces a large NT-Xent gradient).

Design principle (paper §III-B): the scoring view must be
*deterministic*.  Randomized strong augmentation would make the score
reflect augmentation luck rather than encoder capability.  Accordingly
the scorer also runs the model in eval mode (batch-norm running
statistics), so a sample's score does not depend on which other samples
happen to share its scoring batch.

Performance
-----------
Scoring is the framework's hot path (the paper's Table I overhead
column measures exactly this), so :meth:`ContrastScorer.score` is fully
batched: ``x`` and ``x+`` are stacked into one scoring pass (chunked at
``max_batch`` rows to bound peak memory) and the similarity is a single
vectorized reduction — no per-sample Python loops.
:meth:`ContrastScorer.score_many` extends the same trick across
several batches (the replacement policy uses it to score surviving
buffer entries and incoming stream data in one fused pass), and
:meth:`ContrastScorer.score_loop` keeps the one-image-at-a-time
reference implementation as an executable spec for regression tests and
the perf baseline (``benchmarks/bench_perf_suite.py``).

The forward passes run on the active array backend
(:mod:`repro.nn.backend`): the ``fused`` backend collapses each
conv→BN→ReLU chain into one GEMM with in-place epilogues and keeps the
whole scoring forward in float32 (its ``scoring_dtype``), while the
``numpy`` reference scores at the historical float64.  Scores are
always returned as float64 vectors — the buffer contract — with values
matching across backends to float32 tolerance.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.data.augment import horizontal_flip
from repro.nn.backend.base import get_backend
from repro.nn.layers import Module
from repro.nn.tensor import Tensor, no_grad

__all__ = ["ContrastScorer", "content_hash", "score_batches"]


def content_hash(images: np.ndarray) -> List[str]:
    """Stable per-image content digests for an NCHW batch.

    The digest covers dtype, per-image shape, and raw bytes, so two
    images hash equal exactly when their array contents are identical —
    the cache key contract of the serve layer (:mod:`repro.serve`):
    a cached score may only ever be returned for bit-identical input.
    A single CHW image is accepted as a batch of one.
    """
    if images.ndim == 3:
        images = images[None]
    if images.ndim != 4:
        raise ValueError(f"expected CHW image or NCHW batch, got shape {images.shape}")
    header = f"{images.dtype.str}|{images.shape[1:]}".encode("ascii")
    digests = []
    for i in range(images.shape[0]):
        h = hashlib.blake2b(header, digest_size=16)
        h.update(np.ascontiguousarray(images[i]).tobytes())
        digests.append(h.hexdigest())
    return digests


class ContrastScorer:
    """Compute contrast scores S(x) for batches of images.

    Parameters
    ----------
    encoder:
        The base encoder ``f(·)`` mapping NCHW images to representation
        vectors.
    projector:
        The projection head ``g(·)``; its output is l2-normalized (if the
        head does not normalize, the scorer normalizes defensively).
    view_fn:
        The deterministic weak augmentation producing ``x+``.  Defaults
        to horizontal flip, the paper's choice.  Must be deterministic —
        pass a pure function of the image batch only.
    max_batch:
        Upper bound on images pushed through the model at once (keeps
        peak memory flat when scoring large candidate pools).
    """

    def __init__(
        self,
        encoder: Module,
        projector: Module,
        view_fn: Callable[[np.ndarray], np.ndarray] = horizontal_flip,
        max_batch: int = 512,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.encoder = encoder
        self.projector = projector
        self.view_fn = view_fn
        self.max_batch = max_batch
        # Optional score cache (see with_score_cache); None = every call
        # runs the forward, the historical (and training-time) behavior.
        self.score_cache: Optional[Any] = None

    def with_score_cache(self, cache: Optional[Any]) -> "ContrastScorer":
        """Attach a score cache consulted by :meth:`score` (None detaches).

        ``cache`` needs only ``get(key) -> Optional[float]`` and
        ``put(key, score)`` (e.g. :class:`repro.serve.EmbeddingCache`);
        keys are :func:`content_hash` digests, so a hit is returned for
        bit-identical image content only.  The cache stores the exact
        float64 the forward produced, making a hit bitwise-identical to
        the miss that populated it.  The caller owns invalidation: any
        encoder/projector update makes every entry stale, so attach a
        cache only around frozen-model (inference/serving) phases —
        the serve layer invalidates on every model publish.
        """
        self.score_cache = cache
        return self

    # ------------------------------------------------------------------
    def project(self, images: np.ndarray) -> np.ndarray:
        """Normalized projections z = g(f(x))/||g(f(x))|| (no gradient).

        Computed at the active backend's ``scoring_dtype`` (float64 on
        the numpy reference, float32 end-to-end on the fused backend).
        """
        if images.ndim != 4:
            raise ValueError(f"expected NCHW batch, got shape {images.shape}")
        dtype = get_backend().scoring_dtype
        outputs = []
        enc_training = self.encoder.training
        proj_training = self.projector.training
        self.encoder.eval()
        self.projector.eval()
        try:
            with no_grad():
                for start in range(0, images.shape[0], self.max_batch):
                    chunk = images[start : start + self.max_batch]
                    z = self.projector(self.encoder(Tensor(chunk))).data
                    outputs.append(np.asarray(z, dtype=dtype))
        finally:
            self.encoder.train(enc_training)
            self.projector.train(proj_training)
        z = np.concatenate(outputs, axis=0) if outputs else np.zeros((0, 1), dtype=dtype)
        norms = np.linalg.norm(z, axis=1, keepdims=True)
        return z / np.maximum(norms, 1e-12).astype(dtype, copy=False)

    def score(self, images: np.ndarray) -> np.ndarray:
        """Contrast scores S(x) in [0, 2] for every image in the batch.

        Vectorized: ``x`` and ``x+`` are stacked into one batch (legal
        because eval-mode batch norm makes every row independent of its
        batch-mates) and the similarity ``z^T z+`` is one einsum over
        the projection matrix, so the cost is a batched GEMM pipeline
        instead of per-sample or per-view Python loops.  The stacked
        batch still chunks at ``max_batch`` rows inside
        :meth:`project`, so pools beyond ``max_batch / 2`` images run
        several forwards (bounded peak memory), just never per-sample.
        """
        n = images.shape[0]
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        if self.score_cache is not None:
            return self._score_cached(images)
        return self._score_forward(images)

    def _score_forward(self, images: np.ndarray) -> np.ndarray:
        """The uncached scoring forward (the body of :meth:`score`)."""
        n = images.shape[0]
        stacked = np.concatenate([images, self.view_fn(images)], axis=0)
        z = self.project(stacked)
        scores = 1.0 - get_backend().einsum("nd,nd->n", z[:n], z[n:])
        # Scores are float64 vectors regardless of the backend's scoring
        # dtype (the buffer stores float64); the cast is N scalars.
        return np.clip(scores, 0.0, 2.0).astype(np.float64, copy=False)

    def _score_cached(self, images: np.ndarray) -> np.ndarray:
        """Score through ``score_cache``: forward only the unseen content.

        Duplicate content inside the batch is forwarded once; every hit
        returns the exact float64 stored at the populating miss, so the
        cached path is bitwise-consistent per content digest.
        """
        cache = self.score_cache
        keys = content_hash(images)
        scores = np.empty(images.shape[0], dtype=np.float64)
        miss_rows: List[int] = []
        miss_keys: List[str] = []
        first_row: dict = {}
        for i, key in enumerate(keys):
            cached = cache.get(key)
            if cached is not None:
                scores[i] = cached
            elif key in first_row:
                first_row[key].append(i)
            else:
                first_row[key] = [i]
                miss_rows.append(i)
                miss_keys.append(key)
        if miss_rows:
            fresh = self._score_forward(images[miss_rows])
            for key, value in zip(miss_keys, fresh):
                value = float(value)
                cache.put(key, value)
                for row in first_row[key]:
                    scores[row] = value
        return scores

    def score_many(self, batches: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Score several NCHW batches in one fused forward pass.

        All batches must share image shape; empty batches are allowed
        and produce empty score arrays.  Returns one score array per
        input batch, in order.  Because scoring runs in eval mode each
        sample's score is unaffected by the fusion — this is purely a
        throughput optimization (bigger GEMMs, fewer Python loops;
        ``max_batch`` chunking still applies to the fused pool).
        """
        sizes = [b.shape[0] for b in batches]
        nonempty = [b for b in batches if b.shape[0]]
        if not nonempty:
            return [np.zeros(0, dtype=np.float64) for _ in batches]
        pool = nonempty[0] if len(nonempty) == 1 else np.concatenate(nonempty, axis=0)
        scores = self.score(pool)
        out: List[np.ndarray] = []
        start = 0
        for size in sizes:
            out.append(scores[start : start + size])
            start += size
        return out

    def score_loop(self, images: np.ndarray) -> np.ndarray:
        """Reference scorer: one image (and one view) at a time.

        The executable spec of :meth:`score` — kept for regression tests
        and as the perf-suite baseline.  Numerically it matches the
        batched path to float tolerance (BLAS may reorder reductions
        across batch shapes), never use it on a hot path.
        """
        if images.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        scores = np.empty(images.shape[0], dtype=np.float64)
        for i in range(images.shape[0]):
            x = images[i : i + 1]
            z = self.project(x)
            z_flip = self.project(self.view_fn(x))
            scores[i] = 1.0 - float((z * z_flip).sum())
        return np.clip(scores, 0.0, 2.0)

    def features(self, images: np.ndarray) -> np.ndarray:
        """Encoder representations h = f(x) (no gradient, eval mode).

        Used by feature-space baselines (K-Center) and the stage-2
        classifier.
        """
        if images.ndim != 4:
            raise ValueError(f"expected NCHW batch, got shape {images.shape}")
        outputs = []
        enc_training = self.encoder.training
        self.encoder.eval()
        try:
            with no_grad():
                for start in range(0, images.shape[0], self.max_batch):
                    chunk = images[start : start + self.max_batch]
                    outputs.append(np.asarray(self.encoder(Tensor(chunk)).data))
        finally:
            self.encoder.train(enc_training)
        return (
            np.concatenate(outputs, axis=0)
            if outputs
            else np.zeros((0, getattr(self.encoder, "feature_dim", 1)))
        )


def score_batches(scorer, batches: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Score several batches, fusing them into one forward when possible.

    Policies call this instead of :meth:`ContrastScorer.score_many`
    directly so duck-typed scorers (plugins, test stubs) that only
    implement ``score`` keep working.  When every non-empty batch shares
    its image shape those scorers still get the single concatenated
    forward (one ``score`` call over the pooled batch, split back per
    input); only shape-mismatched batches fall back to one ``score``
    call each.
    """
    many = getattr(scorer, "score_many", None)
    if many is not None:
        return many(batches)
    sizes = [b.shape[0] for b in batches]
    nonempty = [b for b in batches if b.shape[0]]
    if not nonempty:
        return [np.zeros(0, dtype=np.float64) for _ in batches]
    if len({b.shape[1:] for b in nonempty}) == 1:
        pool = nonempty[0] if len(nonempty) == 1 else np.concatenate(nonempty, axis=0)
        scores = np.asarray(scorer.score(pool))
        out: List[np.ndarray] = []
        start = 0
        for size in sizes:
            out.append(scores[start : start + size])
            start += size
        return out
    return [
        scorer.score(b) if b.shape[0] else np.zeros(0, dtype=np.float64)
        for b in batches
    ]
