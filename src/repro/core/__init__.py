"""The paper's primary contribution: contrast scoring, the data buffer,
the replacement policy, lazy scoring, the stage-1 learning framework,
and the §III-C gradient analysis.
"""

from repro.core.buffer import DataBuffer
from repro.core.framework import OnDeviceContrastiveLearner, StepStats
from repro.core.gradient_analysis import (
    ScoreGradientRelation,
    contrast_scores_from_projections,
    ntxent_grad_wrt_anchor,
    pair_probabilities,
    per_anchor_gradient_norms,
    score_gradient_relation,
)
from repro.core.lazy import LazyScoringSchedule
from repro.core.replacement import ContrastScoringPolicy
from repro.core.scoring import ContrastScorer

__all__ = [
    "ContrastScorer",
    "DataBuffer",
    "LazyScoringSchedule",
    "ContrastScoringPolicy",
    "OnDeviceContrastiveLearner",
    "StepStats",
    "ScoreGradientRelation",
    "contrast_scores_from_projections",
    "ntxent_grad_wrt_anchor",
    "pair_probabilities",
    "per_anchor_gradient_norms",
    "score_gradient_relation",
]
