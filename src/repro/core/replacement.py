"""Contrast-scoring data replacement — paper Eq. 4, plus lazy scoring.

At iteration ``t`` the next buffer ``B_{t+1}`` is the top-N contrast
scorers of the pooled candidates ``B_t ∪ I_t``.  With lazy scoring
enabled (Eq. 7-8), buffered entries are only re-scored when their age is
a multiple of the interval; otherwise the stored score is reused.

An optional exponential-moving-average smoothing of scores implements
the "momentum score" interpretation the paper offers for lazy scoring's
accuracy gain (Table I discussion): the effective score of a surviving
entry blends its history rather than using the instantaneous value.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.buffer import DataBuffer
from repro.core.lazy import LazyScoringSchedule
from repro.core.scoring import ContrastScorer, score_batches
from repro.registry import register_policy
from repro.selection.base import ReplacementPolicy, SelectionResult

__all__ = ["ContrastScoringPolicy"]


class ContrastScoringPolicy(ReplacementPolicy):
    """The paper's data replacement policy (Eq. 4).

    Parameters
    ----------
    scorer:
        :class:`~repro.core.scoring.ContrastScorer` wrapping the live
        encoder/projector.
    capacity:
        Buffer capacity N (entries kept per iteration).
    lazy:
        Optional :class:`~repro.core.lazy.LazyScoringSchedule`; when
        None, every candidate is scored every iteration (the paper's
        default experimental setting, lazy scoring disabled).
    score_momentum:
        EMA coefficient in [0, 1) applied to *re-scored buffer entries*:
        ``s_new = momentum * s_old + (1 - momentum) * s_fresh``.
        0 (default) reproduces the paper exactly.
    """

    name = "contrast-scoring"

    def __init__(
        self,
        scorer: ContrastScorer,
        capacity: int,
        lazy: Optional[LazyScoringSchedule] = None,
        score_momentum: float = 0.0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 <= score_momentum < 1.0:
            raise ValueError(
                f"score_momentum must be in [0, 1), got {score_momentum}"
            )
        self.scorer = scorer
        self.capacity = int(capacity)
        self.lazy = lazy if lazy is not None else LazyScoringSchedule(None)
        self.score_momentum = score_momentum

    # ------------------------------------------------------------------
    def select(
        self, buffer: DataBuffer, incoming: np.ndarray, iteration: int
    ) -> SelectionResult:
        self._validate(buffer, incoming)
        n_buf = buffer.size
        n_new = incoming.shape[0]

        # --- which buffered entries need fresh scores (lazily)? --------
        if n_buf:
            needs = self.lazy.needs_scoring(buffer.ages)
            # entries that have never been scored must be scored now
            needs = needs | np.isnan(buffer.scores)
            buf_scores = buffer.scores.copy()
        else:
            needs = np.zeros(0, dtype=bool)
            buf_scores = np.zeros(0, dtype=np.float64)

        # --- one fused scoring pass: stale buffer entries + incoming ---
        # (incoming stream data is always scored; eval-mode scoring makes
        # each sample's score independent of its batch-mates, so fusing
        # the two groups into one scoring pass only improves throughput)
        to_rescore = buffer.images[needs] if needs.any() else incoming[:0]
        fresh, new_scores = score_batches(self.scorer, [to_rescore, incoming])
        if needs.any():
            if self.score_momentum > 0.0:
                old = buffer.scores[needs]
                blend = np.where(
                    np.isnan(old),
                    fresh,
                    self.score_momentum * old + (1 - self.score_momentum) * fresh,
                )
                buf_scores[needs] = blend
            else:
                buf_scores[needs] = fresh
        num_rescored = int(needs.sum())
        if n_buf:
            self.lazy.record(num_rescored, n_buf)

        pool_scores = np.concatenate([buf_scores, new_scores])
        keep = self._top_n(pool_scores, self.capacity)
        return SelectionResult(
            keep_indices=keep,
            pool_scores=pool_scores,
            num_scored=num_rescored + n_new,
            info={
                "mean_pool_score": float(pool_scores.mean()) if pool_scores.size else 0.0,
                "rescored_buffer": float(num_rescored),
            },
        )

    @staticmethod
    def _top_n(scores: np.ndarray, n: int) -> np.ndarray:
        """Indices of the ``n`` highest scores (Eq. 4's topN).

        Stable under ties: lower pool index wins, so surviving buffer
        entries are preferred over equal-scoring newcomers (keeps churn,
        and therefore scoring work, minimal).
        """
        n = min(n, scores.size)
        order = np.argsort(-scores, kind="stable")
        return np.sort(order[:n])

    def reset(self) -> None:
        self.lazy.reset_stats()


@register_policy("contrast-scoring", label="Contrast Scoring", aliases=("cs", "contrast"))
def _contrast_scoring_factory(
    scorer: ContrastScorer,
    capacity: int,
    lazy_interval: Optional[int] = None,
    score_momentum: float = 0.0,
) -> ContrastScoringPolicy:
    """Registry factory: the standard keyword set -> the paper's policy."""
    return ContrastScoringPolicy(
        scorer,
        capacity,
        lazy=LazyScoringSchedule(lazy_interval),
        score_momentum=score_momentum,
    )
