"""Lazy scoring — paper Eq. 7-8.

Re-scoring every buffered sample at every iteration costs one extra
model forward per candidate.  Lazy scoring exploits that (a) most
buffer entries survive replacement and (b) scores drift slowly because
the encoder updates slowly: a buffered entry is re-scored only when its
age is a multiple of the interval ``T``; otherwise its stored score is
reused.  Incoming stream data has no stored score and is always scored.

The schedule also accounts re-scoring statistics, which back the paper's
Table I "Re-scoring Pct." column.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["LazyScoringSchedule"]


class LazyScoringSchedule:
    """Decide which buffer entries need fresh scores this iteration.

    Parameters
    ----------
    interval:
        The paper's ``T``.  ``None`` (or 1) disables laziness: every
        entry is re-scored every iteration.
    """

    def __init__(self, interval: Optional[int] = None) -> None:
        if interval is not None and interval < 1:
            raise ValueError(f"interval must be >= 1 or None, got {interval}")
        self.interval = interval
        self._rescored_total = 0
        self._candidates_total = 0
        self._steps = 0

    @property
    def enabled(self) -> bool:
        """Whether lazy reuse is active (interval set and > 1)."""
        return self.interval is not None and self.interval > 1

    # ------------------------------------------------------------------
    def needs_scoring(self, ages: np.ndarray) -> np.ndarray:
        """Boolean mask over buffer entries: True = re-score now (Eq. 7).

        ``ages`` are iterations-since-insertion.  Age 0 means the entry
        was scored as incoming data when it entered the buffer on the
        previous iteration, so its stored score is one iteration fresh
        and is reused; re-scoring happens at ages T, 2T, ...  (The
        policy separately re-scores any entry whose stored score is NaN,
        e.g. after external buffer manipulation.)
        """
        ages = np.asarray(ages)
        if not self.enabled:
            return np.ones(ages.shape, dtype=bool)
        return (ages > 0) & ((ages % self.interval) == 0)

    def record(self, num_rescored: int, num_candidates: int) -> None:
        """Account one replacement iteration's buffer re-scoring."""
        if num_candidates < 0 or num_rescored < 0 or num_rescored > num_candidates:
            raise ValueError(
                f"invalid accounting: rescored={num_rescored}, "
                f"candidates={num_candidates}"
            )
        self._rescored_total += num_rescored
        self._candidates_total += num_candidates
        self._steps += 1

    @property
    def rescoring_fraction(self) -> float:
        """Average fraction of buffer entries re-scored per iteration.

        This is the quantity the paper's Table I reports as
        "Re-scoring Pct." (×100).
        """
        if self._candidates_total == 0:
            return 0.0
        return self._rescored_total / self._candidates_total

    @property
    def steps(self) -> int:
        return self._steps

    def reset_stats(self) -> None:
        self._rescored_total = 0
        self._candidates_total = 0
        self._steps = 0

    def state_dict(self) -> dict:
        """Accounting state (JSON-serializable) for checkpointing."""
        return {
            "interval": self.interval,
            "rescored_total": self._rescored_total,
            "candidates_total": self._candidates_total,
            "steps": self._steps,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore accounting written by :meth:`state_dict`."""
        if state.get("interval") != self.interval:
            raise ValueError(
                f"checkpoint interval {state.get('interval')} != "
                f"schedule interval {self.interval}"
            )
        self._rescored_total = int(state["rescored_total"])
        self._candidates_total = int(state["candidates_total"])
        self._steps = int(state["steps"])

    def __repr__(self) -> str:
        label = self.interval if self.enabled else "disabled"
        return f"LazyScoringSchedule(interval={label})"
