"""Stage-1 on-device learning framework (paper Fig. 1, left).

:class:`OnDeviceContrastiveLearner` consumes an unlabeled stream segment
by segment.  Each iteration:

1. the replacement policy selects the next buffer from
   ``[buffer ; incoming segment]`` (labels are never exposed to it);
2. the buffer contents become one training mini-batch: two strong
   SimCLR views are generated and the encoder+projector take one
   NT-Xent gradient step (Eq. 1);
3. bookkeeping: per-entry ages, seen-input counters, timing (scoring
   vs. training time backs the paper's Table I "relative batch time").

Stage 2 (classifier on few labels) lives in
:mod:`repro.train.classifier`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.core.buffer import DataBuffer
from repro.data.augment import SimCLRAugment
from repro.data.stream import StreamSegment
from repro.nn.layers import Module
from repro.nn.losses import NTXentLoss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.selection.base import ReplacementPolicy

__all__ = ["StepStats", "OnDeviceContrastiveLearner"]


@dataclass
class StepStats:
    """Diagnostics of one replacement + training iteration."""

    iteration: int
    seen_inputs: int
    loss: float
    buffer_size: int
    num_scored: int
    select_seconds: float
    train_seconds: float
    info: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.select_seconds + self.train_seconds


class OnDeviceContrastiveLearner:
    """Self-supervised learner over an unlabeled, non-iid input stream.

    Parameters
    ----------
    encoder, projector:
        The model ``f`` and projection head ``g`` updated by training.
    policy:
        Replacement policy maintaining the buffer (the paper's
        :class:`~repro.core.replacement.ContrastScoringPolicy` or a
        baseline from :mod:`repro.selection`).
    buffer_size:
        Buffer capacity N = training mini-batch size.
    rng:
        Drives augmentation randomness.
    temperature, lr, weight_decay:
        NT-Xent temperature and Adam hyper-parameters (paper defaults:
        τ=0.5, lr=1e-4, wd=1e-4 for CIFAR-scale data).
    augment:
        The strong two-view augmentation (SimCLR family).
    """

    def __init__(
        self,
        encoder: Module,
        projector: Module,
        policy: ReplacementPolicy,
        buffer_size: int,
        rng: np.random.Generator,
        temperature: float = 0.5,
        lr: float = 1e-3,
        weight_decay: float = 1e-4,
        augment: Optional[SimCLRAugment] = None,
    ) -> None:
        if buffer_size < 2:
            raise ValueError(
                f"buffer_size must be >= 2 (NT-Xent needs negatives), got {buffer_size}"
            )
        self.encoder = encoder
        self.projector = projector
        self.policy = policy
        self.buffer = DataBuffer(buffer_size)
        self.rng = rng
        self.loss_fn = NTXentLoss(temperature)
        self.optimizer = Adam(
            [*encoder.parameters(), *projector.parameters()],
            lr=lr,
            weight_decay=weight_decay,
        )
        self.augment = augment if augment is not None else SimCLRAugment()
        self.iteration = 0
        self.seen_inputs = 0
        self._buffer_labels = np.zeros(0, dtype=np.int64)
        self.history: List[StepStats] = []

    # ------------------------------------------------------------------
    def process_segment(self, segment: StreamSegment) -> StepStats:
        """One framework iteration: replace buffer data, then train once."""
        incoming = segment.images
        if incoming.ndim != 4 or incoming.shape[0] == 0:
            raise ValueError(
                f"segment must be a non-empty NCHW batch, got shape "
                f"{segment.images.shape}"
            )

        # --- 1. data replacement (labels hidden from the policy) -------
        t0 = time.perf_counter()
        result = self.policy.select(self.buffer, incoming, self.iteration)
        select_seconds = time.perf_counter() - t0

        pool_images = (
            np.concatenate([self.buffer.images, incoming], axis=0)
            if self.buffer.size
            else incoming
        )
        pool_labels = np.concatenate([self._buffer_labels, segment.labels])
        self.buffer.replace(
            pool_images, result.keep_indices, result.pool_scores, self.iteration
        )
        self._buffer_labels = pool_labels[result.keep_indices]

        # --- 2. one contrastive update on the buffer mini-batch --------
        t1 = time.perf_counter()
        loss_value = self._train_step()
        train_seconds = time.perf_counter() - t1

        # --- 3. bookkeeping --------------------------------------------
        self.seen_inputs += incoming.shape[0]
        stats = StepStats(
            iteration=self.iteration,
            seen_inputs=self.seen_inputs,
            loss=loss_value,
            buffer_size=self.buffer.size,
            num_scored=result.num_scored,
            select_seconds=select_seconds,
            train_seconds=train_seconds,
            info=dict(result.info),
        )
        self.history.append(stats)
        self.iteration += 1
        return stats

    def _train_step(self) -> float:
        """One NT-Xent gradient step on the current buffer contents."""
        if self.buffer.size < 2:
            return float("nan")  # not enough data to form negatives yet
        images = self.buffer.as_batch()
        v1, v2 = self.augment(images, self.rng)
        self.encoder.train()
        self.projector.train()
        z1 = self.projector(self.encoder(Tensor(v1)))
        z2 = self.projector(self.encoder(Tensor(v2)))
        loss = self.loss_fn(z1, z2)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return float(loss.item())

    # ------------------------------------------------------------------
    def fit(
        self,
        segments: Iterable[StreamSegment],
        callback: Optional[Callable[["OnDeviceContrastiveLearner", StepStats], None]] = None,
    ) -> List[StepStats]:
        """Consume a stream of segments; returns the per-step stats.

        ``callback(learner, stats)`` runs after every iteration — used
        by experiment harnesses to record learning curves.
        """
        collected: List[StepStats] = []
        for segment in segments:
            stats = self.process_segment(segment)
            collected.append(stats)
            if callback is not None:
                callback(self, stats)
        return collected

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    #: Per-step scalars serialized into the ``history`` array, in column
    #: order.  ``StepStats.info`` is diagnostic-only and not persisted.
    _HISTORY_FIELDS = (
        "iteration",
        "seen_inputs",
        "loss",
        "buffer_size",
        "num_scored",
        "select_seconds",
        "train_seconds",
    )

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Everything needed to resume training bitwise-identically.

        Covers model weights, optimizer moments, buffer contents and
        bookkeeping, hidden label tracking, iteration counters, and the
        scalar step history.  Randomness (augment RNG) is *not* included
        — the generators are injected and belong to the caller's
        :class:`~repro.utils.rng.RngRegistry`, which snapshots them via
        ``RngRegistry.state()``.
        """
        out: Dict[str, np.ndarray] = {}
        for key, value in self.encoder.state_dict().items():
            out[f"encoder/{key}"] = value
        for key, value in self.projector.state_dict().items():
            out[f"projector/{key}"] = value
        for key, value in self.optimizer.state_dict().items():
            out[f"optimizer/{key}"] = value
        for key, value in self.buffer.state_dict().items():
            out[f"buffer/{key}"] = value
        out["buffer_labels"] = self._buffer_labels.copy()
        out["iteration"] = np.array(self.iteration, dtype=np.int64)
        out["seen_inputs"] = np.array(self.seen_inputs, dtype=np.int64)
        out["history"] = np.array(
            [
                [getattr(s, name) for name in self._HISTORY_FIELDS]
                for s in self.history
            ],
            dtype=np.float64,
        ).reshape(len(self.history), len(self._HISTORY_FIELDS))
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore the exact state written by :meth:`state_dict`."""

        def sub(prefix: str) -> Dict[str, np.ndarray]:
            return {
                key[len(prefix) :]: value
                for key, value in state.items()
                if key.startswith(prefix)
            }

        self.encoder.load_state_dict(sub("encoder/"))
        self.projector.load_state_dict(sub("projector/"))
        self.optimizer.load_state_dict(sub("optimizer/"))
        self.buffer.load_state_dict(sub("buffer/"))
        self._buffer_labels = np.asarray(state["buffer_labels"], dtype=np.int64).copy()
        self.iteration = int(state["iteration"])
        self.seen_inputs = int(state["seen_inputs"])
        self.history = [
            StepStats(
                iteration=int(row[0]),
                seen_inputs=int(row[1]),
                loss=float(row[2]),
                buffer_size=int(row[3]),
                num_scored=int(row[4]),
                select_seconds=float(row[5]),
                train_seconds=float(row[6]),
            )
            for row in np.asarray(state["history"], dtype=np.float64)
        ]

    # ------------------------------------------------------------------
    # Evaluation-only introspection (never available to the policy).
    # ------------------------------------------------------------------
    def buffer_labels(self) -> np.ndarray:
        """Ground-truth labels of current buffer entries (diagnostics)."""
        return self._buffer_labels.copy()

    def buffer_class_histogram(self, num_classes: int) -> np.ndarray:
        """Class counts of the buffer contents (diversity diagnostics)."""
        return np.bincount(self._buffer_labels, minlength=num_classes)

    def mean_select_seconds(self) -> float:
        """Average policy-selection time per iteration so far."""
        if not self.history:
            return 0.0
        return float(np.mean([s.select_seconds for s in self.history]))

    def mean_train_seconds(self) -> float:
        """Average model-update time per iteration so far."""
        if not self.history:
            return 0.0
        return float(np.mean([s.train_seconds for s in self.history]))
