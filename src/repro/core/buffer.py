"""The small on-device data buffer B.

Holds the current mini-batch worth of images plus the per-entry
bookkeeping the paper's replacement and lazy-scoring machinery needs:

* ``ages``   — iterations since the entry was placed in B (Eq. 7),
* ``scores`` — the entry's most recent contrast score (Eq. 8 reuse),
* ``uids``   — stable identifiers so the framework can track evaluation
  metadata (e.g. class labels) *outside* the buffer.  By design the
  buffer stores no labels: selection policies receive the buffer object
  and structurally cannot peek at labels the paper says they must not
  use.
* ``inserted_at`` — insertion iteration (drives the FIFO baseline).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["DataBuffer"]


class DataBuffer:
    """Fixed-capacity image buffer with replacement bookkeeping."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.images: Optional[np.ndarray] = None  # (n, C, H, W)
        self.uids = np.zeros(0, dtype=np.int64)
        self.ages = np.zeros(0, dtype=np.int64)
        self.scores = np.zeros(0, dtype=np.float64)
        self.inserted_at = np.zeros(0, dtype=np.int64)
        self._next_uid = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of entries currently stored."""
        return 0 if self.images is None else self.images.shape[0]

    @property
    def is_full(self) -> bool:
        return self.size >= self.capacity

    def __len__(self) -> int:
        return self.size

    def as_batch(self) -> np.ndarray:
        """The buffered images as one training mini-batch (copy)."""
        if self.images is None or self.size == 0:
            raise ValueError("buffer is empty")
        return self.images.copy()

    # ------------------------------------------------------------------
    def replace(
        self,
        pool_images: np.ndarray,
        keep_indices: np.ndarray,
        pool_scores: Optional[np.ndarray],
        iteration: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Install the selected pool entries as the new buffer contents.

        The *pool* is ``[current buffer entries ; incoming segment]`` in
        that order; ``keep_indices`` index into it.  Indices below the
        current size refer to surviving buffer entries (which keep their
        uid and age+1); the rest are fresh insertions (new uid, age 0).

        Parameters
        ----------
        pool_images: the pooled candidate images (buffer then incoming).
        keep_indices: indices of entries to keep (length <= capacity).
        pool_scores: optional scores aligned with the pool; stored for
            score-reusing policies (NaN when a policy does not score).
        iteration: current framework iteration (stamps insertions).

        Returns
        -------
        ``(kept_old_uids, new_uids)``: uids of surviving entries and the
        uids assigned to fresh insertions (in ``keep_indices`` order the
        caller can align with pool positions).
        """
        keep_indices = np.asarray(keep_indices)
        if keep_indices.ndim != 1:
            raise ValueError(f"keep_indices must be 1-D, got {keep_indices.shape}")
        if keep_indices.size > self.capacity:
            raise ValueError(
                f"selected {keep_indices.size} entries for a capacity-"
                f"{self.capacity} buffer"
            )
        if keep_indices.size != np.unique(keep_indices).size:
            raise ValueError("keep_indices contains duplicates")
        n_pool = pool_images.shape[0]
        if keep_indices.size and (keep_indices.min() < 0 or keep_indices.max() >= n_pool):
            raise ValueError(
                f"keep_indices out of range for pool of {n_pool} entries"
            )

        old_size = self.size
        from_buffer = keep_indices < old_size

        new_uids_list = []
        uids = np.empty(keep_indices.size, dtype=np.int64)
        ages = np.empty(keep_indices.size, dtype=np.int64)
        inserted = np.empty(keep_indices.size, dtype=np.int64)
        for out_pos, pool_idx in enumerate(keep_indices):
            if pool_idx < old_size:
                uids[out_pos] = self.uids[pool_idx]
                ages[out_pos] = self.ages[pool_idx] + 1
                inserted[out_pos] = self.inserted_at[pool_idx]
            else:
                uid = self._next_uid
                self._next_uid += 1
                uids[out_pos] = uid
                ages[out_pos] = 0
                inserted[out_pos] = iteration
                new_uids_list.append(uid)

        if pool_scores is not None:
            pool_scores = np.asarray(pool_scores, dtype=np.float64)
            if pool_scores.shape[0] != n_pool:
                raise ValueError(
                    f"pool_scores length {pool_scores.shape[0]} != pool {n_pool}"
                )
            scores = pool_scores[keep_indices]
        else:
            scores = np.full(keep_indices.size, np.nan)

        kept_old_uids = uids[from_buffer].copy()
        self.images = pool_images[keep_indices].copy()
        self.uids = uids
        self.ages = ages
        self.scores = scores
        self.inserted_at = inserted
        return kept_old_uids, np.asarray(new_uids_list, dtype=np.int64)

    def set_scores(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Overwrite the stored scores of the entries at ``indices``."""
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.size):
            raise ValueError("indices out of range")
        self.scores[indices] = np.asarray(values, dtype=np.float64)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full buffer state as name -> array (checkpointing)."""
        images = (
            np.zeros((0, 0, 0, 0), dtype=np.float32)
            if self.images is None
            else self.images.copy()
        )
        return {
            "images": images,
            "uids": self.uids.copy(),
            "ages": self.ages.copy(),
            "scores": self.scores.copy(),
            "inserted_at": self.inserted_at.copy(),
            "next_uid": np.array(self._next_uid, dtype=np.int64),
            "capacity": np.array(self.capacity, dtype=np.int64),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the exact state written by :meth:`state_dict`."""
        capacity = int(state["capacity"])
        if capacity != self.capacity:
            raise ValueError(
                f"checkpoint capacity {capacity} != buffer capacity {self.capacity}"
            )
        images = np.asarray(state["images"])
        self.images = None if images.size == 0 else images.astype(np.float32)
        self.uids = np.asarray(state["uids"], dtype=np.int64).copy()
        self.ages = np.asarray(state["ages"], dtype=np.int64).copy()
        self.scores = np.asarray(state["scores"], dtype=np.float64).copy()
        self.inserted_at = np.asarray(state["inserted_at"], dtype=np.int64).copy()
        self._next_uid = int(state["next_uid"])

    def __repr__(self) -> str:
        return f"DataBuffer(size={self.size}/{self.capacity})"
