"""Gradient analysis of contrast scoring — paper §III-C, Eq. 5-6.

The paper justifies the replacement policy by showing that a sample's
contrast score predicts the magnitude of its NT-Xent gradient: low-score
samples (views already aligned) yield near-zero gradients, high-score
samples yield large gradients.

This module provides the closed-form gradient of the per-anchor loss

    ℓ_{i,i+} = -log( exp(z_i·z_{i+}/τ) / Σ_{j≠i} exp(z_i·z_j/τ) )

with respect to ``z_i``:

    ∂ℓ/∂z_i = -(1/τ) [ (1 - p_{i+}) z_{i+}  -  Σ_{i-} p_{i-} z_{i-} ]

(Note: the paper's Eq. 5 prints ``z_i`` where the derivation gives
``z_{i+}`` in the first term; we implement the correct closed form and
verify it against automatic differentiation in the test-suite.)

It also computes the score-vs-gradient-magnitude relation used by the
ablation benchmark to regenerate the paper's Case 1 / Case 2 argument
quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = [
    "pair_probabilities",
    "ntxent_grad_wrt_anchor",
    "per_anchor_gradient_norms",
    "contrast_scores_from_projections",
    "ScoreGradientRelation",
    "score_gradient_relation",
    "autograd_grad_wrt_anchor",
]


def _validate_views(z1: np.ndarray, z2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    z1 = np.asarray(z1, dtype=np.float64)
    z2 = np.asarray(z2, dtype=np.float64)
    if z1.shape != z2.shape or z1.ndim != 2:
        raise ValueError(f"need matching (N, d) views, got {z1.shape}, {z2.shape}")
    if z1.shape[0] < 2:
        raise ValueError("need at least 2 pairs to form negatives")
    return z1, z2


def pair_probabilities(z: np.ndarray, anchor: int, tau: float) -> np.ndarray:
    """Softmax matching distribution p_z of Eq. 6 for one anchor.

    ``z`` is the full batch of 2N projected vectors; entry ``anchor`` is
    excluded from its own distribution (set to 0).
    """
    z = np.asarray(z, dtype=np.float64)
    sims = z @ z[anchor] / tau
    sims[anchor] = -np.inf
    sims -= sims.max()
    exp = np.exp(sims)
    return exp / exp.sum()


def ntxent_grad_wrt_anchor(z: np.ndarray, anchor: int, positive: int, tau: float) -> np.ndarray:
    """Closed-form ∂ℓ_{i,i+}/∂z_i (Eq. 5, corrected first term)."""
    if anchor == positive:
        raise ValueError("anchor and positive must differ")
    p = pair_probabilities(z, anchor, tau)
    # -(1/τ)[(1 - p_+) z_+ - Σ_neg p_j z_j]
    grad = -(1.0 - p[positive]) * z[positive]
    weighted_negatives = (p[:, None] * z).sum(axis=0) - p[positive] * z[positive]
    grad = grad + weighted_negatives
    return grad / tau


def autograd_grad_wrt_anchor(
    z: np.ndarray, anchor: int, positive: int, tau: float
) -> np.ndarray:
    """Same gradient via the autograd engine (reference for verification)."""
    zt = Tensor(np.asarray(z, dtype=np.float64), requires_grad=True)
    sims = (zt @ zt.T) / tau
    mask = np.zeros((z.shape[0], z.shape[0]))
    np.fill_diagonal(mask, -1e9)
    log_probs = F.log_softmax(sims + Tensor(mask), axis=1)
    loss = -log_probs[np.array([anchor]), np.array([positive])].sum()
    loss.backward()
    # Keep only the direct dependence on the anchor row (the closed form
    # differentiates w.r.t. z_i holding other rows' losses fixed).
    return zt.grad[anchor]


def per_anchor_gradient_norms(z1: np.ndarray, z2: np.ndarray, tau: float) -> np.ndarray:
    """||∂ℓ_{i,i+}/∂z_i|| for every first-view anchor i."""
    z1, z2 = _validate_views(z1, z2)
    n = z1.shape[0]
    z = np.concatenate([z1, z2], axis=0)
    norms = np.empty(n)
    for i in range(n):
        grad = ntxent_grad_wrt_anchor(z, i, i + n, tau)
        norms[i] = np.linalg.norm(grad)
    return norms


def contrast_scores_from_projections(z1: np.ndarray, z2: np.ndarray) -> np.ndarray:
    """S = 1 - z_i·z_{i+} given already-normalized projections (Eq. 2)."""
    z1, z2 = _validate_views(z1, z2)
    return 1.0 - (z1 * z2).sum(axis=1)


@dataclass
class ScoreGradientRelation:
    """Paired per-sample contrast scores and gradient norms."""

    scores: np.ndarray
    grad_norms: np.ndarray

    def spearman_correlation(self) -> float:
        """Rank correlation between score and gradient magnitude.

        The paper's Case 1/2 argument predicts a strongly positive value.
        """
        def ranks(x: np.ndarray) -> np.ndarray:
            order = np.argsort(x)
            r = np.empty_like(order, dtype=np.float64)
            r[order] = np.arange(x.size)
            return r

        rs, rg = ranks(self.scores), ranks(self.grad_norms)
        rs -= rs.mean()
        rg -= rg.mean()
        denom = np.sqrt((rs**2).sum() * (rg**2).sum())
        if denom == 0:
            return 0.0
        return float((rs * rg).sum() / denom)


def score_gradient_relation(
    z1: np.ndarray, z2: np.ndarray, tau: float
) -> ScoreGradientRelation:
    """Per-sample (score, gradient-norm) pairs for a batch of projections."""
    z1, z2 = _validate_views(z1, z2)
    return ScoreGradientRelation(
        scores=contrast_scores_from_projections(z1, z2),
        grad_norms=per_anchor_gradient_norms(z1, z2, tau),
    )
