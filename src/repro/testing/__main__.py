"""``python -m repro.testing`` — the scenario fuzz campaign CLI.

Delegates to :func:`repro.testing.scenario_fuzzer._main`; running the
package (rather than the submodule) avoids importing the fuzzer twice
under two module names.
"""

import sys

from repro.testing.scenario_fuzzer import _main

if __name__ == "__main__":
    sys.exit(_main())
