"""Generative correctness harnesses for the framework.

The first resident is the scenario fuzzer
(:mod:`repro.testing.scenario_fuzzer`): seeded random wrapper
compositions driven through stream invariants and short policy
Sessions, with a committed regression corpus replayed by tier-1
(``tests/property/scenario_corpus.json``).
"""

from repro.testing.scenario_fuzzer import (
    CliffReport,
    FuzzFinding,
    FuzzReport,
    check_stream_invariants,
    fuzz_campaign,
    generate_composition,
    replay_case,
    tiny_fuzz_config,
)

__all__ = [
    "CliffReport",
    "FuzzFinding",
    "FuzzReport",
    "check_stream_invariants",
    "fuzz_campaign",
    "generate_composition",
    "replay_case",
    "tiny_fuzz_config",
]
