"""Generative scenario fuzzer: property-test every policy against the
composition space.

The scenario algebra (:mod:`repro.data.scenarios`) makes the space of
streams combinatorial — any stack of wrappers over any base, each node
with options.  The six hand-built scenarios only ever exercised six
points of that space; the interesting failures live in the
cross-products nobody wrote a test for.  This module generates seeded
random compositions and checks the invariants that must hold for *any*
of them:

``build``
    ``create_scenario`` constructs the composition without crashing and
    the result satisfies the :class:`~repro.data.scenarios.StreamSource`
    protocol.
``canonical-round-trip``
    ``canonical_scenario`` is idempotent and its output survives a JSON
    round trip bitwise (the checkpoint / sweep wire-payload property).
``eager-validation``
    ``segments()`` rejects bad arguments at the call, not on first
    iteration, no matter how deep the composition.
``label-contract``
    Every wrapper layer honors its declared
    :attr:`~repro.data.scenarios.StreamWrapper.label_contract`:
    ``bitwise`` layers pass labels through untouched; ``subset`` layers
    emit only genuine (image, label) pairs produced by their base.
``resume-bitwise``
    A mid-stream ``state_dict`` (JSON round-tripped) plus the driving
    RNG state reproduces the continuation bitwise.
``session``
    Every registered policy runs a short :class:`~repro.session.Session`
    through the composition without crashing, returning a sane kNN
    accuracy.
``sweep-fingerprint``
    ``run_sweep`` over the composition is bitwise identical serial vs
    parallel (``result_fingerprint``).

A separate *cliff detector* compares each (composition, policy) final
kNN accuracy against the same policy's flat-``temporal`` baseline:
falling below ``cliff_floor`` of the baseline is *reported* (a
:class:`CliffReport`), not failed — catastrophic forgetting under an
adversarial stream is a finding about the policy, not a bug in the
framework.

Falsified compositions must land in the committed regression corpus
(``tests/property/scenario_corpus.json``), which tier-1 replays as
named cases forever (:func:`replay_case`).  The module doubles as the
nightly CI entry point::

    python -m repro.testing --count 200 --seed 0 --out fuzz_findings.json

exits non-zero when any invariant is falsified and writes the failing
cases in corpus-entry format, ready to be appended to the corpus.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.composition import ScenarioExpr, format_scenario, parse_scenario
from repro.data.scenarios import (
    StreamWrapper,
    canonical_scenario,
    create_scenario,
)
from repro.data.stream import StreamSegment
from repro.data.synthetic import SyntheticConfig, SyntheticImageDataset
from repro.experiments.config import StreamExperimentConfig
from repro.experiments.parallel import SweepSpec, result_fingerprint, run_sweep
from repro.registry import policy_names
from repro.session import Session

__all__ = [
    "BASE_SPACE",
    "WRAPPER_SPACE",
    "CliffReport",
    "FuzzFinding",
    "FuzzReport",
    "check_label_contracts",
    "check_stream_invariants",
    "fuzz_campaign",
    "generate_composition",
    "replay_case",
    "tiny_fuzz_config",
]

#: Option spaces the generator draws from.  Values are chosen to stay
#: *valid* — the fuzzer hunts for crashes on well-formed compositions;
#: malformed inputs are covered by the deterministic error-path tests.
BASE_SPACE: Dict[str, Dict[str, list]] = {
    "temporal": {},
    "drift": {"num_phases": [2, 3]},
    "cyclic-drift": {"num_environments": [2, 3], "cycles": [2]},
    "bursty": {"burst_prob": [0.0, 0.25, 0.75], "burst_stc": [8, 16]},
    "imbalanced": {"imbalance": [0.05, 0.3, 1.0]},
}

WRAPPER_SPACE: Dict[str, Dict[str, list]] = {
    "corrupted": {
        "noise_std": [0.0, 0.1, 0.3],
        "corruption_levels": [2, 3],
        "blur": [True, False],
        "corruption_phase_length": [4, 8, 16],
    },
    "label-shift": {
        "num_phases": [2, 3],
        "shift": [0.05, 0.2, 1.0],
        "shift_phase_length": [4, 8, 16],
    },
    "adversarial": {
        "lookahead": [2, 3, 4],
        "adversarial_phase_length": [4, 8],
    },
    # bursty composes as a re-timing wrapper when given a child
    "bursty": {"burst_prob": [0.0, 0.25, 0.75], "burst_stc": [8, 16]},
}

#: Fraction of a policy's flat-temporal baseline below which a
#: composition's final kNN accuracy is reported as a forgetting cliff.
DEFAULT_CLIFF_FLOOR = 0.5


@dataclass(frozen=True)
class FuzzFinding:
    """One falsified invariant: the composition, what broke, and how."""

    scenario: str
    seed: int
    invariant: str
    detail: str
    policy: Optional[str] = None

    def corpus_entry(self) -> dict:
        """The JSON shape the regression corpus commits."""
        entry = {
            "name": f"fuzz-seed{self.seed}-{self.invariant}",
            "scenario": self.scenario,
            "seed": self.seed,
            "reason": f"{self.invariant}: {self.detail}",
        }
        if self.policy is not None:
            entry["policies"] = [self.policy]
        return entry


@dataclass(frozen=True)
class CliffReport:
    """A catastrophic-forgetting cliff: reported, never failed."""

    scenario: str
    policy: str
    seed: int
    accuracy: float
    baseline: float
    floor: float

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "policy": self.policy,
            "seed": self.seed,
            "accuracy": self.accuracy,
            "baseline": self.baseline,
            "floor": self.floor,
        }


@dataclass
class FuzzReport:
    """Everything one campaign did: compositions, findings, cliffs."""

    seed: int
    compositions: List[str] = field(default_factory=list)
    findings: List[FuzzFinding] = field(default_factory=list)
    cliffs: List[CliffReport] = field(default_factory=list)
    sessions_run: int = 0
    sweeps_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when no invariant was falsified (cliffs don't fail)."""
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "compositions": list(self.compositions),
            "sessions_run": self.sessions_run,
            "sweeps_checked": self.sweeps_checked,
            "findings": [f.corpus_entry() for f in self.findings],
            "cliffs": [c.to_dict() for c in self.cliffs],
        }


def tiny_fuzz_config(seed: int = 0) -> StreamExperimentConfig:
    """The short-Session operating point the fuzzer drives policies at.

    Small enough that a (composition × policy) cell costs well under a
    second; big enough that the stream crosses several wrapper phases.
    """
    return StreamExperimentConfig(
        dataset="cifar10",
        image_size=8,
        stc=4,
        total_samples=64,
        buffer_size=8,
        encoder_widths=(8, 16),
        encoder_blocks=1,
        projection_dim=8,
        probe_train_per_class=2,
        probe_test_per_class=2,
        probe_epochs=2,
        seed=seed,
    )


# ----------------------------------------------------------------------
# Composition generation.
# ----------------------------------------------------------------------
def _draw_options(rng: np.random.Generator, space: Dict[str, list]) -> tuple:
    options = []
    for key, values in space.items():
        if rng.random() < 0.5:
            options.append((key, values[int(rng.integers(0, len(values)))]))
    return tuple(options)


def generate_composition(
    rng: np.random.Generator, max_depth: int = 3
) -> str:
    """Draw one random canonical composition string.

    The base scenario, wrapper stack depth (0..``max_depth``), wrapper
    order, and every node's options are all drawn from ``rng``, so a
    campaign seed reproduces its exact composition sequence.
    """
    bases = sorted(BASE_SPACE)
    wrappers = sorted(WRAPPER_SPACE)
    base = bases[int(rng.integers(0, len(bases)))]
    expr = ScenarioExpr(base, options=_draw_options(rng, BASE_SPACE[base]))
    depth = int(rng.integers(0, max_depth + 1))
    for _ in range(depth):
        wrapper = wrappers[int(rng.integers(0, len(wrappers)))]
        expr = ScenarioExpr(
            wrapper,
            child=expr,
            options=_draw_options(rng, WRAPPER_SPACE[wrapper]),
        )
    return format_scenario(expr)


# ----------------------------------------------------------------------
# Stream-level invariants.
# ----------------------------------------------------------------------
def _fuzz_dataset(seed: int) -> SyntheticImageDataset:
    return SyntheticImageDataset(
        SyntheticConfig(
            name="fuzz", num_classes=10, image_size=8, content_seed=seed
        )
    )


def _build(scenario: str, seed: int, total_samples: int = 64):
    dataset = _fuzz_dataset(seed)
    rng = np.random.default_rng(seed)
    return create_scenario(
        scenario, dataset=dataset, stc=4, rng=rng, total_samples=total_samples
    )


def _pair_key(image: np.ndarray, label: int) -> tuple:
    return (int(label), image.tobytes())


def check_label_contracts(
    stream, segment_size: int = 16, num_segments: int = 4
) -> List[str]:
    """Verify every wrapper layer's declared label contract.

    Each layer boundary gets a recording shim on ``base.next_segment``;
    one streaming pass then yields, for every wrapper, both its inputs
    (what its base produced) and its outputs (what the next-outer
    boundary recorded).  Returns human-readable violation strings.
    """
    layers: List[StreamWrapper] = []
    node = stream
    while isinstance(node, StreamWrapper):
        layers.append(node)
        node = node.base
    if not layers:
        return []

    records: Dict[int, List[StreamSegment]] = {i: [] for i in range(len(layers))}
    originals: List[Callable] = []
    for i, layer in enumerate(layers):
        original = layer.base.next_segment

        def shim(size, _original=original, _i=i):
            segment = _original(size)
            records[_i].append(segment)
            return segment

        originals.append(original)
        layer.base.next_segment = shim

    try:
        outputs = [stream.next_segment(segment_size) for _ in range(num_segments)]
    finally:
        for layer in layers:
            del layer.base.next_segment  # uncover the bound method

    problems: List[str] = []
    for i, layer in enumerate(layers):
        produced = outputs if i == 0 else records[i - 1]
        consumed = records[i]
        name = type(layer).__name__
        if layer.label_contract == "bitwise":
            if len(produced) != len(consumed):
                problems.append(
                    f"{name}: bitwise contract but {len(consumed)} base calls "
                    f"for {len(produced)} emitted segments"
                )
                continue
            for out, inp in zip(produced, consumed):
                if not np.array_equal(out.labels, inp.labels):
                    problems.append(
                        f"{name}: labels changed across a bitwise layer at "
                        f"start_index {out.start_index}"
                    )
                    break
        elif layer.label_contract == "subset":
            known = set()
            for inp in consumed:
                for image, label in zip(inp.images, inp.labels):
                    known.add(_pair_key(image, label))
            for out in produced:
                for image, label in zip(out.images, out.labels):
                    if _pair_key(image, label) not in known:
                        problems.append(
                            f"{name}: emitted a (image, label={int(label)}) "
                            "pair its base never produced"
                        )
                        break
                else:
                    continue
                break
        else:
            problems.append(
                f"{name}: unknown label_contract {layer.label_contract!r}"
            )
    return problems


def check_stream_invariants(scenario: str, seed: int) -> List[FuzzFinding]:
    """Run every stream-level invariant on one composition."""
    findings: List[FuzzFinding] = []

    def fail(invariant: str, detail: str) -> None:
        findings.append(
            FuzzFinding(
                scenario=scenario, seed=seed, invariant=invariant, detail=detail
            )
        )

    # canonical round trip (pure string level, no construction needed)
    try:
        canonical = canonical_scenario(scenario)
        again = canonical_scenario(canonical)
        if again != canonical:
            fail(
                "canonical-round-trip",
                f"not idempotent: {canonical!r} -> {again!r}",
            )
        wired = json.loads(json.dumps(canonical))
        if wired != canonical:
            fail("canonical-round-trip", "JSON round trip changed the string")
        if parse_scenario(canonical) != parse_scenario(scenario):
            fail("canonical-round-trip", "canonical form parses differently")
    except Exception as error:  # noqa: BLE001 - the fuzzer reports, not raises
        fail("canonical-round-trip", f"{type(error).__name__}: {error}")
        return findings

    # construction
    try:
        stream = _build(scenario, seed)
    except Exception as error:  # noqa: BLE001
        fail("build", f"{type(error).__name__}: {error}")
        return findings

    # eager segments() validation survives any nesting depth
    for bad_args, expected in (((0, 16), "segment_size"), ((4, -1), "total_samples")):
        try:
            stream.segments(*bad_args)
            fail(
                "eager-validation",
                f"segments{bad_args} did not raise at the call",
            )
        except ValueError as error:
            if expected not in str(error):
                fail(
                    "eager-validation",
                    f"segments{bad_args} raised without naming {expected}: "
                    f"{error}",
                )
        except Exception as error:  # noqa: BLE001
            fail(
                "eager-validation",
                f"segments{bad_args} raised {type(error).__name__}, expected "
                f"ValueError: {error}",
            )

    # per-layer label contracts
    try:
        for problem in check_label_contracts(_build(scenario, seed)):
            fail("label-contract", problem)
    except Exception as error:  # noqa: BLE001
        fail("label-contract", f"{type(error).__name__}: {error}")

    # bitwise mid-stream resume through a JSON-serialized state_dict
    try:
        stream = _build(scenario, seed)
        stream.next_segment(13)
        state = json.loads(json.dumps(stream.state_dict()))
        rng_state = stream.rng.bit_generator.state
        first = stream.next_segment(17)
        stream.load_state_dict(state)
        stream.rng.bit_generator.state = rng_state
        second = stream.next_segment(17)
        if not (
            np.array_equal(first.images, second.images)
            and np.array_equal(first.labels, second.labels)
            and first.start_index == second.start_index
        ):
            fail("resume-bitwise", "continuation diverged after state restore")
    except Exception as error:  # noqa: BLE001
        fail("resume-bitwise", f"{type(error).__name__}: {error}")

    return findings


# ----------------------------------------------------------------------
# Session-level checks.
# ----------------------------------------------------------------------
def _run_session(
    scenario: str, policy: str, config: StreamExperimentConfig
) -> float:
    result = (
        Session(config, policy).with_scenario(scenario).with_eval_points(1).run()
    )
    return float(result.info["final_knn_accuracy"])


def check_policies(
    scenario: str,
    seed: int,
    policies: Sequence[str],
    config: StreamExperimentConfig,
    baselines: Dict[str, float],
    cliff_floor: float = DEFAULT_CLIFF_FLOOR,
) -> Tuple[List[FuzzFinding], List[CliffReport]]:
    """Drive every policy through a short Session on the composition."""
    findings: List[FuzzFinding] = []
    cliffs: List[CliffReport] = []
    for policy in policies:
        try:
            accuracy = _run_session(scenario, policy, config)
        except Exception as error:  # noqa: BLE001
            findings.append(
                FuzzFinding(
                    scenario=scenario,
                    seed=seed,
                    invariant="session",
                    detail=f"{type(error).__name__}: {error}",
                    policy=policy,
                )
            )
            continue
        if not 0.0 <= accuracy <= 1.0:
            findings.append(
                FuzzFinding(
                    scenario=scenario,
                    seed=seed,
                    invariant="session",
                    detail=f"final kNN accuracy out of range: {accuracy}",
                    policy=policy,
                )
            )
            continue
        baseline = baselines.get(policy)
        if baseline is not None and accuracy < cliff_floor * baseline:
            cliffs.append(
                CliffReport(
                    scenario=scenario,
                    policy=policy,
                    seed=seed,
                    accuracy=accuracy,
                    baseline=baseline,
                    floor=cliff_floor,
                )
            )
    return findings, cliffs


def check_sweep_fingerprint(
    scenario: str,
    seed: int,
    policies: Sequence[str],
    config: StreamExperimentConfig,
) -> List[FuzzFinding]:
    """Serial == parallel sweep fingerprints over the composition."""
    specs = [
        SweepSpec(
            config=config.with_(scenario=scenario),
            policy=policy,
            eval_points=1,
            tag=f"fuzz/{scenario}/{policy}",
        )
        for policy in policies
    ]
    try:
        serial = run_sweep(specs, workers=1)
        parallel = run_sweep(specs, workers=2)
        for policy, left, right in zip(policies, serial, parallel):
            if result_fingerprint(left) != result_fingerprint(right):
                return [
                    FuzzFinding(
                        scenario=scenario,
                        seed=seed,
                        invariant="sweep-fingerprint",
                        detail="serial and parallel fingerprints differ",
                        policy=policy,
                    )
                ]
    except Exception as error:  # noqa: BLE001
        return [
            FuzzFinding(
                scenario=scenario,
                seed=seed,
                invariant="sweep-fingerprint",
                detail=f"{type(error).__name__}: {error}",
            )
        ]
    return []


# ----------------------------------------------------------------------
# The campaign driver and corpus replay.
# ----------------------------------------------------------------------
def fuzz_campaign(
    num_compositions: int = 200,
    seed: int = 0,
    policies: Optional[Sequence[str]] = None,
    max_depth: int = 3,
    session_stride: int = 1,
    sweep_stride: int = 0,
    cliff_floor: float = DEFAULT_CLIFF_FLOOR,
    config: Optional[StreamExperimentConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Generate ``num_compositions`` seeded compositions and check them.

    Stream-level invariants run on *every* composition.  Policy
    Sessions run on every ``session_stride``-th composition (1 = all;
    the tier-1 smoke raises the stride to stay fast), and the
    serial==parallel sweep check on every ``sweep_stride``-th (0 =
    never).  Returns a :class:`FuzzReport`; falsified cases belong in
    ``tests/property/scenario_corpus.json``.
    """
    if num_compositions < 1:
        raise ValueError(
            f"num_compositions must be >= 1, got {num_compositions}"
        )
    if session_stride < 1:
        raise ValueError(f"session_stride must be >= 1, got {session_stride}")
    policies = tuple(policy_names() if policies is None else policies)
    config = tiny_fuzz_config(seed) if config is None else config
    report = FuzzReport(seed=seed)

    baselines: Dict[str, float] = {}
    for policy in policies:
        try:
            baselines[policy] = _run_session("temporal", policy, config)
        except Exception as error:  # noqa: BLE001
            report.findings.append(
                FuzzFinding(
                    scenario="temporal",
                    seed=seed,
                    invariant="session",
                    detail=f"baseline run failed: {type(error).__name__}: "
                    f"{error}",
                    policy=policy,
                )
            )
    report.sessions_run += len(baselines)

    rng = np.random.default_rng(seed)
    for index in range(num_compositions):
        scenario = generate_composition(rng, max_depth=max_depth)
        report.compositions.append(scenario)
        case_seed = seed + index
        if progress is not None:
            progress(f"[{index + 1}/{num_compositions}] {scenario}")
        report.findings.extend(check_stream_invariants(scenario, case_seed))
        if index % session_stride == 0:
            findings, cliffs = check_policies(
                scenario,
                case_seed,
                policies,
                config,
                baselines,
                cliff_floor=cliff_floor,
            )
            report.findings.extend(findings)
            report.cliffs.extend(cliffs)
            report.sessions_run += len(policies)
        if sweep_stride and index % sweep_stride == 0:
            report.findings.extend(
                check_sweep_fingerprint(
                    scenario, case_seed, policies[:2], config
                )
            )
            report.sweeps_checked += 1
    return report


def replay_case(
    case: dict, policies: Optional[Sequence[str]] = None
) -> List[FuzzFinding]:
    """Re-check one committed corpus entry (the tier-1 replay harness).

    ``case`` is an entry of ``tests/property/scenario_corpus.json``:
    ``{"name", "scenario", "seed", "policies"?, "reason"?}``.  Runs the
    full stream-invariant battery plus a Session per listed policy and
    returns any findings (empty = the regression stays fixed).
    """
    scenario = case["scenario"]
    seed = int(case.get("seed", 0))
    findings = check_stream_invariants(scenario, seed)
    roster = case.get("policies") if policies is None else list(policies)
    if roster:
        config = tiny_fuzz_config(seed)
        session_findings, _ = check_policies(
            scenario, seed, roster, config, baselines={}
        )
        findings.extend(session_findings)
    return findings


def _main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.testing",
        description="Fuzz the scenario composition space (nightly CI job).",
    )
    parser.add_argument("--count", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-depth", type=int, default=3)
    parser.add_argument(
        "--session-stride",
        type=int,
        default=1,
        help="drive policy Sessions on every Nth composition (1 = all)",
    )
    parser.add_argument(
        "--sweep-stride",
        type=int,
        default=0,
        help="serial==parallel sweep check on every Nth composition "
        "(0 = never)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the full report (findings in corpus-entry format) here",
    )
    args = parser.parse_args(argv)

    report = fuzz_campaign(
        num_compositions=args.count,
        seed=args.seed,
        max_depth=args.max_depth,
        session_stride=args.session_stride,
        sweep_stride=args.sweep_stride,
        progress=print,
    )
    print(
        f"checked {len(report.compositions)} compositions, "
        f"{report.sessions_run} sessions, {report.sweeps_checked} sweep "
        f"checks: {len(report.findings)} falsified, "
        f"{len(report.cliffs)} forgetting cliffs"
    )
    for finding in report.findings:
        print(f"FALSIFIED {finding.scenario}: {finding.invariant}: "
              f"{finding.detail}")
    for cliff in report.cliffs:
        print(
            f"cliff: {cliff.policy} on {cliff.scenario}: "
            f"{cliff.accuracy:.3f} < {cliff.floor} * {cliff.baseline:.3f}"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - CI entry point
    raise SystemExit(_main())
