"""Random replacement baseline (reservoir-sampling variant).

The paper's strongest baseline: the next buffer is a uniform random
subset of ``B_t ∪ I_t``.  Over a long stream this behaves like reservoir
sampling [Vitter 1985] — every seen sample has equal probability of
residing in the buffer — which is why it approximates iid mini-batches
and performs surprisingly well in continual learning.
"""

from __future__ import annotations

import numpy as np

from repro.core.buffer import DataBuffer
from repro.registry import register_policy
from repro.selection.base import ReplacementPolicy, SelectionResult

__all__ = ["RandomReplacePolicy"]


@register_policy("random-replace", label="Random Replace", aliases=("random", "reservoir"))
class RandomReplacePolicy(ReplacementPolicy):
    """Uniformly sample the next buffer from the candidate pool."""

    name = "random-replace"

    def __init__(self, capacity: int, rng: np.random.Generator) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.rng = rng

    def select(
        self, buffer: DataBuffer, incoming: np.ndarray, iteration: int
    ) -> SelectionResult:
        pool_size = self._validate(buffer, incoming)
        keep_count = min(self.capacity, pool_size)
        keep = self.rng.choice(pool_size, size=keep_count, replace=False)
        return SelectionResult(keep_indices=np.sort(keep), num_scored=0)
