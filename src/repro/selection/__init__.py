"""Data-selection policies: the shared interface and the paper's four
label-free baselines (the paper's own policy lives in
:mod:`repro.core.replacement`).
"""

from repro.selection.base import ReplacementPolicy, SelectionResult
from repro.selection.fifo import FIFOPolicy
from repro.selection.kcenter import KCenterPolicy, greedy_k_center
from repro.selection.random_replace import RandomReplacePolicy
from repro.selection.selective_bp import SelectiveBPPolicy

__all__ = [
    "ReplacementPolicy",
    "SelectionResult",
    "RandomReplacePolicy",
    "FIFOPolicy",
    "SelectiveBPPolicy",
    "KCenterPolicy",
    "greedy_k_center",
]
