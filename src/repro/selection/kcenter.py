"""K-Center baseline (Sener & Savarese core-set active learning).

Selects the N candidates that best *cover* the pool in encoder feature
space, via the classic greedy 2-approximation for the k-center problem
(farthest-first traversal): start from the point closest to the pool
centroid, then repeatedly add the point farthest from the chosen
centers.  The paper uses this as the representative-selection SOTA
baseline; like Selective-BP, its objective is tuned to supervised
training and does not track what benefits the contrastive loss.
"""

from __future__ import annotations

import numpy as np

from repro.core.buffer import DataBuffer
from repro.core.scoring import ContrastScorer
from repro.registry import register_policy
from repro.selection.base import ReplacementPolicy, SelectionResult

__all__ = ["KCenterPolicy", "greedy_k_center"]


def greedy_k_center(features: np.ndarray, k: int) -> np.ndarray:
    """Greedy farthest-first traversal: ``k`` center indices.

    Deterministic: the first center is the point nearest the centroid
    (robust, seed-free choice); each subsequent center maximizes the
    distance to its nearest already-chosen center.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"features must be (N, d), got {features.shape}")
    n = features.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, n)

    centroid = features.mean(axis=0)
    first = int(np.linalg.norm(features - centroid, axis=1).argmin())
    centers = [first]
    min_dist = np.linalg.norm(features - features[first], axis=1)
    # Chosen centers are marked -inf so they can never be re-picked: a
    # pool with exact duplicates (bursty streams repeat frames) drives
    # every remaining min_dist to 0 once the distinct points are
    # exhausted, and a plain argmax would then return index 0 again.
    min_dist[first] = -np.inf
    for _ in range(k - 1):
        nxt = int(min_dist.argmax())
        centers.append(nxt)
        dist = np.linalg.norm(features - features[nxt], axis=1)
        min_dist = np.minimum(min_dist, dist)
        min_dist[nxt] = -np.inf
    return np.array(sorted(centers), dtype=np.int64)


@register_policy("k-center", label="K-Center", aliases=("kcenter", "core-set"))
class KCenterPolicy(ReplacementPolicy):
    """Keep a k-center cover of the candidate pool in feature space."""

    name = "k-center"

    def __init__(self, scorer: ContrastScorer, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.scorer = scorer
        self.capacity = int(capacity)

    def select(
        self, buffer: DataBuffer, incoming: np.ndarray, iteration: int
    ) -> SelectionResult:
        pool_size = self._validate(buffer, incoming)
        pool = (
            np.concatenate([buffer.images, incoming], axis=0)
            if buffer.size
            else incoming
        )
        features = self.scorer.features(pool)
        keep = greedy_k_center(features, min(self.capacity, pool_size))
        return SelectionResult(keep_indices=keep, num_scored=pool_size)
