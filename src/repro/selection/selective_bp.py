"""Selective-Backprop baseline (Jiang et al., "biggest losers").

The original method keeps the training examples with the largest
*supervised* loss.  The paper applies it as a buffer-replacement
baseline in the unlabeled streaming setting, so the natural adaptation
(documented in DESIGN.md) ranks the candidate pool by *per-sample
contrastive loss*: each candidate is paired with its deterministic flip
view, the NT-Xent loss of every pair is computed within the pooled
candidate batch, and the top-N losers are kept.

Note the contrast with the paper's contrast score: the per-sample loss
additionally depends on the *negatives* — the other pool members — so a
sample's rank varies with the company it keeps, one of the reasons the
paper argues loss-based selection underperforms for contrastive
learning.
"""

from __future__ import annotations

import numpy as np

from repro.core.buffer import DataBuffer
from repro.core.scoring import ContrastScorer
from repro.nn.losses import NTXentLoss
from repro.registry import register_policy
from repro.selection.base import ReplacementPolicy, SelectionResult

__all__ = ["SelectiveBPPolicy"]


@register_policy("selective-bp", label="Selective-BP", aliases=("selective-backprop",))
class SelectiveBPPolicy(ReplacementPolicy):
    """Keep the candidates with the largest per-sample contrastive loss."""

    name = "selective-bp"

    def __init__(
        self, scorer: ContrastScorer, capacity: int, temperature: float = 0.5
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.scorer = scorer
        self.capacity = int(capacity)
        self.loss = NTXentLoss(temperature)

    def select(
        self, buffer: DataBuffer, incoming: np.ndarray, iteration: int
    ) -> SelectionResult:
        pool_size = self._validate(buffer, incoming)
        pool = (
            np.concatenate([buffer.images, incoming], axis=0)
            if buffer.size
            else incoming
        )
        if pool_size < 2:
            return SelectionResult(
                keep_indices=np.arange(pool_size), num_scored=pool_size
            )

        from repro.data.augment import horizontal_flip
        from repro.nn.tensor import Tensor

        z = self.scorer.project(pool)
        z_flip = self.scorer.project(horizontal_flip(pool))
        losses = self.loss.per_sample(Tensor(z), Tensor(z_flip))

        keep_count = min(self.capacity, pool_size)
        order = np.argsort(-losses, kind="stable")
        keep = np.sort(order[:keep_count])
        return SelectionResult(
            keep_indices=keep,
            pool_scores=losses,
            num_scored=pool_size,
            info={"mean_pool_loss": float(losses.mean())},
        )
