"""Replacement-policy interface shared by the paper's method and baselines.

A policy sees the current :class:`~repro.core.buffer.DataBuffer` and the
incoming unlabeled segment, and returns which entries of the pooled
candidates ``[buffer ; incoming]`` form the next buffer.  Policies never
see labels — the buffer stores none, and the framework applies the
returned indices to its own label bookkeeping.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.buffer import DataBuffer

__all__ = ["SelectionResult", "ReplacementPolicy"]


@dataclass
class SelectionResult:
    """Outcome of one replacement decision.

    Attributes
    ----------
    keep_indices:
        Indices into the pool ``[buffer entries ; incoming segment]``
        that form the next buffer (at most the buffer capacity).
    pool_scores:
        Per-pool-entry scores if the policy computed them (aligned with
        the pool), else None.  Stored into the buffer so lazy scoring
        can reuse them.
    num_scored:
        How many pool entries were pushed through the model this step
        (drives the re-scoring statistics of Table I).
    info:
        Free-form diagnostics.
    """

    keep_indices: np.ndarray
    pool_scores: Optional[np.ndarray] = None
    num_scored: int = 0
    info: Dict[str, float] = field(default_factory=dict)


class ReplacementPolicy(ABC):
    """Strategy deciding which data stays in the on-device buffer."""

    #: Human-readable name used in benchmark tables.
    name: str = "base"

    @abstractmethod
    def select(
        self, buffer: DataBuffer, incoming: np.ndarray, iteration: int
    ) -> SelectionResult:
        """Choose the next buffer contents from ``[buffer ; incoming]``.

        Parameters
        ----------
        buffer: current buffer (may be empty or not yet full).
        incoming: ``(M, C, H, W)`` new unlabeled stream segment.
        iteration: current replacement iteration (0-based).
        """

    def reset(self) -> None:
        """Clear any internal state (default: stateless)."""

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(buffer: DataBuffer, incoming: np.ndarray) -> int:
        """Common input validation; returns the pool size."""
        if incoming.ndim != 4:
            raise ValueError(
                f"incoming must be an NCHW batch, got shape {incoming.shape}"
            )
        if buffer.size and buffer.images.shape[1:] != incoming.shape[1:]:
            raise ValueError(
                f"incoming image shape {incoming.shape[1:]} does not match "
                f"buffer {buffer.images.shape[1:]}"
            )
        return buffer.size + incoming.shape[0]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
