"""FIFO replacement baseline.

Replaces the oldest buffered data with the newest stream data — the
second label-free continual-learning baseline the paper compares
against.  When the incoming segment is as large as the buffer (the
paper's setting) the buffer simply becomes the latest segment.
"""

from __future__ import annotations

import numpy as np

from repro.core.buffer import DataBuffer
from repro.registry import register_policy
from repro.selection.base import ReplacementPolicy, SelectionResult

__all__ = ["FIFOPolicy"]


@register_policy("fifo", label="FIFO Replace", aliases=("first-in-first-out",))
class FIFOPolicy(ReplacementPolicy):
    """Keep the most recently inserted entries of the candidate pool."""

    name = "fifo"

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)

    def select(
        self, buffer: DataBuffer, incoming: np.ndarray, iteration: int
    ) -> SelectionResult:
        pool_size = self._validate(buffer, incoming)
        n_buf = buffer.size
        n_new = incoming.shape[0]
        keep_count = min(self.capacity, pool_size)

        if n_new >= keep_count:
            # The newest data alone fills the buffer: take its tail.
            keep = np.arange(pool_size - keep_count, pool_size)
        else:
            # All new data plus the most recently inserted buffer entries.
            slots_from_buffer = keep_count - n_new
            order = np.argsort(buffer.inserted_at, kind="stable")
            newest_buffer = order[n_buf - slots_from_buffer :]
            keep = np.concatenate([newest_buffer, np.arange(n_buf, pool_size)])
        return SelectionResult(keep_indices=np.sort(keep), num_scored=0)
