"""Client samplers: which K of N devices train in a given round.

Population-scale federated rounds never involve every device — the
coordinator draws a participant subset each round.  Samplers are
registered in :data:`repro.registry.CLIENT_SAMPLERS` (same alias /
"did you mean" semantics as every other registry) and selected by
``FleetConfig.sampler``; ``FleetConfig.participants`` sets K.

Contracts every sampler must honour:

* ``sample`` returns ``k`` distinct device indices in **ascending
  order** — the coordinator's payload build, sticky worker routing,
  and fingerprints all rely on a canonical order, and sorting makes
  ``k == n`` degenerate to *every* device, which is what keeps a
  sampled fleet with K == N bitwise identical to a full fleet.
* All randomness comes from the ``rng`` argument (the coordinator owns
  it and checkpoints its state), and any internal schedule state lives
  in ``state_dict``/``load_state_dict`` — so a run resumed mid-schedule
  continues the exact participant sequence.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.registry import CLIENT_SAMPLERS, register_client_sampler

__all__ = [
    "ClientSampler",
    "UniformSampler",
    "WeightedByProfileSampler",
    "RoundRobinSampler",
    "create_client_sampler",
]


class ClientSampler:
    """Base class: a per-round participant selection strategy."""

    name = "base"

    def sample(
        self,
        round_index: int,
        num_devices: int,
        k: int,
        rng: np.random.Generator,
        weights: Optional[Sequence[float]] = None,
    ) -> List[int]:
        """``k`` distinct indices from ``range(num_devices)``, ascending."""
        raise NotImplementedError

    # Stateful samplers (e.g. round-robin) persist their schedule here;
    # the coordinator folds this into its own state_dict.
    def state_dict(self) -> Dict[str, Any]:
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        del state

    @staticmethod
    def _validate(num_devices: int, k: int) -> None:
        if not 1 <= k <= num_devices:
            raise ValueError(
                f"cannot sample {k} participants from {num_devices} devices"
            )


@register_client_sampler("uniform", aliases=("random",))
class UniformSampler(ClientSampler):
    """Uniform K-of-N without replacement — the FedAvg default."""

    name = "uniform"

    def sample(
        self,
        round_index: int,
        num_devices: int,
        k: int,
        rng: np.random.Generator,
        weights: Optional[Sequence[float]] = None,
    ) -> List[int]:
        self._validate(num_devices, k)
        picked = rng.choice(num_devices, size=k, replace=False)
        return sorted(int(i) for i in picked)


@register_client_sampler("weighted", aliases=("weighted-by-profile",))
class WeightedByProfileSampler(ClientSampler):
    """K-of-N without replacement, biased toward capable hardware.

    The coordinator passes per-device weights derived from the device's
    cost-model profile (``1 / compute_pj_per_flop``, so a jetson-class
    device is drawn ~5x as often as an mcu-class one).  Falls back to
    uniform when no weights are supplied.
    """

    name = "weighted"

    def sample(
        self,
        round_index: int,
        num_devices: int,
        k: int,
        rng: np.random.Generator,
        weights: Optional[Sequence[float]] = None,
    ) -> List[int]:
        self._validate(num_devices, k)
        if weights is None:
            probabilities = None
        else:
            raw = np.asarray(list(weights), dtype=np.float64)
            if raw.shape != (num_devices,):
                raise ValueError(
                    f"weights must have length {num_devices}, got shape {raw.shape}"
                )
            if not np.all(raw > 0):
                raise ValueError("sampler weights must all be > 0")
            probabilities = raw / raw.sum()
        picked = rng.choice(num_devices, size=k, replace=False, p=probabilities)
        return sorted(int(i) for i in picked)


@register_client_sampler("round-robin", aliases=("rr",))
class RoundRobinSampler(ClientSampler):
    """Deterministic rotation: each round takes the next K in order.

    Draws nothing from ``rng``; the cursor is the schedule state, so a
    resumed run picks up exactly where the original left off.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def sample(
        self,
        round_index: int,
        num_devices: int,
        k: int,
        rng: np.random.Generator,
        weights: Optional[Sequence[float]] = None,
    ) -> List[int]:
        self._validate(num_devices, k)
        start = self._cursor % num_devices
        picked = [(start + offset) % num_devices for offset in range(k)]
        self._cursor = (start + k) % num_devices
        return sorted(picked)

    def state_dict(self) -> Dict[str, Any]:
        return {"cursor": self._cursor}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._cursor = int(state.get("cursor", 0))


def create_client_sampler(name: str) -> ClientSampler:
    """Instantiate a registered sampler (aliases + "did you mean")."""
    return CLIENT_SAMPLERS.create(name)
