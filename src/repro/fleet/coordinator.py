"""The fleet engine: N device Sessions coordinated by a server.

:class:`FleetCoordinator` simulates a device fleet learning from
private streams with periodic model synchronization — the setting the
source paper targets (many edge devices adapting on-device) scaled out
to the ROADMAP's production framing.  One *round* is:

1. **local training** — every device advances its own
   :class:`~repro.session.Session` by ``~1/rounds`` of its stream.
   Devices are independent jobs fanned out through
   :func:`repro.experiments.parallel.run_jobs` (the same engine under
   ``run_sweep``), so ``workers > 1`` runs them in parallel processes
   with results bitwise-identical to the serial order;
2. **aggregation** — the registered aggregator
   (:mod:`repro.fleet.aggregators`) folds the per-device model arrays
   into a new global model (or declines, for ``local-only``);
3. **broadcast** — the global model overwrites every device's encoder
   and projector arrays (optimizer moments and buffers stay local);
4. **evaluation** — the global model takes a training-free kNN probe
   on fixed pools, giving the per-round accuracy column.

Device state crosses rounds (and process boundaries) as the
``Session.state_dict()`` payload, with the array dict encoded by a
pluggable, bitwise-lossless ``WIRE_FORMATS`` codec
(:mod:`repro.experiments.wire`: ``json-b64`` reference, zero-copy
``shm``, content-hash ``delta``) — so a fleet of one ``fedavg`` device
is bitwise-identical to a plain single-device Session run under every
wire format, and coordinator checkpoints
(:meth:`FleetCoordinator.save_checkpoint` / ``resume``) continue a
fleet mid-run with bitwise-identical results.  Parallel rounds reuse a
persistent :mod:`~repro.experiments.pool` worker pool with sticky
device→worker routing, which is what lets the ``delta`` format rebuild
Sessions from just the broadcast-changed arrays each round; per-round
serialize/transport/compute/merge timings land in
:attr:`FleetCoordinator.timings` (never in fingerprints).

Population-scale rounds change only the cast, not the contract: when
``FleetConfig.participants`` is set, a registered ``CLIENT_SAMPLERS``
rule picks K of N devices from the coordinator's checkpointed RNG;
a seeded :class:`~repro.fleet.faults.FaultPlan` then drops, delays
(past ``round_deadline_s``, buffering the report with a staleness
stamp for ``fedavg-async``), or crashes sampled devices — all
deterministically replayable and resumable.  With no sampler and no
fault plan the round loop is the plain synchronous path above, and a
fleet of one stays bitwise-identical to a single Session.

Every argument is validated eagerly at construction with per-field
error messages (nothing fails inside the first round).
"""

from __future__ import annotations

import itertools
import json
import math
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.cost_model import DEVICE_PROFILES, iteration_compute_cost
from repro.data.scenarios import canonical_scenario
from repro.experiments.config import StreamExperimentConfig
from repro.experiments.parallel import JobTimings, result_fingerprint, run_jobs
from repro.experiments import pool as pool_module
from repro.experiments.pool import (
    POOL_UNAVAILABLE_ERRORS,
    WorkerPool,
    get_worker_pool,
)
from repro.experiments.wire import (
    WireFormat,
    WireProtocolError,
    create_wire_format,
    decode_state_payload,
    default_wire_format,
    get_wire_format,
    resolve_wire_format,
)
from repro.fleet.aggregators import (
    Aggregator,
    DeviceRoundReport,
    create_aggregator,
)
from repro.fleet.faults import FaultPlan
from repro.fleet.sampling import ClientSampler, create_client_sampler
from repro.fleet.spec import DeviceSpec, FleetConfig
from repro.nn.backend import use_backend
from repro.obs import (
    absorb_worker_telemetry,
    collect_worker_telemetry,
    metrics,
    metrics_enabled,
    use_metrics,
)
from repro.obs.trace import set_clock, trace_span
from repro.registry import (
    AGGREGATORS,
    BACKENDS,
    CLIENT_SAMPLERS,
    POLICIES,
    UnknownComponentError,
)
from repro.session import (
    Session,
    StreamRunResult,
    build_components,
    config_from_dict,
    config_to_dict,
)
from repro.train.knn import KnnProbe

__all__ = [
    "DevicePlan",
    "DeviceRoundStats",
    "FleetRoundStats",
    "FleetRunResult",
    "FleetCoordinator",
    "MODEL_PREFIXES",
]

#: Learner state keys that constitute "the model" for aggregation and
#: broadcast: encoder and projector arrays (parameters + BN statistics).
#: Optimizer moments, buffer contents, and counters stay device-local.
MODEL_PREFIXES = ("encoder/", "projector/")

#: Bumped whenever the fleet checkpoint layout changes incompatibly.
FLEET_CHECKPOINT_VERSION = 1

#: Lazy-interval ladder searched when a device declares a compute
#: budget (None = eager scoring; see DeviceSpec.compute_budget_mj).
_BUDGET_LAZY_LADDER: Tuple[Optional[int], ...] = (None, 2, 4, 8, 16, 32, 64)

#: Per-process coordinator counter: makes delta channels unique across
#: coordinator instances that share the persistent worker pool.
_FLEET_COUNTER = itertools.count()


def _none_if_nan(value: float) -> Optional[float]:
    """NaN -> None so round stats stay strict-JSON."""
    return None if isinstance(value, float) and np.isnan(value) else value


def _nan_if_none(value: Optional[float]) -> float:
    return float("nan") if value is None else float(value)


# ----------------------------------------------------------------------
# Array wire format plumbing.  The codecs themselves live in the
# WIRE_FORMATS registry (repro.experiments.wire); these two names are
# kept as the stable aliases of the reference codec.
# ----------------------------------------------------------------------
def encode_arrays(arrays: Dict[str, np.ndarray]) -> Dict[str, Dict[str, Any]]:
    """JSON-compatible, bitwise-lossless encoding of an array dict
    (the ``json-b64`` reference wire format's array table)."""
    return get_wire_format("json-b64").encode(arrays)["arrays"]


def decode_arrays(payload: Dict[str, Dict[str, Any]]) -> Dict[str, np.ndarray]:
    """Inverse of :func:`encode_arrays` (exact round trip)."""
    return get_wire_format("json-b64").decode({"arrays": payload})


def _device_round_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one device for one round (module-level so every
    multiprocessing start method can import it).

    A ``None`` state starts the device fresh from its config; otherwise
    the session continues from the ``Session.state_dict()`` payload.
    ``payload["wire"]`` names the WIRE_FORMATS codec the state's array
    dict was encoded with (None = the raw in-process representation);
    ``payload["response_wire"]`` names the codec for the reply.  Every
    codec is lossless, so all paths are bitwise-identical (the
    serial/parallel equivalence tests compare exactly this).  The
    worker decodes through the per-process singleton codec, so
    channel-stateful formats (``delta``) keep their caches across the
    rounds of a sticky worker's devices.

    ``payload["global_overlay"]``, if present, carries the current
    global model as an :func:`encode_arrays` table — a device sampled
    into the fleet for the first time after a broadcast starts from
    the global model rather than from scratch.  ``inject_crash`` is
    the chaos harness's crash fault: honored only inside a pool worker
    process (never in the parent), it kills the process exactly the
    way a real device crash would, exercising respawn + serial-re-run
    recovery.
    """
    if payload.get("inject_crash") and pool_module.IN_POOL_WORKER:
        # A FaultPlan crash: die the hard way (no cleanup, no
        # exception) so the parent sees a genuine WorkerCrashedError.
        os._exit(86)
    state = payload["state"]
    wire_name = payload.get("wire")
    response_wire = payload.get("response_wire")
    channel = payload.get("channel")
    if state is None:
        session = (
            Session(config_from_dict(payload["config"]), policy=payload["policy"])
            .with_eval_points(payload["eval_points"])
            .with_label_fraction(payload["label_fraction"])
            .with_lazy_interval(payload["lazy_interval"])
            .with_score_momentum(payload["score_momentum"])
        )
        overlay = payload.get("global_overlay")
        if overlay is not None:
            # First participation after a broadcast: adopt the global
            # model arrays (optimizer moments and buffers start fresh).
            # run(stop_after=0) materializes the learner without
            # consuming any stream or RNG state.
            session.run(stop_after=0)
            fresh = session.state_dict()
            fresh["learner"].update(decode_arrays(overlay))
            session = Session.from_state_dict(fresh)
    else:
        if wire_name is not None:
            state = {
                "meta": state["meta"],
                "learner": get_wire_format(wire_name).decode(
                    state["learner"], channel=channel
                ),
            }
        session = Session.from_state_dict(state)
    result = session.run(stop_after=payload["stop_after"])
    out_state = session.state_dict()
    if wire_name is not None and channel is not None:
        # This process now holds the device's post-round arrays — the
        # base the sender diffs the next broadcast against.
        get_wire_format(wire_name).note_received(channel, out_state["learner"])
    if response_wire is not None:
        out = {
            "state": {
                "meta": out_state["meta"],
                "learner": get_wire_format(response_wire).encode(
                    out_state["learner"]
                ),
            },
            "result": result.to_dict(),
            "encoded": True,
        }
    else:
        out = {"state": out_state, "result": result.to_dict(), "encoded": False}
    # Telemetry this worker process recorded during the round piggybacks
    # on the reply (absent on the in-parent serial/fallback path, where
    # metrics already land in the parent registry directly); the
    # coordinator pops it before the result dict is parsed, so it can
    # never reach a fingerprint.
    telemetry = collect_worker_telemetry()
    if telemetry is not None:
        out["_telemetry"] = telemetry
    return out


# ----------------------------------------------------------------------
# Round bookkeeping.
# ----------------------------------------------------------------------
@dataclass
class DeviceRoundStats:
    """One device's contribution to one round of the fleet table."""

    device: str
    knn_accuracy: float
    buffer_diversity: float
    samples: int
    loss: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "device": self.device,
            "knn_accuracy": self.knn_accuracy,
            "buffer_diversity": self.buffer_diversity,
            "samples": self.samples,
            "loss": _none_if_nan(self.loss),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DeviceRoundStats":
        return cls(
            device=data["device"],
            knn_accuracy=float(data["knn_accuracy"]),
            buffer_diversity=float(data["buffer_diversity"]),
            samples=int(data["samples"]),
            loss=_nan_if_none(data["loss"]),
        )


@dataclass
class FleetRoundStats:
    """One row of the per-round fleet table.

    ``devices`` report their *local* models (measured before the
    broadcast); ``global_knn_accuracy`` scores the aggregated model —
    for ``local-only`` rounds (``synchronized`` False) it is the mean
    of the device accuracies instead (``NaN`` when nobody trained).

    ``participants`` / ``dropped`` / ``late`` record the population
    round's cast: the sampled device indices, the subset the fault
    plan dropped, and the stragglers whose reports were buffered past
    the deadline.  All three are ``None`` on plain synchronous rounds
    (no sampling, no fault plan), keeping pre-population payloads and
    fingerprints byte-identical.
    """

    round_index: int
    devices: List[DeviceRoundStats]
    global_knn_accuracy: float
    synchronized: bool
    participants: Optional[List[int]] = None
    dropped: Optional[List[int]] = None
    late: Optional[List[int]] = None

    @property
    def mean_device_accuracy(self) -> float:
        if not self.devices:
            return float("nan")
        return float(np.mean([d.knn_accuracy for d in self.devices]))

    @property
    def mean_buffer_diversity(self) -> float:
        if not self.devices:
            return float("nan")
        return float(np.mean([d.buffer_diversity for d in self.devices]))

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "round_index": self.round_index,
            "devices": [d.to_dict() for d in self.devices],
            "global_knn_accuracy": _none_if_nan(self.global_knn_accuracy),
            "synchronized": self.synchronized,
        }
        if self.participants is not None:
            payload["participants"] = list(self.participants)
        if self.dropped is not None:
            payload["dropped"] = list(self.dropped)
        if self.late is not None:
            payload["late"] = list(self.late)
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetRoundStats":
        participants = data.get("participants")
        dropped = data.get("dropped")
        late = data.get("late")
        return cls(
            round_index=int(data["round_index"]),
            devices=[DeviceRoundStats.from_dict(d) for d in data["devices"]],
            global_knn_accuracy=_nan_if_none(data["global_knn_accuracy"]),
            synchronized=bool(data["synchronized"]),
            participants=None if participants is None else [int(i) for i in participants],
            dropped=None if dropped is None else [int(i) for i in dropped],
            late=None if late is None else [int(i) for i in late],
        )


@dataclass
class FleetRunResult:
    """Outcome of a (possibly partial) fleet run.

    ``wire_format`` and ``timings`` describe *how* the run executed
    (transport + per-round stage seconds); they are intentionally
    excluded from :meth:`fingerprint`, which must be identical across
    serial, parallel, and every wire format.
    """

    config: StreamExperimentConfig
    aggregator: str
    device_names: List[str]
    rounds: List[FleetRoundStats]
    device_results: List[StreamRunResult]
    final_global_knn_accuracy: float
    wire_format: Optional[str] = None
    timings: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def mean_device_knn_accuracy(self) -> float:
        """Mean final-round per-device (local model) kNN accuracy."""
        return self.rounds[-1].mean_device_accuracy

    def fingerprint(self) -> Dict[str, Any]:
        """Deterministic payload: everything except wall-clock timing.

        Serial and ``workers > 1`` fleet runs of the same config must
        produce equal fingerprints (the fleet analogue of
        :func:`repro.experiments.parallel.result_fingerprint`).
        """
        config = config_to_dict(self.config)
        # Telemetry is observation only: whether metrics were enabled
        # (config.obs) must never distinguish otherwise-identical runs.
        config["obs"] = None
        return {
            "config": config,
            "aggregator": self.aggregator,
            "device_names": list(self.device_names),
            "rounds": [r.to_dict() for r in self.rounds],
            "device_results": [result_fingerprint(r) for r in self.device_results],
            "final_global_knn_accuracy": _none_if_nan(self.final_global_knn_accuracy),
        }


@dataclass(frozen=True)
class DevicePlan:
    """One device's fully resolved execution plan.

    What a :class:`~repro.fleet.spec.DeviceSpec` becomes after eager
    validation: canonical names, inherited fields filled in, the
    compute budget turned into a lazy interval, and the per-round step
    count.  Exposed read-only via :attr:`FleetCoordinator.plans` (the
    ``fleet`` experiment builds its single-device baseline from
    ``plans[0]``).
    """

    name: str
    config: StreamExperimentConfig
    policy: str
    lazy_interval: Optional[int]
    steps_per_round: int


# ----------------------------------------------------------------------
# The coordinator.
# ----------------------------------------------------------------------
class FleetCoordinator:
    """Runs rounds of local training + aggregation over a device fleet.

    Parameters
    ----------
    config:
        A :class:`StreamExperimentConfig` whose ``fleet`` field holds
        the :class:`~repro.fleet.spec.FleetConfig` (device roster +
        round count) and whose ``aggregator`` field names the
        aggregation rule (``None`` selects ``fedavg``).  Both ride the
        config, so they serialize into fleet checkpoints and sweep
        payloads like the backend and scenario selections.
    eval_points, label_fraction:
        Forwarded to every device Session (probe schedule over the
        device's *whole* stream, not per round).
    workers:
        Device jobs per round are fanned over this many processes via
        :func:`repro.experiments.parallel.run_jobs` (reusing the
        persistent worker pool, with sticky device→worker routing);
        results are bitwise-identical to ``workers=1``.
    start_method:
        Multiprocessing start method (None = platform default).
    wire_format:
        ``WIRE_FORMATS`` codec for device state crossing the process
        boundary (``json-b64``, ``shm``, ``delta``, or a plugin).
        ``None`` defers to the ``REPRO_WIRE_FORMAT`` environment
        variable, then to the default (``delta``) for parallel rounds
        and the raw in-process representation for ``workers=1``.  An
        *explicitly selected* format is exercised even at ``workers=1``
        — every codec is lossless, so results never depend on this
        knob (the fleet-of-1 identity tests run exactly that way).

    All fields are validated here, eagerly, with per-field messages —
    a misconfigured fleet never reaches the first round.
    """

    def __init__(
        self,
        config: StreamExperimentConfig,
        *,
        eval_points: int = 1,
        label_fraction: float = 1.0,
        workers: int = 1,
        start_method: Optional[str] = None,
        wire_format: Optional[str] = None,
    ) -> None:
        if config.fleet is None:
            raise ValueError(
                "config.fleet must be set to run a fleet (build a "
                "FleetConfig of DeviceSpecs, or use FleetCoordinator.build)"
            )
        if eval_points < 1:
            raise ValueError(f"eval_points must be >= 1, got {eval_points}")
        if not 0.0 < label_fraction <= 1.0:
            raise ValueError(
                f"label_fraction must be in (0, 1], got {label_fraction}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")

        aggregator_name = config.aggregator if config.aggregator is not None else "fedavg"
        try:
            aggregator_name = AGGREGATORS.get(aggregator_name).name
        except UnknownComponentError as exc:
            raise ValueError(f"config.aggregator: {exc}") from exc
        try:
            resolved_wire = resolve_wire_format(wire_format)
        except UnknownComponentError as exc:
            raise ValueError(f"wire_format: {exc}") from exc
        sampler_name = config.fleet.sampler
        if sampler_name is None and config.fleet.participants is not None:
            sampler_name = "uniform"
        if sampler_name is not None:
            try:
                sampler_name = CLIENT_SAMPLERS.get(sampler_name).name
            except UnknownComponentError as exc:
                raise ValueError(f"config.fleet.sampler: {exc}") from exc

        base = config.with_(fleet=None, aggregator=None)
        plans: List[DevicePlan] = []
        canonical_specs: List[DeviceSpec] = []
        for index, spec in enumerate(config.fleet.devices):
            plan, canonical = self._plan_device(index, spec, base, config.fleet.rounds)
            plans.append(plan)
            canonical_specs.append(canonical)

        # Store the fully canonicalized selection back on the config so
        # checkpoints and payloads carry canonical names only.
        self.config = config.with_(
            fleet=FleetConfig(
                devices=tuple(canonical_specs),
                rounds=config.fleet.rounds,
                participants=config.fleet.participants,
                sampler=sampler_name,
                regions=config.fleet.regions,
                round_deadline_s=config.fleet.round_deadline_s,
                fault_plan=config.fleet.fault_plan,
            ),
            aggregator=aggregator_name,
        )
        self.aggregator_name = aggregator_name
        self._base_config = base
        self._plans = plans
        self._eval_points = int(eval_points)
        self._label_fraction = float(label_fraction)
        self._workers = int(workers)
        self._start_method = start_method
        self._aggregator: Aggregator = create_aggregator(aggregator_name)
        # transport: the resolved codec selection (None = pick per
        # round), the sender-side codec instance (built lazily), a
        # process-unique channel prefix so delta caches of concurrent
        # coordinators sharing one worker pool can never collide, and
        # the per-device worker generations the delta invalidation
        # tracks across respawns.
        self._wire_selection = resolved_wire
        self._wire: Optional[WireFormat] = None
        self._wire_name: Optional[str] = None
        self._channel_prefix = f"fleet-{os.getpid()}-{next(_FLEET_COUNTER)}"
        self._worker_generations: Dict[int, int] = {}
        self._timings: List[Dict[str, Any]] = []
        # live run state
        num = len(plans)
        self._round = 0
        self._device_states: List[Optional[Dict[str, Any]]] = [None] * num
        self._last_results: List[Optional[Dict[str, Any]]] = [None] * num
        self._seen: List[int] = [0] * num
        self._global_state: Optional[Dict[str, np.ndarray]] = None
        self._history: List[FleetRoundStats] = []
        self._eval_pool: Optional[tuple] = None
        self._on_broadcast: List[Any] = []
        # population state: the client sampler (participants K < N),
        # its coordinator-owned checkpointed RNG, profile weights for
        # the weighted sampler, the chaos schedule, the region map
        # (device index -> region id; unlisted devices are singleton
        # regions), the global model version counter (staleness clock),
        # and late reports buffered past the round deadline.
        fleet_cfg = self.config.fleet
        assert fleet_cfg is not None
        self._participants = fleet_cfg.participants
        self._sampler: Optional[ClientSampler] = None
        self._sampler_rng: Optional[np.random.Generator] = None
        if self._participants is not None:
            assert sampler_name is not None
            self._sampler = create_client_sampler(sampler_name)
            self._sampler_rng = np.random.default_rng(
                [0x5A3B1E7, int(self._base_config.seed)]
            )
        self._profile_weights = np.array(
            [
                1.0 / DEVICE_PROFILES[spec.profile].compute_pj_per_flop
                for spec in canonical_specs
            ],
            dtype=np.float64,
        )
        fault_plan = fleet_cfg.fault_plan
        self._fault_plan: Optional[FaultPlan] = (
            fault_plan if fault_plan is not None and not fault_plan.is_noop else None
        )
        self._deadline = fleet_cfg.round_deadline_s
        self._region_of: Optional[Dict[int, int]] = None
        if fleet_cfg.regions is not None:
            mapping = {
                device: rid
                for rid, members in enumerate(fleet_cfg.regions)
                for device in members
            }
            base_region = len(fleet_cfg.regions)
            for device in range(num):
                mapping.setdefault(device, base_region + device)
            self._region_of = mapping
        self._population = self._sampler is not None or self._fault_plan is not None
        self._global_version = 0
        self._pending: List[Dict[str, Any]] = []
        self._force_full: set = set()
        self._active_devices: List[int] = list(range(num))

    # -- construction helpers -------------------------------------------
    @classmethod
    def build(
        cls,
        config: StreamExperimentConfig,
        devices: int | Sequence[DeviceSpec] = 3,
        rounds: int = 2,
        aggregator: str = "fedavg",
        **kwargs: Any,
    ) -> "FleetCoordinator":
        """Convenience constructor: set the fleet fields and validate.

        ``devices`` is either a device count (uniform specs) or an
        explicit spec roster.
        """
        fleet = (
            FleetConfig.uniform(devices, rounds=rounds)
            if isinstance(devices, int)
            else FleetConfig(devices=tuple(devices), rounds=rounds)
        )
        return cls(config.with_(fleet=fleet, aggregator=aggregator), **kwargs)

    def _plan_device(
        self,
        index: int,
        spec: DeviceSpec,
        base: StreamExperimentConfig,
        rounds: int,
    ) -> Tuple[DevicePlan, DeviceSpec]:
        """Resolve one spec into an executable plan (eager validation)."""
        where = f"config.fleet.devices[{index}]"
        try:
            policy = POLICIES.get(spec.policy).name
        except UnknownComponentError as exc:
            raise ValueError(f"{where}.policy: {exc}") from exc
        scenario = spec.scenario if spec.scenario is not None else base.scenario
        try:
            scenario = canonical_scenario(scenario)
        except (UnknownComponentError, ValueError) as exc:
            raise ValueError(f"{where}.scenario: {exc}") from exc
        backend = spec.backend if spec.backend is not None else base.backend
        if spec.backend is not None:
            try:
                backend = BACKENDS.get(spec.backend).name
            except UnknownComponentError as exc:
                raise ValueError(f"{where}.backend: {exc}") from exc
        if spec.profile not in DEVICE_PROFILES:
            raise ValueError(
                f"{where}.profile: unknown device profile {spec.profile!r}; "
                f"known: {', '.join(sorted(DEVICE_PROFILES))}"
            )
        seed = spec.seed if spec.seed is not None else base.seed + index
        total = (
            spec.total_samples if spec.total_samples is not None else base.total_samples
        )
        try:
            device_config = base.with_(
                scenario=scenario,
                backend=backend,
                seed=seed,
                total_samples=total,
            )
        except ValueError as exc:
            raise ValueError(f"{where}: {exc}") from exc
        lazy_interval = self._resolve_lazy_interval(where, spec, device_config)
        name = spec.name if spec.name is not None else f"device{index}"
        canonical = DeviceSpec(
            policy=policy,
            scenario=spec.scenario and scenario,
            backend=spec.backend and backend,
            seed=spec.seed,
            total_samples=spec.total_samples,
            profile=spec.profile,
            compute_budget_mj=spec.compute_budget_mj,
            lazy_interval=spec.lazy_interval,
            name=spec.name,
        )
        plan = DevicePlan(
            name=name,
            config=device_config,
            policy=policy,
            lazy_interval=lazy_interval,
            steps_per_round=max(1, math.ceil(device_config.iterations / rounds)),
        )
        return plan, canonical

    @staticmethod
    def _resolve_lazy_interval(
        where: str, spec: DeviceSpec, device_config: StreamExperimentConfig
    ) -> Optional[int]:
        """Turn a per-iteration energy budget into a lazy interval.

        Walks the lazy-interval ladder (eager, 2, 4, ..., 64) and picks
        the first point whose per-iteration train+scoring energy on the
        device's profile fits ``compute_budget_mj`` — the
        :mod:`repro.device.cost_model` Table I analysis applied per
        device.  Purely a function of the config, so plans (and
        therefore fleets) stay deterministic.
        """
        if spec.lazy_interval is not None:
            return spec.lazy_interval
        if spec.compute_budget_mj is None:
            return None
        profile = DEVICE_PROFILES[spec.profile]
        # Shape-only throwaway build: flop counts depend on architecture
        # alone, and the scratch RngRegistry never touches device state.
        comp = build_components(device_config)
        image_size = comp.dataset.image_shape[1]
        cost = float("inf")
        for interval in _BUDGET_LAZY_LADDER:
            report = iteration_compute_cost(
                profile,
                comp.encoder,
                comp.projector,
                image_size,
                device_config.buffer_size,
                lazy_interval=interval,
            )
            cost = report.energy_train_mj + report.energy_scoring_lazy_mj
            if cost <= spec.compute_budget_mj:
                return interval
        raise ValueError(
            f"{where}.compute_budget_mj: {spec.compute_budget_mj} mJ per "
            f"iteration cannot be met on profile {spec.profile!r} even at "
            f"lazy interval {_BUDGET_LAZY_LADDER[-1]} "
            f"(cheapest iteration needs {cost:.3f} mJ)"
        )

    # -- introspection --------------------------------------------------
    @property
    def fleet(self) -> FleetConfig:
        """The canonicalized fleet description."""
        assert self.config.fleet is not None
        return self.config.fleet

    @property
    def plans(self) -> Tuple[DevicePlan, ...]:
        """The resolved per-device execution plans (read-only)."""
        return tuple(self._plans)

    @property
    def device_names(self) -> List[str]:
        return [plan.name for plan in self._plans]

    @property
    def rounds_completed(self) -> int:
        return self._round

    @property
    def timings(self) -> List[Dict[str, Any]]:
        """Per-round transport/stage seconds (serialize / transport /
        compute / merge), labeled with the wire format used.  Pure
        instrumentation: never part of fingerprints or checkpoints."""
        return [dict(entry) for entry in self._timings]

    @property
    def wire_format(self) -> Optional[str]:
        """The resolved wire-format selection (None = per-round pick)."""
        return self._wire_selection

    @property
    def global_model_state(self) -> Optional[Dict[str, np.ndarray]]:
        """The current global model arrays (None before the first
        synchronizing aggregation)."""
        if self._global_state is None:
            return None
        return {key: value.copy() for key, value in self._global_state.items()}

    def on_broadcast(self, fn: Any) -> None:
        """Register ``fn(model_state)`` to run after every synchronizing
        broadcast, with a copy of the new global model arrays
        (``encoder/*`` + ``projector/*``).

        Local-only rounds (no aggregation) do not fire.  This is how
        the serving tier tracks the fleet: a
        :meth:`repro.serve.ModelRegistry.attach` subscription publishes
        each broadcast as a new model version (docs/SERVE.md).
        Subscribers run synchronously inside the round, in registration
        order, and must not raise.
        """
        self._on_broadcast.append(fn)

    # -- execution ------------------------------------------------------
    def run(self, rounds: Optional[int] = None) -> FleetRunResult:
        """Run ``rounds`` more rounds (default: all remaining).

        Returns the cumulative :class:`FleetRunResult`; call again (or
        checkpoint/resume in between) to continue — results are
        bitwise-identical to an uninterrupted run.
        """
        if rounds is not None and rounds < 1:
            # 0 is rejected rather than being a no-op: before the first
            # round it would leave nothing for result() to report.
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        remaining = self.fleet.rounds - self._round
        count = remaining if rounds is None else min(rounds, remaining)
        # config.obs gates coordinator-side metrics exactly like a
        # Session run gates its own (None defers to the process default).
        with use_metrics(self.config.obs):
            for _ in range(count):
                self._run_round()
        return self.result()

    def _channel(self, device_index: int) -> str:
        """The device's transport channel id (delta cache key)."""
        return f"{self._channel_prefix}/device{device_index}"

    def _sender_codec(self, wire_name: Optional[str]) -> Optional[WireFormat]:
        """The coordinator's sender-side codec instance (lazy, reused
        across rounds so delta hash state survives)."""
        if wire_name is None:
            return None
        if self._wire is None or self._wire_name != wire_name:
            self._wire = create_wire_format(wire_name)
            self._wire_name = wire_name
        return self._wire

    def _fallback_payload(self, index: int, payload: Dict[str, Any]) -> Dict[str, Any]:
        """A standalone payload for the in-parent serial re-run of a
        crashed device job: raw state, no wire round trip (the crashed
        worker's channel caches are gone, so a delta payload could not
        decode here).

        ``index`` is the *job* index into this round's payload list
        (the device index when every device runs; a position in the
        participant list on sampled rounds).  The device is marked for
        a full resend next round: whatever channel cache its sticky
        worker held is no longer trustworthy after a mid-round crash
        or transport-state retry."""
        device_index = self._active_devices[index]
        self._force_full.add(device_index)
        if payload.get("state") is None:
            return dict(payload, wire=None, response_wire=None, inject_crash=False)
        state = self._device_states[device_index]
        assert state is not None
        return {
            "state": state,
            "wire": None,
            "response_wire": None,
            "channel": payload.get("channel"),
            "stop_after": payload["stop_after"],
        }

    def _run_round(self) -> None:
        """One fleet round, wrapped in the ``fleet.round`` trace span
        with the logical round clock and timed into the
        ``fleet.round_seconds`` histogram."""
        set_clock(round=self._round)
        with trace_span("fleet.round"):
            start = time.perf_counter()
            self._run_round_inner()
            if metrics_enabled():
                metrics().histogram("fleet.round_seconds").observe(
                    time.perf_counter() - start
                )

    def _run_round_inner(self) -> None:
        num = len(self._plans)
        round_index = self._round
        fault_plan = self._fault_plan

        # -- population cast: who trains, who drops, who straggles.
        # Every draw is either from the checkpointed sampler RNG or a
        # stateless fault_rng derivation, so an interrupted run resumes
        # (and a plan+seed replays) with the identical cast.
        if self._sampler is not None:
            assert self._sampler_rng is not None and self._participants is not None
            sampled = list(
                self._sampler.sample(
                    round_index,
                    num,
                    self._participants,
                    self._sampler_rng,
                    weights=self._profile_weights,
                )
            )
        else:
            sampled = list(range(num))
        dropped: List[int] = []
        late: List[int] = []
        crashing: set = set()
        if fault_plan is not None:
            active: List[int] = []
            for i in sampled:
                if fault_plan.drops(round_index, i):
                    dropped.append(i)
                    continue
                active.append(i)
                if fault_plan.crashes(round_index, i):
                    crashing.add(i)
                if (
                    self._deadline is not None
                    and fault_plan.delay(i) > self._deadline
                ):
                    late.append(i)
        else:
            active = sampled
        late_set = set(late)
        self._active_devices = active

        # Transport selection: an explicitly chosen wire format is
        # always exercised (the fleet-of-1 identity hook); otherwise
        # state is encoded exactly when it crosses a process boundary,
        # with the default codec.  Lossless codecs never affect
        # results; the lossy delta codecs trade their documented
        # tolerance for bandwidth.  The pool is sized for the whole
        # fleet (not this round's participants) so sticky device ->
        # worker routing stays stable across sampled rounds.
        workers = min(self._workers, num)
        pool: Optional[WorkerPool] = None
        if workers > 1 and active:
            try:
                pool = get_worker_pool(workers, self._start_method)
            except POOL_UNAVAILABLE_ERRORS as exc:
                warnings.warn(
                    f"multiprocessing unavailable ({exc}); running device "
                    "rounds serially",
                    RuntimeWarning,
                    stacklevel=3,
                )
                workers = 1
        wire_name = self._wire_selection
        if wire_name is None and pool is not None:
            wire_name = default_wire_format()
        wire = self._sender_codec(wire_name)

        # Channel-stateful codecs (delta) diff against what the sticky
        # worker's process holds; if that slot was respawned since the
        # device's last round (or the device has never run), or the
        # device's last round ended in a serial-fallback re-run
        # (_force_full), invalidate so this round ships the full state.
        if wire is not None:
            generations = pool.generations() if pool is not None else None
            for i in active:
                generation = (
                    generations[pool.sticky_worker(i)]
                    if pool is not None and generations is not None
                    else -1
                )
                if (
                    self._worker_generations.get(i) != generation
                    or i in self._force_full
                ):
                    wire.invalidate(self._channel(i))
                    self._worker_generations[i] = generation
            self._force_full.difference_update(active)

        serialize_start = time.perf_counter()
        response_wire = wire.response_format if wire is not None else None
        payloads = []
        for i in active:
            plan = self._plans[i]
            if self._device_states[i] is None:
                entry: Dict[str, Any] = {
                    "state": None,
                    "wire": wire_name,
                    "response_wire": response_wire,
                    "channel": self._channel(i),
                    "config": config_to_dict(plan.config),
                    "policy": plan.policy,
                    "eval_points": self._eval_points,
                    "label_fraction": self._label_fraction,
                    "lazy_interval": plan.lazy_interval,
                    "score_momentum": 0.0,
                    "stop_after": plan.steps_per_round,
                }
                if self._global_state is not None:
                    # First participation after a broadcast: start from
                    # the global model, not from scratch (raw lossless
                    # table; overlays are rare, so no delta channel).
                    entry["global_overlay"] = encode_arrays(self._global_state)
            else:
                state = self._device_states[i]
                if wire is None:
                    state_payload: Dict[str, Any] = state
                else:
                    state_payload = {
                        "meta": state["meta"],
                        "learner": wire.encode(
                            state["learner"], channel=self._channel(i)
                        ),
                    }
                entry = {
                    "state": state_payload,
                    "wire": wire_name,
                    "response_wire": response_wire,
                    "channel": self._channel(i),
                    "stop_after": plan.steps_per_round,
                }
            if i in crashing:
                entry["inject_crash"] = True
            payloads.append(entry)
        serialize_s = time.perf_counter() - serialize_start

        # Per-codec broadcast volume: approximate encoded array bytes
        # against the raw in-process footprint (the compression-ratio
        # gauge).  Raw rounds ship nothing over a codec, so both stay 0.
        bytes_sent = 0
        raw_bytes = 0
        if metrics_enabled() and wire is not None:
            for i, entry in zip(active, payloads):
                staged = entry.get("state")
                if staged is None:
                    continue
                bytes_sent += wire.payload_nbytes(staged["learner"])
                state = self._device_states[i]
                assert state is not None
                raw_bytes += sum(
                    np.asarray(value).nbytes
                    for value in state["learner"].values()
                )

        job_timings: Optional[JobTimings] = None
        outputs: Sequence[Dict[str, Any]] = []
        if payloads:
            try:
                outputs = run_jobs(
                    _device_round_worker,
                    payloads,
                    workers=workers,
                    start_method=self._start_method,
                    sticky=True,
                    sticky_keys=active,
                    pool=pool,
                    refresh=self._fallback_payload,
                    retry_on=(WireProtocolError,),
                )
            finally:
                if wire is not None:
                    # Backstop for payloads no worker ever decoded (crash
                    # mid-round): idempotently release staged resources
                    # (shm segments) so nothing can leak.
                    for payload in payloads:
                        staged = payload.get("state")
                        if staged is not None and payload.get("wire") is not None:
                            wire.release(staged["learner"])
            job_timings = outputs.timings  # type: ignore[attr-defined]

        merge_start = time.perf_counter()
        reports: List[DeviceRoundReport] = []
        round_devices: List[DeviceRoundStats] = []
        for j, i in enumerate(active):
            plan = self._plans[i]
            output = outputs[j]
            # Worker-recorded telemetry merges into the parent registry
            # (and trace) before the result payload is parsed — the
            # cross-process collection path, fingerprint-invisible.
            absorb_worker_telemetry(output.pop("_telemetry", None))
            state = (
                {
                    "meta": output["state"]["meta"],
                    "learner": decode_state_payload(output["state"]["learner"]),
                }
                if output["encoded"]
                else output["state"]
            )
            if wire is not None:
                # Sender bookkeeping: the worker's channel cache now
                # holds exactly these arrays (delta's next-round base).
                wire.note_sent(self._channel(i), state["learner"])
            result = StreamRunResult.from_dict(output["result"])
            seen = int(state["learner"]["seen_inputs"])
            samples = seen - self._seen[i]
            self._seen[i] = seen
            self._device_states[i] = state
            self._last_results[i] = output["result"]
            knn = float(result.info["final_knn_accuracy"])
            model_state = {
                key: value
                for key, value in state["learner"].items()
                if key.startswith(MODEL_PREFIXES)
            }
            if i in late_set:
                # A straggler: its update arrives int(delay / deadline)
                # rounds from now and joins aggregation then, weighted
                # down by the staleness it accrued (DESIGN.md §13).
                assert fault_plan is not None and self._deadline is not None
                rounds_late = max(
                    1, int(fault_plan.delay(i) // self._deadline)
                )
                self._pending.append(
                    {
                        "device": plan.name,
                        "device_index": i,
                        "model_state": model_state,
                        "weight": float(samples),
                        "knn_accuracy": knn,
                        "dispatch_version": self._global_version,
                        "dispatch_round": round_index,
                        "arrival_round": round_index + rounds_late,
                    }
                )
            else:
                info: Dict[str, float] = {}
                if self._region_of is not None:
                    info["region"] = float(self._region_of[i])
                reports.append(
                    DeviceRoundReport(
                        device=plan.name,
                        model_state=model_state,
                        weight=float(samples),
                        knn_accuracy=knn,
                        info=info,
                    )
                )
            round_devices.append(
                DeviceRoundStats(
                    device=plan.name,
                    knn_accuracy=knn,
                    buffer_diversity=float(result.buffer_class_diversity),
                    samples=samples,
                    loss=float(result.final_loss),
                )
            )

        # Buffered straggler reports whose simulated arrival round has
        # come join this round's aggregation, stamped with the number
        # of global versions they missed.
        matured = [p for p in self._pending if p["arrival_round"] <= round_index]
        if matured:
            self._pending = [
                p for p in self._pending if p["arrival_round"] > round_index
            ]
            matured.sort(key=lambda p: (p["dispatch_round"], p["device_index"]))
            for p in matured:
                info = {
                    "staleness": float(self._global_version - p["dispatch_version"])
                }
                if self._region_of is not None:
                    info["region"] = float(self._region_of[p["device_index"]])
                reports.append(
                    DeviceRoundReport(
                        device=p["device"],
                        model_state=p["model_state"],
                        weight=p["weight"],
                        knn_accuracy=p["knn_accuracy"],
                        info=info,
                    )
                )

        new_global = (
            self._aggregator.aggregate(self._global_state, reports)
            if reports
            else None
        )
        merge_s = time.perf_counter() - merge_start  # decode + aggregate
        synchronized = new_global is not None
        if synchronized:
            self._global_state = {
                key: np.asarray(value).copy() for key, value in new_global.items()
            }
            self._global_version += 1
            for state in self._device_states:
                if state is None:  # a device never yet sampled
                    continue
                for key, value in self._global_state.items():
                    state["learner"][key] = value.copy()
            for fn in self._on_broadcast:
                # Each subscriber gets its own copy: publishing must not
                # alias (or let anyone mutate) the live global arrays.
                fn({key: value.copy() for key, value in self._global_state.items()})
        if self._global_state is not None:
            global_accuracy = self._evaluate_global()
        elif round_devices:  # local-only: report the fleet mean instead
            global_accuracy = float(
                np.mean([d.knn_accuracy for d in round_devices])
            )
        else:  # nobody trained and no global model exists yet
            global_accuracy = float("nan")
        self._history.append(
            FleetRoundStats(
                round_index=self._round,
                devices=round_devices,
                global_knn_accuracy=global_accuracy,
                synchronized=synchronized,
                participants=sorted(sampled) if self._population else None,
                dropped=dropped if self._population else None,
                late=late if self._population else None,
            )
        )
        self._timings.append(
            {
                "round": self._round,
                "wire": wire_name if wire_name is not None else "raw",
                "workers": job_timings.workers if job_timings is not None else 0,
                "serialize_s": serialize_s,
                "transport_s": (
                    job_timings.transport_s if job_timings is not None else 0.0
                ),
                "compute_s": (
                    job_timings.compute_s if job_timings is not None else 0.0
                ),
                "merge_s": merge_s,
                "wall_s": job_timings.wall_s if job_timings is not None else 0.0,
                "crashes": job_timings.crashes if job_timings is not None else 0,
            }
        )
        if metrics_enabled():
            registry = metrics()
            wire_label = wire_name if wire_name is not None else "raw"
            registry.counter("fleet.rounds").inc()
            registry.histogram("fleet.sampled_k").observe(len(sampled))
            if dropped:
                registry.counter("fleet.dropouts").inc(len(dropped))
            if late:
                registry.counter("fleet.stragglers").inc(len(late))
            if crashing:
                registry.counter("fleet.crashes").inc(len(crashing))
            registry.gauge("fleet.pending_depth").set(len(self._pending))
            if bytes_sent:
                registry.counter("fleet.bytes_sent", wire=wire_label).inc(
                    bytes_sent
                )
                registry.gauge("fleet.compression_ratio", wire=wire_label).set(
                    raw_bytes / bytes_sent
                )
            if job_timings is not None:
                job_timings.record("fleet")
        self._round += 1

    def _evaluate_global(self) -> float:
        """Training-free kNN accuracy of the global model on fixed pools.

        The evaluation components are rebuilt deterministically from the
        base config (their RngRegistry is independent of every device),
        and ``knn_predict`` draws no RNG — so this readout never
        perturbs checkpoint/resume or serial/parallel bitwiseness.
        """
        assert self._global_state is not None
        if self._eval_pool is None:
            with use_backend(self._base_config.backend):
                comp = build_components(self._base_config)
                train_x, train_y = comp.dataset.make_split(
                    self._base_config.probe_train_per_class,
                    comp.rngs.get("probe-train-pool"),
                )
                test_x, test_y = comp.dataset.make_split(
                    self._base_config.probe_test_per_class,
                    comp.rngs.get("probe-test-pool"),
                )
            self._eval_pool = (comp, train_x, train_y, test_x, test_y)
        comp, train_x, train_y, test_x, test_y = self._eval_pool
        comp.encoder.load_state_dict(
            {
                key[len("encoder/") :]: value
                for key, value in self._global_state.items()
                if key.startswith("encoder/")
            }
        )
        comp.projector.load_state_dict(
            {
                key[len("projector/") :]: value
                for key, value in self._global_state.items()
                if key.startswith("projector/")
            }
        )
        with use_backend(self._base_config.backend):
            accuracy = KnnProbe(comp.encoder).score(
                train_x,
                train_y,
                test_x,
                test_y,
                num_classes=comp.dataset.num_classes,
            )
        return float(accuracy)

    def result(self) -> FleetRunResult:
        """The cumulative run outcome (requires >= 1 completed round)."""
        if not self._history:
            raise RuntimeError("no rounds have run yet: call run() first")
        device_results = [
            StreamRunResult.from_dict(payload)
            for payload in self._last_results
            if payload is not None
        ]
        return FleetRunResult(
            config=self.config,
            aggregator=self.aggregator_name,
            device_names=self.device_names,
            rounds=list(self._history),
            device_results=device_results,
            final_global_knn_accuracy=self._history[-1].global_knn_accuracy,
            wire_format=self._timings[-1]["wire"] if self._timings else None,
            timings=self.timings,
        )

    # -- checkpoint / resume --------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """The full fleet state: coordinator counters, aggregator state,
        the global model, and every device's Session state.

        Restoring it (:meth:`load_state_dict` / :meth:`resume`) and
        running the remaining rounds is bitwise-identical to an
        uninterrupted run.
        """
        arrays: Dict[str, np.ndarray] = {}
        for i, state in enumerate(self._device_states):
            if state is None:
                continue
            for key, value in state["learner"].items():
                arrays[f"device{i}/{key}"] = value
        if self._global_state is not None:
            for key, value in self._global_state.items():
                arrays[f"global/{key}"] = value
        for key, value in self._aggregator.state_dict().items():
            arrays[f"aggregator/{key}"] = value
        for index, entry in enumerate(self._pending):
            for key, value in entry["model_state"].items():
                arrays[f"pending{index}/{key}"] = value
        meta = {
            "version": FLEET_CHECKPOINT_VERSION,
            "config": config_to_dict(self.config),
            "eval_points": self._eval_points,
            "label_fraction": self._label_fraction,
            "round": self._round,
            "seen": list(self._seen),
            "history": [stats.to_dict() for stats in self._history],
            "device_results": list(self._last_results),
            "device_meta": [
                state["meta"] if state is not None else None
                for state in self._device_states
            ],
            "has_global": self._global_state is not None,
            "global_version": self._global_version,
            "pending": [
                {
                    key: entry[key]
                    for key in (
                        "device",
                        "device_index",
                        "weight",
                        "knn_accuracy",
                        "dispatch_version",
                        "dispatch_round",
                        "arrival_round",
                    )
                }
                for entry in self._pending
            ],
        }
        if self._sampler is not None:
            assert self._sampler_rng is not None
            meta["sampler"] = {
                # PCG64 state is a nest of plain ints: strict-JSON safe.
                "rng": self._sampler_rng.bit_generator.state,
                "state": self._sampler.state_dict(),
            }
        return {"meta": meta, "arrays": arrays}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore the exact state written by :meth:`state_dict`."""
        meta = state["meta"]
        version = meta.get("version")
        if version != FLEET_CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported fleet checkpoint version {version!r} "
                f"(this build reads version {FLEET_CHECKPOINT_VERSION})"
            )
        config = config_from_dict(meta["config"])
        if config != self.config:
            raise ValueError(
                "fleet checkpoint was written for a different config; "
                "construct the coordinator from the checkpoint "
                "(FleetCoordinator.resume) or with the matching config"
            )
        arrays = state["arrays"]
        num = len(self._plans)
        self._round = int(meta["round"])
        self._seen = [int(v) for v in meta["seen"]]
        self._history = [
            FleetRoundStats.from_dict(entry) for entry in meta["history"]
        ]
        self._last_results = [
            dict(entry) if entry is not None else None
            for entry in meta["device_results"]
        ]
        self._device_states = []
        for i in range(num):
            device_meta = meta["device_meta"][i]
            if device_meta is None:
                self._device_states.append(None)
                continue
            prefix = f"device{i}/"
            learner = {
                key[len(prefix) :]: np.asarray(value).copy()
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            self._device_states.append({"meta": device_meta, "learner": learner})
        if meta["has_global"]:
            self._global_state = {
                key[len("global/") :]: np.asarray(value).copy()
                for key, value in arrays.items()
                if key.startswith("global/")
            }
        else:
            self._global_state = None
        self._aggregator.load_state_dict(
            {
                key[len("aggregator/") :]: np.asarray(value).copy()
                for key, value in arrays.items()
                if key.startswith("aggregator/")
            }
        )
        # Population state.  Pre-population checkpoints lack these keys
        # (their runs never used them): the global version falls back
        # to the number of synchronizing rounds in the history.
        self._global_version = int(
            meta.get(
                "global_version",
                sum(1 for stats in self._history if stats.synchronized),
            )
        )
        self._pending = []
        for index, entry in enumerate(meta.get("pending", ())):
            prefix = f"pending{index}/"
            model_state = {
                key[len(prefix) :]: np.asarray(value).copy()
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            self._pending.append(
                {
                    "device": entry["device"],
                    "device_index": int(entry["device_index"]),
                    "model_state": model_state,
                    "weight": float(entry["weight"]),
                    "knn_accuracy": float(entry["knn_accuracy"]),
                    "dispatch_version": int(entry["dispatch_version"]),
                    "dispatch_round": int(entry["dispatch_round"]),
                    "arrival_round": int(entry["arrival_round"]),
                }
            )
        sampler_meta = meta.get("sampler")
        if self._sampler is not None and sampler_meta is not None:
            assert self._sampler_rng is not None
            self._sampler_rng.bit_generator.state = sampler_meta["rng"]
            self._sampler.load_state_dict(sampler_meta["state"])
        self._force_full = set()
        self._eval_pool = None  # rebuilt deterministically on demand

    def save_checkpoint(self, path: str) -> str:
        """Write the fleet state to ``path`` (a single ``.npz``)."""
        if not path.endswith(".npz"):
            path += ".npz"  # np.savez would append it silently otherwise
        state = self.state_dict()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        np.savez(path, meta=np.array(json.dumps(state["meta"])), **state["arrays"])
        return path

    @classmethod
    def resume(
        cls,
        path: str,
        *,
        workers: int = 1,
        start_method: Optional[str] = None,
        wire_format: Optional[str] = None,
    ) -> "FleetCoordinator":
        """Rebuild a coordinator from :meth:`save_checkpoint` output;
        :meth:`run` continues the remaining rounds bitwise-identically.

        ``workers`` and ``wire_format`` are execution choices, not
        state, so they are chosen fresh at resume time (neither
        parallelism nor the transport codec ever changes results).
        """
        if not path.endswith(".npz"):
            path += ".npz"  # mirror save_checkpoint's normalization
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            arrays = {
                key: archive[key].copy() for key in archive.files if key != "meta"
            }
        version = meta.get("version")
        if version != FLEET_CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported fleet checkpoint version {version!r} "
                f"(this build reads version {FLEET_CHECKPOINT_VERSION})"
            )
        coordinator = cls(
            config_from_dict(meta["config"]),
            eval_points=int(meta["eval_points"]),
            label_fraction=float(meta["label_fraction"]),
            workers=workers,
            start_method=start_method,
            wire_format=wire_format,
        )
        coordinator.load_state_dict({"meta": meta, "arrays": arrays})
        return coordinator
