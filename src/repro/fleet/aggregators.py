"""Server-side model aggregation rules — the ``AGGREGATORS`` registry.

After every fleet round the coordinator hands the aggregator one
:class:`DeviceRoundReport` per device (its model arrays, the number of
stream samples it consumed this round, and its training-free kNN-probe
accuracy).  The aggregator returns the new global model state — a dict
of ``encoder/*`` and ``projector/*`` arrays broadcast back into every
device — or ``None`` to skip synchronization entirely.

Aggregators register with :func:`repro.registry.register_aggregator`
and are then accepted by name everywhere (``config.aggregator``, the
CLI's ``--aggregator`` flag, ``--list``), with the same alias and
"did you mean" semantics as policies/backends/scenarios.  Stateful
rules (server momentum) expose ``state_dict``/``load_state_dict`` so
fleet checkpoints capture them bitwise.

Determinism contract: aggregation always runs in the coordinator
process, in device order, accumulating in float64 before casting back
to each array's dtype — so a fleet round is bitwise-reproducible and
independent of the worker fan-out.  With a single device the
normalized weight is exactly ``1.0``, making every built-in rule a
bitwise identity (the fedavg-fleet-of-one == plain-Session guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.registry import AGGREGATORS, register_aggregator

__all__ = [
    "DeviceRoundReport",
    "Aggregator",
    "FedAvg",
    "FedAvgMomentum",
    "FedAvgAsync",
    "HierarchicalFedAvg",
    "BestOf",
    "LocalOnly",
    "create_aggregator",
    "weighted_mean_state",
]


@dataclass
class DeviceRoundReport:
    """What one device hands the server after a local round."""

    device: str
    model_state: Dict[str, np.ndarray]
    weight: float
    knn_accuracy: float
    info: Dict[str, float] = field(default_factory=dict)


class Aggregator:
    """Base class for server-side aggregation rules.

    Subclasses implement :meth:`aggregate`; stateful rules additionally
    override the ``state_dict``/``load_state_dict`` pair (the defaults
    describe a stateless rule).
    """

    def aggregate(
        self,
        global_state: Optional[Dict[str, np.ndarray]],
        reports: Sequence[DeviceRoundReport],
    ) -> Optional[Dict[str, np.ndarray]]:
        """Produce the next global model state.

        ``global_state`` is the state this aggregator returned last
        round (``None`` on the first aggregation).  Returning ``None``
        means "do not synchronize": the coordinator keeps every device
        on its local weights.
        """
        raise NotImplementedError

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Server-side state to checkpoint (empty for stateless rules)."""
        return {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` output (no-op for stateless rules)."""
        if state:
            raise ValueError(
                f"{type(self).__name__} is stateless but the checkpoint "
                f"carries aggregator state keys: {sorted(state)}"
            )


def weighted_mean_state(
    reports: Sequence[DeviceRoundReport],
) -> Dict[str, np.ndarray]:
    """Sample-weighted mean of the reports' model arrays.

    Weights are normalized first and accumulation happens in float64
    (cast back to each array's dtype afterwards), so the result depends
    only on report order — never on worker scheduling — and a single
    report comes back bitwise-unchanged (its normalized weight is
    exactly 1.0).  Zero total weight (every stream exhausted) falls
    back to uniform weights.
    """
    if not reports:
        raise ValueError("need at least one device report to aggregate")
    keys = list(reports[0].model_state)
    for report in reports[1:]:
        if list(report.model_state) != keys:
            raise ValueError(
                f"device {report.device!r} reports model keys that differ "
                f"from device {reports[0].device!r}; fleets must share one "
                "architecture to average parameters"
            )
    raw = np.array([max(float(r.weight), 0.0) for r in reports], dtype=np.float64)
    total = raw.sum()
    weights = raw / total if total > 0 else np.full(len(reports), 1.0 / len(reports))
    out: Dict[str, np.ndarray] = {}
    for key in keys:
        first = reports[0].model_state[key]
        accum = np.zeros(first.shape, dtype=np.float64)
        for weight, report in zip(weights, reports):
            accum += weight * report.model_state[key].astype(np.float64)
        out[key] = accum.astype(first.dtype)
    return out


def create_aggregator(name: str, **options) -> Aggregator:
    """Construct an aggregation rule by registered name.

    Every key in ``options`` is an explicit caller option (not an
    offer): a factory that does not accept one raises ``TypeError``,
    mirroring :func:`repro.registry.create_policy`.
    """
    rule = AGGREGATORS.create_with_required(name, tuple(options), **options)
    if not isinstance(rule, Aggregator):
        raise TypeError(
            f"aggregator {name!r} built a {type(rule).__name__}, expected "
            "an Aggregator (aggregate/state_dict/load_state_dict)"
        )
    return rule


# ----------------------------------------------------------------------
# Built-in rules.
# ----------------------------------------------------------------------
@register_aggregator(
    "fedavg",
    label="Sample-weighted parameter averaging",
    aliases=("avg", "federated-averaging"),
)
class FedAvg(Aggregator):
    """Classic FedAvg: ``global = sum_d (n_d / n) * model_d``.

    ``n_d`` is the number of stream samples device ``d`` consumed this
    round, so devices that processed more data pull the average harder.
    Optimizer moments stay local — only model arrays synchronize.
    """

    def aggregate(self, global_state, reports):
        return weighted_mean_state(reports)


@register_aggregator(
    "fedavg-momentum",
    label="FedAvg with server momentum",
    aliases=("fedavgm", "server-momentum"),
)
class FedAvgMomentum(Aggregator):
    """FedAvg smoothed by a server-side velocity.

    Update rule (per *parameter* array, float64 accumulation)::

        avg_t    = weighted_mean(device models)
        v_t      = beta * v_{t-1} + (avg_t - global_{t-1})
        global_t = global_{t-1} + v_t

    The first aggregation (no previous global) bootstraps with
    ``global_1 = avg_1`` and a zero velocity.  ``v`` is checkpointed
    via ``state_dict``, so a resumed fleet continues bitwise.

    BatchNorm running statistics (``running_mean``/``running_var``)
    take the plain weighted average instead: they are statistics, not
    optimization variables, and the momentum extrapolation can push
    ``running_var`` negative — which turns the whole model into NaNs
    at the next ``1/sqrt(var + eps)``.
    """

    def __init__(self, beta: float = 0.9) -> None:
        if not 0.0 <= beta < 1.0:
            raise ValueError(f"beta must be in [0, 1), got {beta}")
        self.beta = float(beta)
        self._velocity: Optional[Dict[str, np.ndarray]] = None

    @staticmethod
    def _is_statistic(key: str) -> bool:
        return key.rsplit(".", 1)[-1] in ("running_mean", "running_var")

    def aggregate(self, global_state, reports):
        average = weighted_mean_state(reports)
        if global_state is None:
            self._velocity = {
                key: np.zeros(value.shape, dtype=np.float64)
                for key, value in average.items()
                if not self._is_statistic(key)
            }
            return average
        assert self._velocity is not None  # set with the first global
        out: Dict[str, np.ndarray] = {}
        for key, avg in average.items():
            if self._is_statistic(key):
                out[key] = avg
                continue
            previous = global_state[key].astype(np.float64)
            delta = avg.astype(np.float64) - previous
            velocity = self.beta * self._velocity[key] + delta
            self._velocity[key] = velocity
            out[key] = (previous + velocity).astype(avg.dtype)
        return out

    def state_dict(self) -> Dict[str, np.ndarray]:
        if self._velocity is None:
            return {}
        return {f"velocity/{key}": value.copy() for key, value in self._velocity.items()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        if not state:
            self._velocity = None
            return
        self._velocity = {
            key[len("velocity/") :]: np.asarray(value, dtype=np.float64).copy()
            for key, value in state.items()
            if key.startswith("velocity/")
        }


@register_aggregator(
    "fedavg-async",
    label="Staleness-weighted FedAvg (buffered async rounds)",
    aliases=("async", "fedasync"),
)
class FedAvgAsync(Aggregator):
    """Staleness-weighted FedAvg for asynchronous rounds.

    The coordinator stamps every report with ``info["staleness"]`` —
    how many global versions were published between the moment the
    device *started* from the global model and the moment its update is
    finally aggregated.  On-time reports carry staleness 0; updates
    buffered past the round deadline arrive one round later with
    staleness >= 1.

    Update rule (DESIGN.md §13, float64 accumulation)::

        s_d      = (1 + staleness_d) ** -alpha          # decay factor
        avg_t    = weighted_mean(models, weights n_d * s_d)
        mix_t    = sum_d(n_d * s_d) / sum_d(n_d)        # freshness mass
        global_t = (1 - mix_t) * global_{t-1} + mix_t * avg_t

    With every report fresh (all staleness 0) ``mix_t == 1.0`` exactly
    and the rule degenerates to classic FedAvg bit for bit — which is
    what keeps the synchronous baseline, and the fleet-of-1 identity,
    intact when this aggregator is selected without a deadline.  Stale
    reports both pull the average less (per-report ``s_d``) and leave
    more of the previous global in place (round-level ``mix_t``).
    """

    def __init__(self, alpha: float = 0.5) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)

    def aggregate(self, global_state, reports):
        if not reports:
            raise ValueError("need at least one device report to aggregate")
        scaled: List[DeviceRoundReport] = []
        fresh_mass = 0.0
        total_mass = 0.0
        for report in reports:
            staleness = max(float(report.info.get("staleness", 0.0)), 0.0)
            decay = (1.0 + staleness) ** -self.alpha
            weight = max(float(report.weight), 0.0)
            fresh_mass += weight * decay
            total_mass += weight
            scaled.append(
                DeviceRoundReport(
                    device=report.device,
                    model_state=report.model_state,
                    weight=weight * decay,
                    knn_accuracy=report.knn_accuracy,
                    info=report.info,
                )
            )
        average = weighted_mean_state(scaled)
        if global_state is None:
            return average
        mix = fresh_mass / total_mass if total_mass > 0 else 1.0
        if mix >= 1.0:
            return average
        out: Dict[str, np.ndarray] = {}
        for key, avg in average.items():
            previous = global_state[key].astype(np.float64)
            blended = (1.0 - mix) * previous + mix * avg.astype(np.float64)
            out[key] = blended.astype(avg.dtype)
        return out


@register_aggregator(
    "hierarchical",
    label="Two-stage edge→region→server averaging",
    aliases=("edge-region-server", "hier"),
)
class HierarchicalFedAvg(Aggregator):
    """Edge→region→server topology: average within each region first,
    then average the region models weighted by their total sample mass.

    Regions come from ``FleetConfig.regions``; the coordinator stamps
    each report with ``info["region"]`` (devices outside every listed
    region form their own singleton regions).  Mathematically the
    two-stage weighted mean equals the flat one in exact arithmetic —
    the value of the topology is operational (a region aggregate only
    needs its own members' updates), and the float64 accumulation keeps
    each stage deterministic.  One region containing one report reduces
    both stages to the identity, preserving the fleet-of-1 guarantee.
    """

    def aggregate(self, global_state, reports):
        if not reports:
            raise ValueError("need at least one device report to aggregate")
        groups: Dict[int, List[DeviceRoundReport]] = {}
        for report in reports:
            region = int(report.info.get("region", 0))
            groups.setdefault(region, []).append(report)
        region_reports: List[DeviceRoundReport] = []
        for region in sorted(groups):
            members = groups[region]
            region_reports.append(
                DeviceRoundReport(
                    device=f"region-{region}",
                    model_state=weighted_mean_state(members),
                    weight=sum(max(float(m.weight), 0.0) for m in members),
                    knn_accuracy=float(
                        np.mean([m.knn_accuracy for m in members])
                    ),
                )
            )
        return weighted_mean_state(region_reports)


@register_aggregator(
    "best-of",
    label="Broadcast the best kNN-probe device",
    aliases=("best",),
)
class BestOf(Aggregator):
    """Winner-take-all: the device with the highest kNN-probe accuracy
    this round becomes the global model (ties go to the lowest device
    index, keeping selection deterministic)."""

    def aggregate(self, global_state, reports):
        if not reports:
            raise ValueError("need at least one device report to aggregate")
        best = max(
            range(len(reports)),
            key=lambda i: (reports[i].knn_accuracy, -i),
        )
        return {key: value.copy() for key, value in reports[best].model_state.items()}


@register_aggregator(
    "local-only",
    label="No synchronization (baseline)",
    aliases=("none", "no-sync"),
)
class LocalOnly(Aggregator):
    """The no-coordination baseline: every device keeps its own model.

    The round table still reports per-device accuracies, so this is the
    reference the synchronized rules are measured against.
    """

    def aggregate(self, global_state, reports):
        return None
