"""Multi-device fleet simulation with pluggable model aggregation.

The coordination layer above :class:`repro.session.Session` (see
docs/FLEET.md and DESIGN.md §10): a :class:`FleetConfig` of
:class:`DeviceSpec` entries describes N heterogeneous devices, the
:class:`FleetCoordinator` runs rounds of local Session training
followed by server-side aggregation, and aggregation rules plug in
through the ``AGGREGATORS`` registry
(:func:`repro.registry.register_aggregator`).
"""

from repro.fleet.aggregators import (
    Aggregator,
    BestOf,
    DeviceRoundReport,
    FedAvg,
    FedAvgMomentum,
    LocalOnly,
    create_aggregator,
    weighted_mean_state,
)
from repro.fleet.coordinator import (
    MODEL_PREFIXES,
    DevicePlan,
    DeviceRoundStats,
    FleetCoordinator,
    FleetRoundStats,
    FleetRunResult,
)
from repro.fleet.spec import DeviceSpec, FleetConfig

__all__ = [
    "Aggregator",
    "BestOf",
    "DevicePlan",
    "DeviceRoundReport",
    "DeviceRoundStats",
    "DeviceSpec",
    "FedAvg",
    "FedAvgMomentum",
    "FleetConfig",
    "FleetCoordinator",
    "FleetRoundStats",
    "FleetRunResult",
    "LocalOnly",
    "MODEL_PREFIXES",
    "create_aggregator",
    "weighted_mean_state",
]
