"""Multi-device fleet simulation with pluggable model aggregation.

The coordination layer above :class:`repro.session.Session` (see
docs/FLEET.md and DESIGN.md §10): a :class:`FleetConfig` of
:class:`DeviceSpec` entries describes N heterogeneous devices, the
:class:`FleetCoordinator` runs rounds of local Session training
followed by server-side aggregation, and aggregation rules plug in
through the ``AGGREGATORS`` registry
(:func:`repro.registry.register_aggregator`).

Population-scale features (DESIGN.md §13): client sampling trains only
K of N devices per round (``CLIENT_SAMPLERS`` registry,
:mod:`repro.fleet.sampling`), a seeded :class:`FaultPlan`
(:mod:`repro.fleet.faults`) injects deterministic stragglers, dropouts,
and crashes, and the ``fedavg-async`` / ``hierarchical`` aggregators
handle stale and region-grouped updates.
"""

from repro.fleet.aggregators import (
    Aggregator,
    BestOf,
    DeviceRoundReport,
    FedAvg,
    FedAvgAsync,
    FedAvgMomentum,
    HierarchicalFedAvg,
    LocalOnly,
    create_aggregator,
    weighted_mean_state,
)
from repro.fleet.coordinator import (
    MODEL_PREFIXES,
    DevicePlan,
    DeviceRoundStats,
    FleetCoordinator,
    FleetRoundStats,
    FleetRunResult,
)
from repro.fleet.faults import DeviceFaults, FaultPlan, fault_rng
from repro.fleet.sampling import (
    ClientSampler,
    RoundRobinSampler,
    UniformSampler,
    WeightedByProfileSampler,
    create_client_sampler,
)
from repro.fleet.spec import DeviceSpec, FleetConfig

__all__ = [
    "Aggregator",
    "BestOf",
    "ClientSampler",
    "DeviceFaults",
    "DevicePlan",
    "DeviceRoundReport",
    "DeviceRoundStats",
    "DeviceSpec",
    "FaultPlan",
    "FedAvg",
    "FedAvgAsync",
    "FedAvgMomentum",
    "FleetConfig",
    "FleetCoordinator",
    "FleetRoundStats",
    "FleetRunResult",
    "HierarchicalFedAvg",
    "LocalOnly",
    "MODEL_PREFIXES",
    "RoundRobinSampler",
    "UniformSampler",
    "WeightedByProfileSampler",
    "create_aggregator",
    "create_client_sampler",
    "fault_rng",
    "weighted_mean_state",
]
