"""Seeded fault injection for fleet rounds: :class:`FaultPlan`.

Population-scale federated runs fail in three characteristic ways —
devices *straggle* (their update arrives after the round deadline),
*drop out* (they never report), or *crash* mid-round (the worker
process dies and the coordinator must recover).  This module describes
all three as frozen, JSON-serializable data so a chaos run is exactly
as replayable as a clean one: the same plan and seed always produce
the same faults, in serial and parallel execution alike.

Determinism contract
--------------------
Every random draw is *stateless*: dropout for device ``d`` in round
``r`` uses ``numpy.random.default_rng([seed, r, d])``, so the outcome
depends only on ``(plan.seed, round_index, device_index)`` — never on
how many draws happened before, which devices were sampled, or whether
the run was checkpointed and resumed in between.  That is what lets
:class:`repro.fleet.coordinator.FleetCoordinator` checkpoint mid-chaos
without persisting any fault RNG state.

Fault semantics (see docs/FLEET.md "Fault plans"):

* ``straggler_delay_s`` — simulated seconds of extra latency for every
  round this device participates in.  With a fleet
  ``round_deadline_s`` set, a delay exceeding the deadline makes the
  report *late*: it is buffered and aggregated in the next round with
  ``staleness`` incremented (the ``fedavg-async`` aggregator
  down-weights it).  The delay is recorded in round timings but never
  actually slept.
* ``dropout_prob`` — per-round probability that the device drops out
  of a round it was sampled for: it does not train and reports
  nothing.
* ``crash_at_round`` — in that round the device's *worker process*
  exits hard mid-job (pool workers only), exercising the
  ``WorkerCrashedError`` recovery path: respawn, delta-channel
  invalidation, serial re-run.  With ``workers=1`` there is no child
  process to kill, so the crash is treated as instantly recovered —
  the device trains in-process from the exact same state the parallel
  recovery path would re-run from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = ["DeviceFaults", "FaultPlan", "fault_rng"]


@dataclass(frozen=True)
class DeviceFaults:
    """The fault profile of one device (or the plan-wide default)."""

    straggler_delay_s: float = 0.0
    dropout_prob: float = 0.0
    crash_at_round: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.straggler_delay_s, (int, float)) or self.straggler_delay_s < 0:
            raise ValueError(
                f"DeviceFaults.straggler_delay_s must be >= 0, got {self.straggler_delay_s!r}"
            )
        if (
            not isinstance(self.dropout_prob, (int, float))
            or not 0.0 <= float(self.dropout_prob) <= 1.0
        ):
            raise ValueError(
                f"DeviceFaults.dropout_prob must be in [0, 1], got {self.dropout_prob!r}"
            )
        if self.crash_at_round is not None and (
            not isinstance(self.crash_at_round, int) or self.crash_at_round < 0
        ):
            raise ValueError(
                f"DeviceFaults.crash_at_round must be None or >= 0, got {self.crash_at_round!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "straggler_delay_s": float(self.straggler_delay_s),
            "dropout_prob": float(self.dropout_prob),
            "crash_at_round": self.crash_at_round,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DeviceFaults":
        return cls(
            straggler_delay_s=float(data.get("straggler_delay_s", 0.0)),
            dropout_prob=float(data.get("dropout_prob", 0.0)),
            crash_at_round=data.get("crash_at_round"),
        )


_NO_FAULTS = DeviceFaults()


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic chaos schedule for a whole fleet.

    ``default`` applies to every device; ``overrides`` maps device
    *indices* to per-device fault profiles (stored as a sorted tuple of
    pairs so the plan stays hashable and order-independent).
    """

    seed: int = 0
    default: DeviceFaults = field(default_factory=DeviceFaults)
    overrides: Tuple[Tuple[int, DeviceFaults], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int):
            raise ValueError(f"FaultPlan.seed must be an int, got {self.seed!r}")
        if not isinstance(self.default, DeviceFaults):
            raise ValueError(
                f"FaultPlan.default must be a DeviceFaults, got {type(self.default).__name__}"
            )
        pairs = tuple(sorted(tuple(self.overrides), key=lambda pair: pair[0]))
        seen = set()
        for index, faults in pairs:
            if not isinstance(index, int) or index < 0:
                raise ValueError(f"FaultPlan.overrides device index must be >= 0, got {index!r}")
            if index in seen:
                raise ValueError(f"FaultPlan.overrides lists device {index} twice")
            seen.add(index)
            if not isinstance(faults, DeviceFaults):
                raise ValueError(
                    f"FaultPlan.overrides[{index}] must be a DeviceFaults, "
                    f"got {type(faults).__name__}"
                )
        object.__setattr__(self, "overrides", pairs)

    # -- lookup ---------------------------------------------------------
    def for_device(self, index: int) -> DeviceFaults:
        """The fault profile governing device ``index``."""
        for device, faults in self.overrides:
            if device == index:
                return faults
        return self.default

    def drops(self, round_index: int, device_index: int) -> bool:
        """Stateless per-(seed, round, device) dropout draw."""
        prob = float(self.for_device(device_index).dropout_prob)
        if prob <= 0.0:
            return False
        if prob >= 1.0:
            return True
        return bool(fault_rng(self.seed, round_index, device_index).random() < prob)

    def delay(self, device_index: int) -> float:
        """Simulated straggler latency (seconds) for this device."""
        return float(self.for_device(device_index).straggler_delay_s)

    def crashes(self, round_index: int, device_index: int) -> bool:
        """True when this device's worker should die in this round."""
        return self.for_device(device_index).crash_at_round == round_index

    @property
    def is_noop(self) -> bool:
        """True when no device can ever fault under this plan."""
        return self.default == _NO_FAULTS and all(
            faults == _NO_FAULTS for _, faults in self.overrides
        )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "default": self.default.to_dict(),
            "overrides": [
                [index, faults.to_dict()] for index, faults in self.overrides
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            default=DeviceFaults.from_dict(data.get("default", {})),
            overrides=tuple(
                (int(index), DeviceFaults.from_dict(faults))
                for index, faults in data.get("overrides", [])
            ),
        )


def fault_rng(seed: int, round_index: int, device_index: int) -> np.random.Generator:
    """The stateless generator for one (plan, round, device) cell."""
    return np.random.default_rng([0xFA07, seed, round_index, device_index])
