"""Declarative fleet description: :class:`DeviceSpec` and :class:`FleetConfig`.

A fleet is *data*, not code: a tuple of per-device specs plus a round
count, carried on ``StreamExperimentConfig.fleet`` so that — exactly
like the backend and scenario selections — the fleet shape serializes
into checkpoints and sweep payloads and crosses process boundaries
with the config.  Both dataclasses are frozen and fully hashable, and
round-trip losslessly through ``to_dict``/``from_dict`` (strict JSON).

This module is deliberately dependency-light (``dataclasses`` plus the
equally-declarative :mod:`repro.fleet.faults`):
:mod:`repro.experiments.config` imports it at module level, so pulling
in registries or the nn stack here would create import cycles.  Name
resolution (policy/scenario/backend/profile) therefore happens in
:class:`repro.fleet.coordinator.FleetCoordinator`, which validates
every field eagerly before the first round runs.

Transport note: specs describe *what* each device runs, never *how*
its state moves between processes — the wire format (``json-b64`` /
``shm`` / ``delta``, see :mod:`repro.experiments.wire`) is an
execution-time choice on the coordinator, deliberately kept out of
these dataclasses so the same serialized fleet reproduces bitwise
under any transport.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.fleet.faults import FaultPlan

__all__ = ["DeviceSpec", "FleetConfig"]


@dataclass(frozen=True)
class DeviceSpec:
    """One simulated device: what it runs and under which constraints.

    ``None`` fields inherit from the fleet-level config: ``scenario``
    and ``backend`` fall back to the config's selections, ``seed``
    falls back to ``config.seed + device_index`` (so a default fleet of
    N devices sees N distinct streams), and ``total_samples`` falls
    back to ``config.total_samples``.

    ``profile`` names a :data:`repro.device.cost_model.DEVICE_PROFILES`
    entry; when ``compute_budget_mj`` (a per-iteration energy budget in
    millijoules) is set, the coordinator derives the smallest lazy
    scoring interval that fits the budget on that profile — the
    cost-model tie-in that makes heterogeneous fleets quantitative.
    ``lazy_interval`` sets the interval directly instead (the two are
    mutually exclusive).
    """

    policy: str = "contrast-scoring"
    scenario: Optional[str] = None
    backend: Optional[str] = None
    seed: Optional[int] = None
    total_samples: Optional[int] = None
    profile: str = "jetson-class"
    compute_budget_mj: Optional[float] = None
    lazy_interval: Optional[int] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.policy, str) or not self.policy:
            raise ValueError(f"DeviceSpec.policy must be a non-empty string, got {self.policy!r}")
        if self.scenario is not None and (not isinstance(self.scenario, str) or not self.scenario):
            raise ValueError(f"DeviceSpec.scenario must be None or a non-empty string, got {self.scenario!r}")
        if self.backend is not None and (not isinstance(self.backend, str) or not self.backend):
            raise ValueError(f"DeviceSpec.backend must be None or a non-empty string, got {self.backend!r}")
        if self.seed is not None and not isinstance(self.seed, int):
            raise ValueError(f"DeviceSpec.seed must be None or an int, got {self.seed!r}")
        if self.total_samples is not None and self.total_samples < 1:
            raise ValueError(f"DeviceSpec.total_samples must be None or >= 1, got {self.total_samples}")
        if not isinstance(self.profile, str) or not self.profile:
            raise ValueError(f"DeviceSpec.profile must be a non-empty string, got {self.profile!r}")
        if self.compute_budget_mj is not None and self.compute_budget_mj <= 0:
            raise ValueError(
                f"DeviceSpec.compute_budget_mj must be None or > 0, got {self.compute_budget_mj}"
            )
        if self.lazy_interval is not None and self.lazy_interval < 1:
            raise ValueError(f"DeviceSpec.lazy_interval must be None or >= 1, got {self.lazy_interval}")
        if self.compute_budget_mj is not None and self.lazy_interval is not None:
            raise ValueError(
                "DeviceSpec.compute_budget_mj and DeviceSpec.lazy_interval are "
                "mutually exclusive (the budget derives the interval)"
            )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Strict-JSON representation (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DeviceSpec":
        return cls(**data)


@dataclass(frozen=True)
class FleetConfig:
    """The fleet shape: device roster plus the synchronization schedule.

    Each of the ``rounds`` rounds runs every device's local Session for
    roughly ``1/rounds`` of its stream, then hands the per-device model
    states to the configured aggregator
    (``StreamExperimentConfig.aggregator``).

    Population fields (all optional, defaults preserve the synchronous
    full-participation behaviour bit for bit):

    * ``participants`` — K, the number of devices that train per
      round.  ``None`` means every device, every round (no sampler is
      consulted and no sampling RNG is drawn).
    * ``sampler`` — a :data:`repro.registry.CLIENT_SAMPLERS` name
      choosing *which* K devices; only meaningful with
      ``participants`` set.  ``None`` means ``uniform``.
    * ``regions`` — disjoint groups of device indices for the
      ``hierarchical`` (edge→region→server) aggregator; devices not
      listed each form their own singleton region.
    * ``round_deadline_s`` — simulated per-round deadline.  A device
      whose :class:`~repro.fleet.faults.FaultPlan` straggler delay
      exceeds it reports *late*: its update is buffered and folded
      into the next round's aggregation with ``staleness`` 1 (see the
      ``fedavg-async`` aggregator).
    * ``fault_plan`` — the seeded chaos schedule (stragglers /
      dropouts / crash-at-round); part of the fleet shape so chaos
      runs serialize into checkpoints and replay deterministically.
    """

    devices: Tuple[DeviceSpec, ...] = field(default_factory=tuple)
    rounds: int = 2
    participants: Optional[int] = None
    sampler: Optional[str] = None
    regions: Optional[Tuple[Tuple[int, ...], ...]] = None
    round_deadline_s: Optional[float] = None
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "devices", tuple(self.devices))
        if not self.devices:
            raise ValueError("FleetConfig.devices must name at least one device")
        for index, spec in enumerate(self.devices):
            if not isinstance(spec, DeviceSpec):
                raise ValueError(
                    f"FleetConfig.devices[{index}] must be a DeviceSpec, "
                    f"got {type(spec).__name__}"
                )
        if self.rounds < 1:
            raise ValueError(f"FleetConfig.rounds must be >= 1, got {self.rounds}")
        if self.participants is not None and not 1 <= self.participants <= len(self.devices):
            raise ValueError(
                f"FleetConfig.participants must be in [1, {len(self.devices)}], "
                f"got {self.participants}"
            )
        if self.sampler is not None and (not isinstance(self.sampler, str) or not self.sampler):
            raise ValueError(
                f"FleetConfig.sampler must be None or a non-empty string, got {self.sampler!r}"
            )
        if self.regions is not None:
            regions = tuple(tuple(int(i) for i in region) for region in self.regions)
            seen: set = set()
            for rid, region in enumerate(regions):
                if not region:
                    raise ValueError(f"FleetConfig.regions[{rid}] must not be empty")
                for device in region:
                    if not 0 <= device < len(self.devices):
                        raise ValueError(
                            f"FleetConfig.regions[{rid}] names device {device}, but the "
                            f"fleet has {len(self.devices)} devices"
                        )
                    if device in seen:
                        raise ValueError(
                            f"FleetConfig.regions lists device {device} in two regions"
                        )
                    seen.add(device)
            object.__setattr__(self, "regions", regions)
        if self.round_deadline_s is not None and self.round_deadline_s <= 0:
            raise ValueError(
                f"FleetConfig.round_deadline_s must be None or > 0, got {self.round_deadline_s}"
            )
        if self.fault_plan is not None:
            if not isinstance(self.fault_plan, FaultPlan):
                raise ValueError(
                    f"FleetConfig.fault_plan must be a FaultPlan, "
                    f"got {type(self.fault_plan).__name__}"
                )
            for device, _ in self.fault_plan.overrides:
                if device >= len(self.devices):
                    raise ValueError(
                        f"FleetConfig.fault_plan overrides device {device}, but the "
                        f"fleet has {len(self.devices)} devices"
                    )

    @classmethod
    def uniform(cls, num_devices: int, rounds: int = 2, **spec_fields: Any) -> "FleetConfig":
        """A fleet of ``num_devices`` identical specs (seeds still fan
        out per device because ``DeviceSpec.seed`` defaults to None)."""
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        return cls(
            devices=tuple(DeviceSpec(**spec_fields) for _ in range(num_devices)),
            rounds=rounds,
        )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Strict-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "devices": [spec.to_dict() for spec in self.devices],
            "rounds": self.rounds,
            "participants": self.participants,
            "sampler": self.sampler,
            "regions": None
            if self.regions is None
            else [list(region) for region in self.regions],
            "round_deadline_s": self.round_deadline_s,
            "fault_plan": None if self.fault_plan is None else self.fault_plan.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetConfig":
        # .get defaults keep pre-population payloads (PR <= 8) loadable.
        regions = data.get("regions")
        fault_plan = data.get("fault_plan")
        return cls(
            devices=tuple(DeviceSpec.from_dict(spec) for spec in data["devices"]),
            rounds=int(data["rounds"]),
            participants=data.get("participants"),
            sampler=data.get("sampler"),
            regions=None if regions is None else tuple(tuple(r) for r in regions),
            round_deadline_s=data.get("round_deadline_s"),
            fault_plan=None if fault_plan is None else FaultPlan.from_dict(fault_plan),
        )
