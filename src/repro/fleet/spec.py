"""Declarative fleet description: :class:`DeviceSpec` and :class:`FleetConfig`.

A fleet is *data*, not code: a tuple of per-device specs plus a round
count, carried on ``StreamExperimentConfig.fleet`` so that — exactly
like the backend and scenario selections — the fleet shape serializes
into checkpoints and sweep payloads and crosses process boundaries
with the config.  Both dataclasses are frozen and fully hashable, and
round-trip losslessly through ``to_dict``/``from_dict`` (strict JSON).

This module is deliberately dependency-free (only ``dataclasses``):
:mod:`repro.experiments.config` imports it at module level, so pulling
in registries or the nn stack here would create import cycles.  Name
resolution (policy/scenario/backend/profile) therefore happens in
:class:`repro.fleet.coordinator.FleetCoordinator`, which validates
every field eagerly before the first round runs.

Transport note: specs describe *what* each device runs, never *how*
its state moves between processes — the wire format (``json-b64`` /
``shm`` / ``delta``, see :mod:`repro.experiments.wire`) is an
execution-time choice on the coordinator, deliberately kept out of
these dataclasses so the same serialized fleet reproduces bitwise
under any transport.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = ["DeviceSpec", "FleetConfig"]


@dataclass(frozen=True)
class DeviceSpec:
    """One simulated device: what it runs and under which constraints.

    ``None`` fields inherit from the fleet-level config: ``scenario``
    and ``backend`` fall back to the config's selections, ``seed``
    falls back to ``config.seed + device_index`` (so a default fleet of
    N devices sees N distinct streams), and ``total_samples`` falls
    back to ``config.total_samples``.

    ``profile`` names a :data:`repro.device.cost_model.DEVICE_PROFILES`
    entry; when ``compute_budget_mj`` (a per-iteration energy budget in
    millijoules) is set, the coordinator derives the smallest lazy
    scoring interval that fits the budget on that profile — the
    cost-model tie-in that makes heterogeneous fleets quantitative.
    ``lazy_interval`` sets the interval directly instead (the two are
    mutually exclusive).
    """

    policy: str = "contrast-scoring"
    scenario: Optional[str] = None
    backend: Optional[str] = None
    seed: Optional[int] = None
    total_samples: Optional[int] = None
    profile: str = "jetson-class"
    compute_budget_mj: Optional[float] = None
    lazy_interval: Optional[int] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.policy, str) or not self.policy:
            raise ValueError(f"DeviceSpec.policy must be a non-empty string, got {self.policy!r}")
        if self.scenario is not None and (not isinstance(self.scenario, str) or not self.scenario):
            raise ValueError(f"DeviceSpec.scenario must be None or a non-empty string, got {self.scenario!r}")
        if self.backend is not None and (not isinstance(self.backend, str) or not self.backend):
            raise ValueError(f"DeviceSpec.backend must be None or a non-empty string, got {self.backend!r}")
        if self.seed is not None and not isinstance(self.seed, int):
            raise ValueError(f"DeviceSpec.seed must be None or an int, got {self.seed!r}")
        if self.total_samples is not None and self.total_samples < 1:
            raise ValueError(f"DeviceSpec.total_samples must be None or >= 1, got {self.total_samples}")
        if not isinstance(self.profile, str) or not self.profile:
            raise ValueError(f"DeviceSpec.profile must be a non-empty string, got {self.profile!r}")
        if self.compute_budget_mj is not None and self.compute_budget_mj <= 0:
            raise ValueError(
                f"DeviceSpec.compute_budget_mj must be None or > 0, got {self.compute_budget_mj}"
            )
        if self.lazy_interval is not None and self.lazy_interval < 1:
            raise ValueError(f"DeviceSpec.lazy_interval must be None or >= 1, got {self.lazy_interval}")
        if self.compute_budget_mj is not None and self.lazy_interval is not None:
            raise ValueError(
                "DeviceSpec.compute_budget_mj and DeviceSpec.lazy_interval are "
                "mutually exclusive (the budget derives the interval)"
            )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Strict-JSON representation (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DeviceSpec":
        return cls(**data)


@dataclass(frozen=True)
class FleetConfig:
    """The fleet shape: device roster plus the synchronization schedule.

    Each of the ``rounds`` rounds runs every device's local Session for
    roughly ``1/rounds`` of its stream, then hands the per-device model
    states to the configured aggregator
    (``StreamExperimentConfig.aggregator``).
    """

    devices: Tuple[DeviceSpec, ...] = field(default_factory=tuple)
    rounds: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "devices", tuple(self.devices))
        if not self.devices:
            raise ValueError("FleetConfig.devices must name at least one device")
        for index, spec in enumerate(self.devices):
            if not isinstance(spec, DeviceSpec):
                raise ValueError(
                    f"FleetConfig.devices[{index}] must be a DeviceSpec, "
                    f"got {type(spec).__name__}"
                )
        if self.rounds < 1:
            raise ValueError(f"FleetConfig.rounds must be >= 1, got {self.rounds}")

    @classmethod
    def uniform(cls, num_devices: int, rounds: int = 2, **spec_fields: Any) -> "FleetConfig":
        """A fleet of ``num_devices`` identical specs (seeds still fan
        out per device because ``DeviceSpec.seed`` defaults to None)."""
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        return cls(
            devices=tuple(DeviceSpec(**spec_fields) for _ in range(num_devices)),
            rounds=rounds,
        )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Strict-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "devices": [spec.to_dict() for spec in self.devices],
            "rounds": self.rounds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetConfig":
        return cls(
            devices=tuple(DeviceSpec.from_dict(spec) for spec in data["devices"]),
            rounds=int(data["rounds"]),
        )
