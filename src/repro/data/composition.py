"""Scenario-composition expressions: the grammar of the stream algebra.

A *composition* is a string naming a stack of stream wrappers over one
base scenario, accepted everywhere a plain scenario name is (see
:mod:`repro.data.scenarios`)::

    corrupted(bursty(imbalanced))
    corrupted(bursty(imbalanced(imbalance=0.05),burst_prob=0.5),noise_std=0.4)
    label-shift                      # wrapper alone: wraps the default base

Grammar (whitespace is insignificant between tokens)::

    expr   := name [ "(" args ")" ]
    args   := expr { "," kwarg } | kwarg { "," kwarg }
    kwarg  := key "=" value
    name   := lowercase kebab-case (the registry's naming rule)
    key    := python identifier (lowercase)
    value  := int | float | true | false | none | name

This module is *pure syntax*: it parses, renders, and walks expression
trees without touching the ``SCENARIOS`` registry.  Name resolution
(aliases, wrapper-vs-base classification, "did you mean") and
construction live in :func:`repro.data.scenarios.create_scenario` /
:func:`~repro.data.scenarios.canonical_scenario`.

Canonical rendering (:func:`format_scenario`) is stable and exact:
names lowercase, no spaces, keyword options in source order, floats via
``repr`` (the shortest round-tripping form), so a canonicalized
composition survives the checkpoint / sweep-payload round trip bitwise.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, Optional, Tuple

__all__ = [
    "ScenarioExpr",
    "CompositionSyntaxError",
    "parse_scenario",
    "format_scenario",
    "is_composition",
]

_NAME_RE = re.compile(r"[a-z0-9]+(?:-[a-z0-9]+)*")
_KEY_RE = re.compile(r"[a-z_][a-z0-9_]*")
_NUMBER_RE = re.compile(
    r"[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?"
)
#: Bare keyword values that are not numbers: booleans, none, and
#: kebab-case strings (future-proofing for string-valued options).
_BARE_VALUE_RE = re.compile(r"[a-z0-9_][a-z0-9_-]*")


class CompositionSyntaxError(ValueError):
    """A scenario composition string that does not parse.

    Carries the offending expression and position so error messages can
    point at the exact spot.
    """

    def __init__(self, text: str, position: int, message: str) -> None:
        self.text = text
        self.position = position
        super().__init__(
            f"invalid scenario composition {text!r}: {message} "
            f"(at position {position})"
        )


@dataclass(frozen=True)
class ScenarioExpr:
    """One node of a parsed composition: a name, an optional wrapped
    child, and keyword options.

    The node for ``corrupted(bursty,noise_std=0.4)`` has
    ``name="corrupted"``, ``child=ScenarioExpr("bursty")``, and
    ``options={"noise_std": 0.4}``.
    """

    name: str
    child: Optional["ScenarioExpr"] = None
    options: Tuple[Tuple[str, Any], ...] = ()

    @property
    def option_dict(self) -> Dict[str, Any]:
        """Options as a plain dict (insertion order preserved)."""
        return dict(self.options)

    @property
    def depth(self) -> int:
        """Number of wrapper layers above the innermost base (leaf=0)."""
        return 0 if self.child is None else 1 + self.child.depth

    def walk(self) -> Iterator["ScenarioExpr"]:
        """Yield nodes outermost-first (the wrapping order)."""
        node: Optional[ScenarioExpr] = self
        while node is not None:
            yield node
            node = node.child

    def with_name(self, name: str) -> "ScenarioExpr":
        return replace(self, name=name)

    def with_child(self, child: Optional["ScenarioExpr"]) -> "ScenarioExpr":
        return replace(self, child=child)

    def __str__(self) -> str:
        return format_scenario(self)


def is_composition(text: str) -> bool:
    """True when ``text`` uses composition syntax (vs a plain name)."""
    return "(" in text or "=" in text or "," in text


class _Parser:
    """Recursive-descent parser over one composition string."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> CompositionSyntaxError:
        return CompositionSyntaxError(self.text, self.pos, message)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, char: str) -> None:
        self.skip_ws()
        if self.peek() != char:
            got = repr(self.peek()) if self.peek() else "end of input"
            raise self.error(f"expected {char!r}, got {got}")
        self.pos += 1

    def match(self, regex: re.Pattern, what: str) -> str:
        self.skip_ws()
        found = regex.match(self.text, self.pos)
        if not found:
            raise self.error(f"expected {what}")
        self.pos = found.end()
        return found.group(0)

    # ------------------------------------------------------------------
    def parse(self) -> ScenarioExpr:
        expr = self.parse_expr()
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.error(
                f"unexpected trailing input {self.text[self.pos:]!r}"
            )
        return expr

    def parse_expr(self) -> ScenarioExpr:
        name = self.match(_NAME_RE, "a scenario name (lowercase kebab-case)")
        self.skip_ws()
        if self.peek() != "(":
            return ScenarioExpr(name)
        self.expect("(")
        child, options = self.parse_args()
        self.expect(")")
        return ScenarioExpr(name, child=child, options=tuple(options))

    def parse_args(self) -> Tuple[Optional[ScenarioExpr], list]:
        self.skip_ws()
        if self.peek() == ")":
            raise self.error(
                "empty parentheses: drop them or name a wrapped scenario"
            )
        child: Optional[ScenarioExpr] = None
        options: list = []
        seen: set = set()
        if not self._at_kwarg():
            child = self.parse_expr()
            self.skip_ws()
            if self.peek() == ",":
                self.pos += 1
            elif self.peek() != ")":
                got = repr(self.peek()) if self.peek() else "end of input"
                raise self.error(f"expected ',' or ')', got {got}")
            else:
                return child, options
        while True:
            self.skip_ws()
            if self.peek() == ")" and not options and child is not None:
                # trailing comma after the child: reject for canonicality
                raise self.error("trailing comma before ')'")
            key = self.match(_KEY_RE, "an option name (key=value)")
            if key in seen:
                raise self.error(f"duplicate option {key!r}")
            seen.add(key)
            self.expect("=")
            options.append((key, self.parse_value()))
            self.skip_ws()
            if self.peek() == ",":
                self.pos += 1
                continue
            return child, options

    def _at_kwarg(self) -> bool:
        """Lookahead: does an identifier followed by '=' start here?"""
        probe = self.pos
        while probe < len(self.text) and self.text[probe].isspace():
            probe += 1
        found = _KEY_RE.match(self.text, probe)
        if not found:
            return False
        probe = found.end()
        while probe < len(self.text) and self.text[probe].isspace():
            probe += 1
        return probe < len(self.text) and self.text[probe] == "="

    def parse_value(self) -> Any:
        self.skip_ws()
        number = _NUMBER_RE.match(self.text, self.pos)
        if number:
            self.pos = number.end()
            raw = number.group(0)
            if re.fullmatch(r"[+-]?\d+", raw):
                return int(raw)
            return float(raw)
        bare = self.match(_BARE_VALUE_RE, "a value (number, true/false, none, or name)")
        lowered = bare.lower()
        if lowered == "true":
            return True
        if lowered == "false":
            return False
        if lowered == "none":
            return None
        return bare


def parse_scenario(text: str) -> ScenarioExpr:
    """Parse a composition string (or plain name) into its expression tree.

    Raises :class:`CompositionSyntaxError` (a ``ValueError``) on
    malformed input, pointing at the offending position.
    """
    if not isinstance(text, str) or not text.strip():
        raise CompositionSyntaxError(
            str(text), 0, "a scenario must be a non-empty string"
        )
    return _Parser(text.strip()).parse()


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "none"
    if isinstance(value, float):
        return repr(value)  # shortest exact round-trip form
    return str(value)


def format_scenario(expr: ScenarioExpr) -> str:
    """Render an expression tree to its canonical string form.

    ``parse_scenario(format_scenario(e)) == e`` and rendering is
    idempotent, which is what lets ``config.scenario`` round-trip
    through checkpoints and sweep wire payloads bitwise.
    """
    parts = []
    if expr.child is not None:
        parts.append(format_scenario(expr.child))
    parts.extend(f"{key}={_format_value(value)}" for key, value in expr.options)
    if not parts:
        return expr.name
    return f"{expr.name}({','.join(parts)})"
