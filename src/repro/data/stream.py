"""Non-iid streaming input with controllable temporal correlation.

The paper models on-device input as a temporally correlated stream: a
camera sees many consecutive frames of the same class before the class
switches.  Correlation strength is measured by STC ("Strength of
Temporal Correlation"): the number of consecutive same-class samples
until a class change (paper §IV-A, following Hayes et al.).

:class:`TemporalStream` produces exactly that process from a generative
dataset; ``stc=1`` degenerates to an iid stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.data.synthetic import SyntheticImageDataset

__all__ = ["StreamSegment", "TemporalStream", "measure_stc"]


def _validate_segment_args(segment_size: int, total_samples: int) -> None:
    """Shared eager validation for every stream's ``segments`` method."""
    if segment_size < 1:
        raise ValueError(f"segment_size must be >= 1, got {segment_size}")
    if total_samples < 1:
        raise ValueError(f"total_samples must be >= 1, got {total_samples}")


def _segment_iterator(source, segment_size: int, total_samples: int):
    """Validated segment iteration shared by every stream's ``segments``.

    Validates eagerly (at the call, not on first iteration), then yields
    ``source.next_segment(...)`` chunks until ``total_samples`` inputs
    have streamed, truncating the final segment.
    """
    _validate_segment_args(segment_size, total_samples)

    def generate():
        produced = 0
        while produced < total_samples:
            take = min(segment_size, total_samples - produced)
            yield source.next_segment(take)
            produced += take

    return generate()


@dataclass
class StreamSegment:
    """A contiguous chunk of the input stream.

    ``labels`` travel with the segment for *evaluation only*; the
    framework never exposes them to selection policies (the paper's
    setting is fully unlabeled stage-1 learning).
    """

    images: np.ndarray  # (B, C, H, W) float32
    labels: np.ndarray  # (B,) int64
    start_index: int  # index of the first sample within the stream

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def end_index(self) -> int:
        return self.start_index + len(self)


class TemporalStream:
    """Generate a class-correlated sample stream from a dataset.

    Parameters
    ----------
    dataset:
        Generative dataset supplying ``sample(class_ids, rng)``.
    stc:
        Run length: each chosen class is emitted for exactly ``stc``
        consecutive samples before the class switches (paper's STC).
    rng:
        Generator driving both the class sequence and sample noise.
    forbid_repeat:
        If True (default), the next run's class always differs from the
        previous run's class, making STC exact rather than in
        expectation.
    """

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        stc: int,
        rng: np.random.Generator,
        forbid_repeat: bool = True,
    ) -> None:
        if stc < 1:
            raise ValueError(f"stc must be >= 1, got {stc}")
        self.dataset = dataset
        self.stc = int(stc)
        self.rng = rng
        self.forbid_repeat = forbid_repeat and dataset.num_classes > 1
        self._position = 0
        self._current_class: Optional[int] = None
        self._remaining_in_run = 0

    # ------------------------------------------------------------------
    def _next_class(self) -> int:
        k = self.dataset.num_classes
        if not self.forbid_repeat or self._current_class is None:
            return int(self.rng.integers(0, k))
        # uniform over the other k-1 classes
        draw = int(self.rng.integers(0, k - 1))
        return draw if draw < self._current_class else draw + 1

    def _next_run_length(self) -> int:
        """Length of the run that is about to start.

        The base process emits fixed-length runs (the paper's exact
        STC); subclasses override this to produce variable run-length
        schedules (e.g. the ``bursty`` scenario).
        """
        return self.stc

    def next_labels(self, count: int) -> np.ndarray:
        """The next ``count`` class ids of the correlated process."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        out = np.empty(count, dtype=np.int64)
        filled = 0
        while filled < count:
            if self._remaining_in_run == 0:
                self._current_class = self._next_class()
                self._remaining_in_run = self._next_run_length()
            take = min(self._remaining_in_run, count - filled)
            out[filled : filled + take] = self._current_class
            filled += take
            self._remaining_in_run -= take
        return out

    def next_segment(self, segment_size: int) -> StreamSegment:
        """Produce the next ``segment_size`` samples of the stream."""
        labels = self.next_labels(segment_size)
        images = self.dataset.sample(labels, self.rng)
        segment = StreamSegment(images, labels, self._position)
        self._position += segment_size
        return segment

    def segments(
        self, segment_size: int, total_samples: int
    ) -> Iterator[StreamSegment]:
        """Iterate segments until ``total_samples`` inputs have streamed.

        The final segment is truncated if ``total_samples`` is not a
        multiple of ``segment_size``.  Arguments are validated eagerly
        (here, not on first iteration), so a bad value fails at the call
        site rather than deep inside a training loop.
        """
        return _segment_iterator(self, segment_size, total_samples)

    @property
    def position(self) -> int:
        """Number of samples emitted so far."""
        return self._position

    def state_dict(self) -> dict:
        """Stream-process counters (JSON-serializable) for checkpointing.

        The RNG driving the process is owned by the caller (usually a
        :class:`~repro.utils.rng.RngRegistry`) and is checkpointed
        there, not here.
        """
        return {
            "position": self._position,
            "current_class": self._current_class,
            "remaining_in_run": self._remaining_in_run,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore counters written by :meth:`state_dict`."""
        self._position = int(state["position"])
        current = state["current_class"]
        self._current_class = None if current is None else int(current)
        self._remaining_in_run = int(state["remaining_in_run"])


def measure_stc(labels: np.ndarray) -> float:
    """Empirical STC of a label sequence: mean same-class run length."""
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.size == 0:
        raise ValueError("labels must be a non-empty 1-D sequence")
    changes = int((labels[1:] != labels[:-1]).sum())
    return labels.size / (changes + 1)
