"""Vectorized bilinear resampling for NCHW image batches.

These are the geometric primitives behind the synthetic dataset
generator and the SimCLR random-crop augmentation.  Everything is plain
numpy (augmentation happens outside the autograd graph).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["grid_sample_bilinear", "bilinear_resize", "crop_resize_batch"]


def grid_sample_bilinear(
    images: np.ndarray, ys: np.ndarray, xs: np.ndarray
) -> np.ndarray:
    """Sample ``images`` (N, C, H, W) at per-sample float coordinates.

    Parameters
    ----------
    images: input batch.
    ys, xs: ``(N, H_out, W_out)`` coordinates in input pixel space
        (0 .. H-1 / 0 .. W-1); coordinates are clamped to the valid range.

    Returns
    -------
    ``(N, C, H_out, W_out)`` resampled batch (same dtype as input).
    """
    if images.ndim != 4:
        raise ValueError(f"expected NCHW batch, got shape {images.shape}")
    n, c, h, w = images.shape
    if ys.shape != xs.shape or ys.shape[0] != n or ys.ndim != 3:
        raise ValueError(
            f"coordinate shapes {ys.shape}/{xs.shape} do not match batch {n}"
        )
    ys = np.clip(ys, 0.0, h - 1.0)
    xs = np.clip(xs, 0.0, w - 1.0)
    y0 = np.floor(ys).astype(np.intp)
    x0 = np.floor(xs).astype(np.intp)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0).astype(images.dtype)
    wx = (xs - x0).astype(images.dtype)

    batch = np.arange(n, dtype=np.intp)[:, None, None, None]
    chan = np.arange(c, dtype=np.intp)[None, :, None, None]
    y0e, y1e = y0[:, None], y1[:, None]  # (N, 1, H_out, W_out)
    x0e, x1e = x0[:, None], x1[:, None]

    top_left = images[batch, chan, y0e, x0e]
    top_right = images[batch, chan, y0e, x1e]
    bottom_left = images[batch, chan, y1e, x0e]
    bottom_right = images[batch, chan, y1e, x1e]

    wy_e = wy[:, None]
    wx_e = wx[:, None]
    top = top_left * (1 - wx_e) + top_right * wx_e
    bottom = bottom_left * (1 - wx_e) + bottom_right * wx_e
    return (top * (1 - wy_e) + bottom * wy_e).astype(images.dtype, copy=False)


def bilinear_resize(images: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Resize an NCHW batch to (out_h, out_w) with bilinear interpolation."""
    n, _, h, w = images.shape
    ys = np.linspace(0.0, h - 1.0, out_h, dtype=np.float64)
    xs = np.linspace(0.0, w - 1.0, out_w, dtype=np.float64)
    grid_y = np.broadcast_to(ys[:, None], (out_h, out_w))
    grid_x = np.broadcast_to(xs[None, :], (out_h, out_w))
    grid_y = np.broadcast_to(grid_y[None], (n, out_h, out_w))
    grid_x = np.broadcast_to(grid_x[None], (n, out_h, out_w))
    return grid_sample_bilinear(images, grid_y, grid_x)


def crop_resize_batch(
    images: np.ndarray,
    tops: np.ndarray,
    lefts: np.ndarray,
    heights: np.ndarray,
    widths: np.ndarray,
) -> np.ndarray:
    """Crop a per-sample box and resize back to the input resolution.

    Parameters
    ----------
    images: ``(N, C, H, W)`` batch.
    tops, lefts: per-sample crop origin (float, pixels).
    heights, widths: per-sample crop extents (float, pixels, >= 1).

    Returns
    -------
    ``(N, C, H, W)`` batch of resized crops.
    """
    n, _, h, w = images.shape
    for name, arr in (("tops", tops), ("lefts", lefts), ("heights", heights), ("widths", widths)):
        if np.asarray(arr).shape != (n,):
            raise ValueError(f"{name} must have shape ({n},), got {np.asarray(arr).shape}")
    unit_y = np.linspace(0.0, 1.0, h, dtype=np.float64)
    unit_x = np.linspace(0.0, 1.0, w, dtype=np.float64)
    ys = tops[:, None, None] + unit_y[None, :, None] * (heights[:, None, None] - 1.0)
    xs = lefts[:, None, None] + unit_x[None, None, :] * (widths[:, None, None] - 1.0)
    ys = np.broadcast_to(ys, (n, h, w))
    xs = np.broadcast_to(xs, (n, h, w))
    return grid_sample_bilinear(images, ys, xs)
